//! Dynamic-graph integration tests: `SimEngine::apply_delta` followed
//! by queries must agree with building a fresh engine on the mutated
//! graph, across tree/DAG/cyclic workloads and engines — and a
//! delete-only stream must be answered with zero full re-evaluations
//! (the plan records the incremental leg).

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Applies a delta to a graph the slow way (the scratch baseline).
fn mutated(g: &Graph, delta: &GraphDelta) -> Graph {
    let mut b = GraphBuilder::new();
    for v in g.nodes() {
        b.add_node(g.label(v));
    }
    for (u, v) in g.edges() {
        if !delta.delete_edges.contains(&(u, v)) {
            b.add_edge(u, v);
        }
    }
    for &(u, v) in &delta.insert_edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Deterministic op stream: deletions of existing edges (crossing and
/// local alike) interleaved with insertions of absent edges. A batch
/// is a *set* of ops, so the two lists are kept disjoint: only
/// original edges are deleted, and nothing deleted is re-inserted.
fn op_stream(g: &Graph, nops: usize, deletions_only: bool, seed: u64) -> GraphDelta {
    let n = g.node_count() as u64;
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut touched: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut delta = GraphDelta::default();
    let mut s = seed;
    for i in 0..nops {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (deletions_only || i % 2 == 0) && !edges.is_empty() {
            let at = (s >> 33) as usize % edges.len();
            delta.delete_edges.push(edges.swap_remove(at));
        } else if !deletions_only {
            let u = NodeId(((s >> 20) % n) as u32);
            let v = NodeId(((s >> 40) % n) as u32);
            // `touched` holds every original edge plus every insert,
            // so an insert can collide with neither list.
            if touched.insert((u, v)) {
                delta.insert_edges.push((u, v));
            }
        }
    }
    delta
}

/// Insertion-only op stream: absent edges picked uniformly, disjoint
/// from the original edge set and from each other.
fn insert_stream(g: &Graph, nops: usize, seed: u64) -> GraphDelta {
    let n = g.node_count() as u64;
    let mut touched: std::collections::HashSet<(NodeId, NodeId)> = g.edges().collect();
    let mut delta = GraphDelta::default();
    let mut s = seed;
    for _ in 0..nops * 20 {
        if delta.insert_edges.len() >= nops {
            break;
        }
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = NodeId(((s >> 20) % n) as u32);
        let v = NodeId(((s >> 40) % n) as u32);
        if touched.insert((u, v)) {
            delta.insert_edges.push((u, v));
        }
    }
    delta
}

/// The wire-row view of a relation (sorted node list per query node).
fn relation_rows(relation: &MatchRelation) -> Vec<Vec<u32>> {
    (0..relation.query_nodes())
        .map(|u| {
            relation
                .matches_of(QNodeId(u as u16))
                .iter()
                .map(|v| v.0)
                .collect()
        })
        .collect()
}

/// Asserts that the delta-applied engine answers `q` exactly like a
/// fresh engine over the mutated graph, for every given algorithm.
fn assert_delta_equals_scratch(
    engine: &SimEngine,
    g2: &Graph,
    assign: &[usize],
    k: usize,
    q: &Pattern,
    algorithms: &[Algorithm],
) {
    let frag2 = Arc::new(Fragmentation::build(g2, assign, k));
    let scratch = SimEngine::builder(g2, frag2).cache(false).build();
    for algo in algorithms {
        let a = engine.query_with(algo, q);
        let b = scratch.query_with(algo, q);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.relation, b.relation, "{} answers differ", algo.name());
                assert_eq!(a.algorithm, b.algorithm, "resolved engines differ");
                assert_eq!(a.relation, hhk_simulation(q, g2).relation);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!(
                "delta/scratch disagree on applicability of {}: {a:?} vs {b:?}",
                algo.name()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Cyclic workloads (dGPM / dGPMs territory), mixed insert+delete
    /// streams with cross-fragment ops.
    #[test]
    fn delta_equals_scratch_cyclic(
        n in 20usize..70,
        em in 2usize..5,
        k in 2usize..5,
        nops in 1usize..30,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x51);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = op_stream(&g, nops, false, seed ^ 0xD17A);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &q,
            &[Algorithm::Auto, Algorithm::Dgpms, Algorithm::dgpm()],
        );
    }

    /// Tree workloads: deletions break the rooted tree, so the planner
    /// must re-plan away from dGPMt on the delta-applied session too.
    #[test]
    fn delta_equals_scratch_tree(
        n in 20usize..90,
        k in 2usize..5,
        nops in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree(n, 4, seed);
        let q = patterns::random_dag_with_depth(3, 4, 2, 4, seed ^ 0x7E3);
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = op_stream(&g, nops, true, seed ^ 0x17EE);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        // dGPMt's precondition fails identically on both sides (the
        // mutated graph is a forest), which the helper checks via the
        // Err/Err arm.
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &q,
            &[Algorithm::Auto, Algorithm::Dgpmt, Algorithm::Dgpmd],
        );
    }

    /// DAG workloads: insertions may close cycles, flipping the
    /// planner's short-circuit; facts must be recomputed.
    #[test]
    fn delta_equals_scratch_dag(
        n in 20usize..80,
        k in 2usize..5,
        nops in 1usize..24,
        seed in any::<u64>(),
    ) {
        let g = dag::citation_like(n, 3 * n, 4, seed);
        let qd = patterns::random_dag_with_depth(3, 5, 2, 4, seed ^ 0xA1);
        let qc = patterns::random_cyclic(3, 5, 4, seed ^ 0xA2);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = op_stream(&g, nops, false, seed ^ 0xDA6);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &qd,
            &[Algorithm::Auto, Algorithm::Dgpmd],
        );
        // The cyclic pattern exercises the trivial-∅ flip.
        assert_delta_equals_scratch(&engine, &g2, &assign, k, &qc, &[Algorithm::Auto]);
    }

    /// Insertion-only streams on cyclic workloads: the resurrection
    /// side of maintenance alone must agree with a scratch rebuild.
    #[test]
    fn delta_equals_scratch_insertions_only_cyclic(
        n in 20usize..70,
        em in 2usize..5,
        k in 2usize..5,
        nops in 1usize..24,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x61);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = insert_stream(&g, nops, seed ^ 0x1A5);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &q,
            &[Algorithm::Auto, Algorithm::Dgpms, Algorithm::dgpm()],
        );
    }

    /// Insertion-only streams on tree workloads: random insertions
    /// usually break the rooted tree, so dGPMt's precondition must
    /// fail identically on the delta-applied and scratch engines.
    #[test]
    fn delta_equals_scratch_insertions_only_tree(
        n in 20usize..90,
        k in 2usize..5,
        nops in 1usize..10,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree(n, 4, seed);
        let q = patterns::random_dag_with_depth(3, 4, 2, 4, seed ^ 0x63);
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = insert_stream(&g, nops, seed ^ 0x1A7);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &q,
            &[Algorithm::Auto, Algorithm::Dgpmt, Algorithm::Dgpmd],
        );
    }

    /// Insertion-only streams on DAG workloads, where an insertion can
    /// close a cycle and flip the planner's short-circuit.
    #[test]
    fn delta_equals_scratch_insertions_only_dag(
        n in 20usize..80,
        k in 2usize..5,
        nops in 1usize..20,
        seed in any::<u64>(),
    ) {
        let g = dag::citation_like(n, 3 * n, 4, seed);
        let qd = patterns::random_dag_with_depth(3, 5, 2, 4, seed ^ 0x65);
        let qc = patterns::random_cyclic(3, 5, 4, seed ^ 0x66);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let delta = insert_stream(&g, nops, seed ^ 0x1A9);
        engine.apply_delta(&delta).unwrap();
        let g2 = mutated(&g, &delta);
        assert_delta_equals_scratch(
            &engine, &g2, &assign, k, &qd,
            &[Algorithm::Auto, Algorithm::Dgpmd],
        );
        assert_delta_equals_scratch(&engine, &g2, &assign, k, &qc, &[Algorithm::Auto]);
    }

    /// With the cache on, an insertion-only stream keeps every
    /// maintained entry exact: zero invalidations, and the warm
    /// re-query is a pure cache hit with no protocol messages.
    #[test]
    fn maintained_entries_stay_exact_across_insertion_batches(
        n in 30usize..70,
        em in 2usize..5,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x9A);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        engine.query(&q).unwrap();

        let mut current = g.clone();
        let mut absorbed = 0u64;
        for batch in 0..3u64 {
            let delta = insert_stream(&current, 6, seed ^ (0xC00 + batch));
            if delta.insert_edges.is_empty() {
                break;
            }
            absorbed += delta.insert_edges.len() as u64;
            let report = engine.apply_delta(&delta).unwrap();
            prop_assert_eq!(report.maintained_entries, 1);
            prop_assert_eq!(report.invalidated_entries, 0, "insertions never invalidate");
            current = mutated(&current, &delta);

            let warm = engine.query(&q).unwrap();
            prop_assert_eq!(warm.metrics.cache_hits, 1);
            prop_assert_eq!(warm.metrics.data_messages, 0);
            prop_assert_eq!(warm.metrics.control_messages, 0);
            let note = warm.plan.incremental.expect("incremental leg");
            prop_assert_eq!(note.insertions_absorbed, absorbed);
            prop_assert_eq!(note.maintenance_runs, batch + 1);
            prop_assert_eq!(&warm.relation, &hhk_simulation(&q, &current).relation);
        }
    }

    /// The subscription invariant, checked at the engine layer: a warm
    /// snapshot plus the per-batch `maintained_diffs` (translated
    /// through the canonical node mapping) reproduces the oracle
    /// relation at *every* generation of a mixed delta stream, and the
    /// reports chain on `prev_generation → generation` edges.
    #[test]
    fn maintained_diffs_reconstruct_every_generation(
        n in 30usize..70,
        em in 2usize..5,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x4D);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        let first = engine.query(&q).unwrap();
        let mut rows = relation_rows(&first.relation);
        let (canon_key, pos_of) = SimEngine::pattern_canon(&q);
        let mut node_at = vec![0usize; pos_of.len()];
        for (u, &p) in pos_of.iter().enumerate() {
            node_at[p as usize] = u;
        }

        let mut cursor = engine.generation();
        let mut current = g.clone();
        for batch in 0..3u64 {
            let delta = op_stream(&current, 8, false, seed ^ (0xD1F + batch));
            if delta.is_empty() {
                break;
            }
            let report = engine.apply_delta(&delta).unwrap();
            prop_assert_eq!(report.prev_generation, cursor, "reports chain prev → gen");
            prop_assert!(report.generation > report.prev_generation);
            cursor = report.generation;
            current = mutated(&current, &delta);

            let diff = report
                .maintained_diffs
                .iter()
                .find(|d| d.canon_key == canon_key)
                .expect("the maintained entry ships its diff in the report");
            for var in &diff.revoked {
                let row = &mut rows[node_at[var.q as usize]];
                if let Ok(i) = row.binary_search(&var.node) {
                    row.remove(i);
                }
            }
            for var in &diff.resurrected {
                let row = &mut rows[node_at[var.q as usize]];
                if let Err(i) = row.binary_search(&var.node) {
                    row.insert(i, var.node);
                }
            }
            let want = relation_rows(&hhk_simulation(&q, &current).relation);
            prop_assert_eq!(&rows, &want, "replayed diffs diverge at batch {}", batch);
        }
    }

    /// With the cache on, a delete-only stream keeps serving from the
    /// maintained entries — exactly, and without any protocol run.
    #[test]
    fn maintained_entries_stay_exact_across_batches(
        n in 30usize..70,
        em in 2usize..5,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x99);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        engine.query(&q).unwrap();

        let mut current = g.clone();
        let mut absorbed = 0u64;
        for batch in 0..3u64 {
            let delta = op_stream(&current, 6, true, seed ^ (0xB00 + batch));
            if delta.delete_edges.is_empty() {
                break;
            }
            absorbed += delta.delete_edges.len() as u64;
            let report = engine.apply_delta(&delta).unwrap();
            prop_assert_eq!(report.maintained_entries, 1);
            current = mutated(&current, &delta);

            let warm = engine.query(&q).unwrap();
            // Served from the maintained entry: a cache hit, zero
            // messages, the incremental leg in the plan.
            prop_assert_eq!(warm.metrics.cache_hits, 1);
            prop_assert_eq!(warm.metrics.data_messages, 0);
            prop_assert_eq!(warm.metrics.control_messages, 0);
            let note = warm.plan.incremental.expect("incremental leg");
            prop_assert_eq!(note.deletions_absorbed, absorbed);
            prop_assert_eq!(note.maintenance_runs, batch + 1);
            prop_assert_eq!(&warm.relation, &hhk_simulation(&q, &current).relation);
        }
    }
}

#[test]
fn cross_fragment_delta_round_trip() {
    // Delete every crossing edge out of site 0, query, then re-insert
    // them: virtual nodes retire and revive in place, and answers stay
    // oracle-exact at each step.
    let n = 120;
    let g = random::community(n, 600, 5, 0.1, 4, 42);
    let q = patterns::random_cyclic(3, 6, 4, 43);
    let assign = hash_partition(n, 3, 42);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let mut crossing: Vec<(NodeId, NodeId)> = Vec::new();
    {
        let f0 = frag.fragment(0);
        for u in f0.local_indices() {
            for &t in f0.successors(u) {
                if f0.is_virtual(t) {
                    crossing.push((f0.global_id(u), f0.global_id(t)));
                }
            }
        }
    }
    assert!(!crossing.is_empty(), "community graph must cross sites");

    let engine = SimEngine::builder(&g, frag).build();
    let ef_before = engine.fragmentation().ef();
    let report = engine
        .apply_delta(&GraphDelta::deletions(crossing.iter().copied()))
        .unwrap();
    assert_eq!(report.crossing_deleted, crossing.len());
    assert!(report.virtuals_retired > 0);
    assert_eq!(engine.fragmentation().ef(), ef_before - crossing.len());
    assert_eq!(engine.fragmentation().fragment(0).live_virtuals(), 0);
    let without = engine.query(&q).unwrap();
    assert_eq!(
        without.relation,
        hhk_simulation(&q, &engine.graph()).relation
    );

    let report = engine
        .apply_delta(&GraphDelta::insertions(crossing.iter().copied()))
        .unwrap();
    assert_eq!(report.crossing_inserted, crossing.len());
    assert!(report.virtuals_created > 0);
    assert_eq!(engine.fragmentation().ef(), ef_before);
    let back = engine.query(&q).unwrap();
    assert_eq!(back.relation, hhk_simulation(&q, &g).relation);

    // The round trip restored the fragmentation exactly (modulo inert
    // retired slots): compare against a rebuild.
    let rebuilt = Fragmentation::build(&g, &assign, 3);
    assert_eq!(engine.fragmentation().vf(), rebuilt.vf());
    for site in 0..3 {
        let frag_now = engine.fragmentation();
        let fd = frag_now.fragment(site);
        let fr = rebuilt.fragment(site);
        assert_eq!(fd.n_edges(), fr.n_edges());
        assert_eq!(fd.live_virtuals(), fr.n_virtual());
        let mut ins_d: Vec<u32> = fd.in_nodes().iter().map(|&i| fd.global_id(i).0).collect();
        let mut ins_r: Vec<u32> = fr.in_nodes().iter().map(|&i| fr.global_id(i).0).collect();
        ins_d.sort_unstable();
        ins_r.sort_unstable();
        assert_eq!(ins_d, ins_r);
    }
}

#[test]
fn batch_queries_serve_maintained_entries() {
    // query_batch over a mix of maintained and fresh patterns after a
    // delete-only delta: the maintained one hits with the incremental
    // leg, the fresh one runs cold — and both are exact.
    let g = random::uniform(100, 400, 4, 77);
    let assign = hash_partition(100, 3, 77);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, frag).build();
    let warmed = patterns::random_cyclic(3, 6, 4, 770);
    let fresh = patterns::random_cyclic(3, 6, 4, 771);
    engine.query(&warmed).unwrap();

    let dels: Vec<_> = g.edges().take(10).collect();
    engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();

    let batch = engine.query_batch(&[warmed.clone(), fresh.clone()]);
    assert_eq!(batch.succeeded(), 2);
    let served = batch.reports[0].as_ref().unwrap();
    assert_eq!(served.metrics.cache_hits, 1);
    assert!(served.plan.incremental.is_some());
    let cold = batch.reports[1].as_ref().unwrap();
    assert_eq!(cold.metrics.cache_hits, 0);
    for (r, q) in batch.reports.iter().zip([&warmed, &fresh]) {
        assert_eq!(
            r.as_ref().unwrap().relation,
            hhk_simulation(q, &engine.graph()).relation
        );
    }
}

#[test]
fn isomorphic_resubmission_hits_maintained_entry() {
    // The maintained entry lives under the canonical key, so an
    // isomorphic renumbering of the original pattern also serves from
    // it after deletions.
    let g = random::uniform(90, 360, 4, 88);
    let assign = hash_partition(90, 3, 88);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, frag).build();

    let mut b = PatternBuilder::new();
    let a = b.add_node(Label(0));
    let c = b.add_node(Label(1));
    let d = b.add_node(Label(2));
    b.add_edge(a, c);
    b.add_edge(c, d);
    b.add_edge(d, a);
    let q = b.build();
    // Same pattern, nodes inserted in reverse order.
    let mut b = PatternBuilder::new();
    let d = b.add_node(Label(2));
    let c = b.add_node(Label(1));
    let a = b.add_node(Label(0));
    b.add_edge(a, c);
    b.add_edge(c, d);
    b.add_edge(d, a);
    let q_iso = b.build();

    engine.query(&q).unwrap();
    let dels: Vec<_> = g.edges().take(12).collect();
    engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();
    let warm = engine.query(&q_iso).unwrap();
    assert_eq!(warm.metrics.cache_hits, 1);
    assert!(warm.plan.incremental.is_some());
    assert_eq!(
        warm.relation,
        hhk_simulation(&q_iso, &engine.graph()).relation
    );
}
