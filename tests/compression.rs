//! Integration tests for query-preserving compression: the quotient
//! graphs answer every pattern exactly, compose with the distributed
//! engines, and respect the simulation preorder's structure.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::prelude::*;
use dgs::sim::{compress_bisim, compress_simeq, SimPreorder};
use proptest::prelude::*;
use std::sync::Arc;

fn small_workload() -> impl Strategy<Value = (Graph, Pattern)> {
    (10usize..70, 1usize..5, 2usize..5, 3usize..6, any::<u64>()).prop_map(
        |(n, em, labels, nq, seed)| {
            let g = random::uniform(n, n * em, labels, seed);
            let q = patterns::random_cyclic(nq, nq + 3, labels, seed ^ 0xA5A5);
            (g, q)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Both quotients answer arbitrary patterns exactly.
    #[test]
    fn quotients_are_exact((g, q) in small_workload()) {
        let oracle = hhk_simulation(&q, &g).relation;
        prop_assert_eq!(&compress_simeq(&g).query_expanded(&q), &oracle);
        prop_assert_eq!(&compress_bisim(&g).query_expanded(&q), &oracle);
    }

    /// Simulation-equivalence merges at least as much as bisimulation,
    /// and both quotients never grow the graph.
    #[test]
    fn merge_hierarchy((g, _q) in small_workload()) {
        let s = compress_simeq(&g);
        let b = compress_bisim(&g);
        prop_assert!(s.class_count() <= b.class_count());
        prop_assert!(b.class_count() <= g.node_count().max(1) || g.node_count() == 0);
        prop_assert!(s.graph.size() <= g.size());
    }

    /// Matches are upward-closed under the simulation preorder — the
    /// half of the compression theorem that lifts quotient answers
    /// back to `G`.
    #[test]
    fn matches_upward_closed((g, q) in small_workload()) {
        let rel = hhk_simulation(&q, &g).relation;
        let pre = SimPreorder::compute(&g);
        for u in q.nodes() {
            for &v in rel.matches_of(u) {
                for w in g.nodes() {
                    if pre.le(v, w) {
                        prop_assert!(rel.contains(u, w));
                    }
                }
            }
        }
    }
}

/// Compress-then-distribute: fragment the *quotient*, run the
/// distributed engines on it, expand, and compare with the
/// uncompressed centralized oracle — the full pipeline §7 suggests.
#[test]
fn distributed_query_on_compressed_graph() {
    for seed in 0..5 {
        let g = random::web_like(1_500, 6_000, 4, seed);
        let q = patterns::random_cyclic(4, 7, 4, seed + 21);
        let c = compress_simeq(&g);
        let k = 4;
        let assign = hash_partition(c.graph.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&c.graph, &assign, k));
        let runner = DistributedSim::default();
        let oracle = hhk_simulation(&q, &g).relation;
        for algo in [Algorithm::dgpm(), Algorithm::Dgpms] {
            let report = runner.run(&algo, &c.graph, &frag, &q);
            let expanded = c.expand(&report.relation);
            assert_eq!(expanded, oracle, "seed {seed}, {}", report.algorithm);
        }
    }
}

/// Compression shrinks the distributed work too: on a compressible
/// tree workload, running dGPM over the fragmented quotient ships no
/// more data than over the fragmented original.
#[test]
fn compression_reduces_distributed_shipment_on_trees() {
    let g = tree::random_tree(4_000, 3, 9);
    let q = patterns::random_dag_with_depth(4, 6, 3, 3, 2);
    let c = compress_simeq(&g);
    assert!(
        c.graph.size() * 2 < g.size(),
        "tree should compress at least 2x, got {} -> {}",
        g.size(),
        c.graph.size()
    );
    let k = 6;
    let runner = DistributedSim::default();

    let assign_g = hash_partition(g.node_count(), k, 5);
    let frag_g = Arc::new(Fragmentation::build(&g, &assign_g, k));
    let on_g = runner.run(&Algorithm::dgpm(), &g, &frag_g, &q);

    let assign_c = hash_partition(c.graph.node_count(), k, 5);
    let frag_c = Arc::new(Fragmentation::build(&c.graph, &assign_c, k));
    let on_c = runner.run(&Algorithm::dgpm(), &c.graph, &frag_c, &q);

    assert_eq!(c.expand(&on_c.relation), on_g.relation);
    assert!(
        on_c.metrics.data_bytes <= on_g.metrics.data_bytes,
        "quotient shipped more: {} > {}",
        on_c.metrics.data_bytes,
        on_g.metrics.data_bytes
    );
}

/// The compression pipeline handles DAG inputs and keeps them DAGs,
/// so `dGPMd` remains applicable after compression.
#[test]
fn compression_preserves_dagness() {
    use dgs::graph::algo::graph_is_dag;
    for seed in 0..5 {
        let g = dag::citation_like(800, 2_000, 4, seed);
        assert!(graph_is_dag(&g));
        let c = compress_simeq(&g);
        assert!(
            graph_is_dag(&c.graph),
            "seed {seed}: quotient of a DAG must stay a DAG for simulation equivalence"
        );
        let q = patterns::random_dag_with_depth(4, 6, 3, 4, seed);
        let k = 3;
        let assign = hash_partition(c.graph.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&c.graph, &assign, k));
        let report = DistributedSim::default().run(&Algorithm::Dgpmd, &c.graph, &frag, &q);
        assert_eq!(
            c.expand(&report.relation),
            hhk_simulation(&q, &g).relation,
            "seed {seed}"
        );
    }
}
