//! Property tests for the auto-planner: `Algorithm::Auto` must always
//! (a) resolve to an engine whose precondition holds, and (b) agree
//! with the centralized `hhk_simulation` oracle — on trees, DAGs, and
//! cyclic graphs alike.

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn engine_over(g: &Graph, assign: &[usize], k: usize) -> SimEngine {
    let frag = Arc::new(Fragmentation::build(g, assign, k));
    SimEngine::builder(g, frag).build()
}

/// The planner's chosen engine must be applicable to the facts it was
/// chosen from.
fn assert_applicable(engine: &SimEngine, report: &RunReport, q_is_dag: bool) {
    let f = engine.facts();
    match report.algorithm {
        "dGPMt" => {
            assert!(
                f.is_rooted_tree && f.fragments_connected,
                "dGPMt picked off-scope"
            );
        }
        "dGPMd" => assert!(q_is_dag || f.is_dag, "dGPMd picked off-scope"),
        "dGPMs" | "dGPM" => {}
        "trivial-∅" => assert!(!q_is_dag && f.is_dag, "short-circuit picked off-scope"),
        other => panic!("planner resolved to unexpected engine {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trees with connected fragments: Auto resolves to dGPMt and the
    /// relation equals the oracle.
    #[test]
    fn auto_on_trees(
        n in 20usize..200,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree(n, 4, seed);
        let assign = tree_partition(&g, k);
        let engine = engine_over(&g, &assign, k);
        let q = patterns::random_dag_with_depth(3, 4, 2, 4, seed ^ 0x51);
        let report = engine.query(&q).expect("auto never fails on a valid pattern");
        prop_assert_eq!(report.algorithm, "dGPMt");
        assert_applicable(&engine, &report, true);
        prop_assert_eq!(&report.relation, &hhk_simulation(&q, &g).relation);
    }

    /// DAG graphs with DAG patterns: Auto resolves to dGPMd and the
    /// relation equals the oracle.
    #[test]
    fn auto_on_dags(
        n in 40usize..300,
        em in 2usize..4,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = dag::citation_like(n, em * n, 5, seed);
        let assign = hash_partition(n, k, seed);
        let engine = engine_over(&g, &assign, k);
        let q = patterns::random_dag_with_depth(4, 6, 2, 5, seed ^ 0x52);
        let report = engine.query(&q).expect("auto never fails on a valid pattern");
        prop_assert_eq!(report.algorithm, "dGPMd");
        assert_applicable(&engine, &report, true);
        prop_assert_eq!(&report.relation, &hhk_simulation(&q, &g).relation);
    }

    /// Cyclic graphs with cyclic patterns: Auto falls back to dGPMs
    /// and the relation equals the oracle.
    #[test]
    fn auto_on_cyclic(
        n in 30usize..150,
        em in 2usize..5,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, em * n, 4, seed);
        let assign = hash_partition(n, k, seed);
        let engine = engine_over(&g, &assign, k);
        let q = patterns::random_cyclic(3, 6, 4, seed ^ 0x53);
        let report = engine.query(&q).expect("auto never fails on a valid pattern");
        assert_applicable(&engine, &report, dgs::graph::algo::pattern_is_dag(&q));
        // If G happened to come out acyclic the planner short-circuits
        // (answer-level agreement); otherwise relations must match.
        if report.algorithm == "trivial-∅" {
            prop_assert!(!hhk_simulation(&q, &g).relation.is_total());
            prop_assert!(report.answer().is_empty());
        } else {
            prop_assert_eq!(report.algorithm, "dGPMs");
            prop_assert_eq!(&report.relation, &hhk_simulation(&q, &g).relation);
        }
    }

    /// Whatever the workload, Auto (a) never panics, (b) never errors
    /// on a non-empty pattern, and (c) agrees with the oracle at the
    /// answer level.
    #[test]
    fn auto_total_on_arbitrary_workloads(
        n in 20usize..120,
        em in 1usize..5,
        k in 1usize..5,
        nq in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, em * n, 3, seed);
        let assign = hash_partition(n, k, seed);
        let engine = engine_over(&g, &assign, k);
        let q = patterns::random_cyclic(nq, nq + 2, 3, seed ^ 0x54);
        let report = engine.query(&q).expect("auto never fails on a valid pattern");
        let oracle = hhk_simulation(&q, &g);
        prop_assert_eq!(report.is_match, oracle.relation.is_total());
        if report.is_match {
            prop_assert_eq!(report.answer(), &oracle.relation);
        } else {
            prop_assert!(report.answer().is_empty());
        }
    }

    /// Boolean queries agree between the Virtual and Threaded
    /// executors (and with the data-selecting answer).
    #[test]
    fn query_boolean_executor_agreement(
        n in 20usize..100,
        em in 1usize..4,
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, em * n, 3, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let q = patterns::random_cyclic(3, 5, 3, seed ^ 0x55);
        let virt = SimEngine::builder(&g, Arc::clone(&frag)).build();
        let thr = SimEngine::builder(&g, frag)
            .executor(ExecutorKind::Threaded)
            .build();
        let bv = virt.query_boolean(&q).unwrap();
        let bt = thr.query_boolean(&q).unwrap();
        prop_assert_eq!(bv.is_match, bt.is_match);
        prop_assert_eq!(bv.is_match, virt.query(&q).unwrap().is_match);
        prop_assert_eq!(bv.is_match, hhk_simulation(&q, &g).relation.is_total());
    }
}

/// The 10-pattern batch acceptance scenario: one engine build, ten
/// queries, per-query metrics, one amortized broadcast.
#[test]
fn ten_pattern_batch_against_one_engine() {
    let n = 400;
    let k = 4;
    let g = random::uniform(n, 4 * n, 5, 77);
    let assign = hash_partition(n, k, 77);
    // Exactly one fragmentation build for the whole batch.
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let engine = SimEngine::builder(&g, Arc::clone(&frag)).build();
    assert!(Arc::ptr_eq(&engine.fragmentation(), &frag));

    let qs: Vec<Pattern> = (0..10)
        .map(|i| patterns::random_cyclic(3, 6, 5, 1000 + i))
        .collect();
    let batch = engine.query_batch(&qs);
    assert_eq!(batch.reports.len(), 10);
    assert_eq!(batch.succeeded(), 10);
    for (r, q) in batch.reports.iter().zip(&qs) {
        let r = r.as_ref().unwrap();
        // Per-query metrics are reported...
        assert!(r.metrics.total_ops > 0);
        // ... and per-query answers match the oracle.
        assert_eq!(r.relation, hhk_simulation(q, &g).relation);
    }
    // The batch broadcast is amortized: |F| control messages for the
    // posting of all 10 patterns, not 10 * |F|.
    let per_query_control: u64 = batch
        .reports
        .iter()
        .map(|r| r.as_ref().unwrap().metrics.control_messages)
        .sum();
    assert_eq!(batch.total.control_messages, per_query_control + k as u64);
}
