//! End-to-end golden tests against the paper's own worked examples.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{adversarial, social};
use dgs::prelude::*;
use std::sync::Arc;

/// Example 2: the unique maximum match of Fig. 1.
#[test]
fn example2_maximum_match() {
    let w = social::fig1();
    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let report = DistributedSim::default().run(&Algorithm::dgpm(), &w.graph, &frag, &w.pattern);
    assert!(report.is_match);
    let mut got: Vec<_> = report.answer().iter().collect();
    let mut expected = w.expected_matches();
    got.sort();
    expected.sort();
    assert_eq!(got, expected);
    // f1 must not match F ("no SP nodes trust his recommendation").
    assert!(!report.answer().contains(w.qnode("F"), w.node("f1")));
    assert!(!report.answer().contains(w.qnode("YB"), w.node("yb1")));
}

/// Example 3: Q0(G0) as Boolean and data-selecting queries.
#[test]
fn example3_ring_answers() {
    let q = adversarial::q0();
    let n = 10;
    let g = adversarial::cycle_graph(n);
    let assign = adversarial::per_pair_assignment(n);
    let frag = Arc::new(Fragmentation::build(&g, &assign, n));
    let report = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
    // Boolean: true. Data-selecting: {(A, Ai), (B, Bi) | i in 1..n}.
    assert!(report.is_match);
    assert_eq!(report.answer().len(), 2 * n);
    for i in 1..=n {
        assert!(report.answer().contains(QNodeId(0), adversarial::a_node(i)));
        assert!(report.answer().contains(QNodeId(1), adversarial::b_node(i)));
    }
}

/// Example 7: in the intact Fig. 1, after the initial partial
/// evaluation no Boolean variable is ever updated to false, so no
/// data message is sent at all.
#[test]
fn example7_no_false_updates() {
    let w = social::fig1();
    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let report = DistributedSim::default().run(
        &Algorithm::dgpm_incremental_only(),
        &w.graph,
        &frag,
        &w.pattern,
    );
    assert_eq!(report.metrics.data_messages, 0);
    assert!(report.is_match);
}

/// Example 8: removing the edge (f2, sp1) falsifies X(F, f2) at F2,
/// which cascades around the recommendation cycle and empties the
/// entire answer.
#[test]
fn example8_falsification_cascade() {
    let w = social::fig1();
    let mut gb = GraphBuilder::new();
    for v in w.graph.nodes() {
        gb.add_node(w.graph.label(v));
    }
    for (a, b) in w.graph.edges() {
        if !(a == w.node("f2") && b == w.node("sp1")) {
            gb.add_edge(a, b);
        }
    }
    let g = gb.build();
    let frag = Arc::new(Fragmentation::build(&g, &w.assignment, 3));
    let report =
        DistributedSim::default().run(&Algorithm::dgpm_incremental_only(), &g, &frag, &w.pattern);
    let oracle = hhk_simulation(&w.pattern, &g);
    assert_eq!(report.relation, oracle.relation);
    assert!(report.metrics.data_messages > 0, "falsifications must ship");
    // The F-SP-YF cycle is broken: none of the cycle nodes can match.
    assert!(report.relation.matches_of(w.qnode("F")).is_empty());
    assert!(report.relation.matches_of(w.qnode("SP")).is_empty());
    assert!(report.relation.matches_of(w.qnode("YF")).is_empty());
    assert!(!report.is_match);
    assert!(report.answer().is_empty());
}

/// Examples 9/10: on a DAG workload, rank scheduling sends fewer
/// (batched) messages than eager falsification shipping.
#[test]
fn example10_rank_batching_reduces_messages() {
    use dgs::graph::generate::{dag, patterns};
    // Seeds picked so the workload sits in the chatty-eager regime
    // (dGPMd's count is the fixed rank x site-pair bound either way).
    let g = dag::citation_like(2_000, 5_000, 6, 3);
    // A deep DAG query makes eager shipping chatty.
    let q = patterns::random_dag_with_depth(8, 12, 6, 6, 4);
    let assign = hash_partition(g.node_count(), 6, 3);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 6));
    let runner = DistributedSim::default();
    let rd = runner.run(&Algorithm::Dgpmd, &g, &frag, &q);
    let rg = runner.run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q);
    assert_eq!(rd.relation, rg.relation);
    assert!(
        rd.metrics.data_messages <= rg.metrics.data_messages,
        "dGPMd {} msgs vs dGPM {} msgs",
        rd.metrics.data_messages,
        rg.metrics.data_messages
    );
    // The rank batches carry the same variables.
    assert!(rd.metrics.data_bytes <= rg.metrics.data_bytes + 9 * rd.metrics.data_messages);
}

/// §2.1: Boolean vs data-selecting queries are consistent.
#[test]
fn boolean_and_data_selecting_consistency() {
    let w = social::fig1();
    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let report = DistributedSim::default().run(&Algorithm::dgpm(), &w.graph, &frag, &w.pattern);
    assert_eq!(report.is_match, boolean_matches(&w.pattern, &w.graph));
    assert_eq!(report.is_match, !report.answer().is_empty());
}
