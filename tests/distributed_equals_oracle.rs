//! The central correctness property: every distributed engine computes
//! exactly the centralized maximum simulation relation, on any graph,
//! pattern and fragmentation.

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::prelude::*;
use std::sync::Arc;

fn check_general_algorithms(g: &Graph, q: &Pattern, assign: &[usize], k: usize, tag: &str) {
    let frag = Arc::new(Fragmentation::build(g, assign, k));
    let oracle = hhk_simulation(q, g);
    // One session serves every engine under test.
    let engine = SimEngine::builder(g, frag).build();
    for algo in [
        Algorithm::dgpm(),
        Algorithm::dgpm_nopt(),
        Algorithm::dgpm_incremental_only(),
        Algorithm::Dgpms,
        Algorithm::MatchCentral,
        Algorithm::DisHhk,
        Algorithm::DMes,
    ] {
        let report = engine.query_with(&algo, q).unwrap();
        assert_eq!(
            report.relation, oracle.relation,
            "{tag}: {} disagrees with the oracle",
            report.algorithm
        );
        assert_eq!(report.is_match, oracle.matches(), "{tag}: boolean answer");
    }
    // The auto-planner must also land on an oracle-exact engine here
    // (these workloads are never trivially empty *and* cyclic-on-DAG).
    let auto = engine.query(q).unwrap();
    if auto.algorithm != "trivial-∅" {
        assert_eq!(auto.relation, oracle.relation, "{tag}: Auto disagrees");
    } else {
        assert!(!oracle.matches(), "{tag}: Auto short-circuit must be right");
    }
}

#[test]
fn partitioner_choice_never_changes_answers() {
    // Hash, BFS-clustered and LDG-streamed assignments give very
    // different |Ef|, but every engine computes the same relation.
    let g = random::community(600, 2_400, 6, 0.08, 5, 17);
    let q = patterns::random_cyclic(4, 8, 5, 17);
    let k = 5;
    for (name, assign) in [
        ("hash", hash_partition(g.node_count(), k, 17)),
        ("bfs", bfs_partition(&g, k, 17)),
        ("ldg", dgs::partition::ldg_partition(&g, k, 0.1, 17)),
    ] {
        check_general_algorithms(&g, &q, &assign, k, name);
    }
}

#[test]
fn random_cyclic_workloads() {
    for seed in 0..12 {
        let g = random::uniform(180, 650, 5, seed);
        let q = patterns::random_cyclic(4, 8, 5, seed * 3 + 1);
        let k = 2 + (seed as usize % 4);
        let assign = hash_partition(g.node_count(), k, seed);
        check_general_algorithms(&g, &q, &assign, k, &format!("uniform seed {seed}"));
    }
}

#[test]
fn web_like_workloads() {
    for seed in 0..6 {
        let g = random::web_like(300, 1_500, 8, seed);
        let q = patterns::random_cyclic(5, 10, 8, seed + 40);
        let assign = bfs_partition(&g, 5, seed);
        check_general_algorithms(&g, &q, &assign, 5, &format!("web seed {seed}"));
    }
}

#[test]
fn community_workloads_with_low_crossing() {
    for seed in 0..6 {
        let g = random::community(400, 1_600, 4, 0.1, 6, seed);
        let q = patterns::random_cyclic(4, 8, 6, seed + 9);
        let assign = random::community_assignment(400, 4);
        check_general_algorithms(&g, &q, &assign, 4, &format!("community seed {seed}"));
    }
}

#[test]
fn dag_graph_workloads_with_dgpmd() {
    for seed in 0..10 {
        let g = dag::citation_like(250, 700, 5, seed);
        let q = patterns::random_dag_with_depth(6, 9, 3, 5, seed + 11);
        let k = 4;
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        let oracle = hhk_simulation(&q, &g);
        let report = engine.query_with(&Algorithm::Dgpmd, &q).unwrap();
        assert_eq!(report.relation, oracle.relation, "dGPMd seed {seed}");
        // Auto must pick dGPMd on this workload.
        assert_eq!(engine.plan(&q).unwrap().algorithm, "dGPMd");
        // dGPM must agree on the same workload.
        let report2 = engine.query_with(&Algorithm::dgpm(), &q).unwrap();
        assert_eq!(report2.relation, oracle.relation, "dGPM seed {seed}");
    }
}

#[test]
fn dag_pattern_on_cyclic_graph_with_dgpmd() {
    for seed in 0..8 {
        let g = random::uniform(220, 800, 5, seed + 500);
        let q = patterns::random_dag_with_depth(5, 8, 4, 5, seed);
        let assign = hash_partition(g.node_count(), 5, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 5));
        let engine = SimEngine::builder(&g, frag).build();
        let oracle = hhk_simulation(&q, &g);
        let report = engine.query_with(&Algorithm::Dgpmd, &q).unwrap();
        assert_eq!(report.relation, oracle.relation, "seed {seed}");
    }
}

#[test]
fn tree_workloads_with_dgpmt() {
    for seed in 0..8 {
        let g = tree::random_tree_with_chain_bias(350, 4, 0.5, seed);
        let q = patterns::random_dag_with_depth(5, 7, 3, 4, seed + 77);
        let k = 6;
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        let oracle = hhk_simulation(&q, &g);
        let report = engine.query_with(&Algorithm::Dgpmt, &q).unwrap();
        assert_eq!(report.relation, oracle.relation, "dGPMt seed {seed}");
        // Auto must pick dGPMt on this workload.
        assert_eq!(engine.plan(&q).unwrap().algorithm, "dGPMt");
        // dGPM on the same tree fragmentation must also agree.
        let report2 = engine.query_with(&Algorithm::dgpm(), &q).unwrap();
        assert_eq!(
            report2.relation, oracle.relation,
            "dGPM-on-tree seed {seed}"
        );
    }
}

#[test]
fn extreme_fragmentations() {
    // One node per site, and everything on one site.
    let g = random::uniform(40, 160, 4, 9);
    let q = patterns::random_cyclic(3, 6, 4, 9);
    let one_per_site: Vec<usize> = (0..40).collect();
    check_general_algorithms(&g, &q, &one_per_site, 40, "one node per site");
    check_general_algorithms(&g, &q, &vec![0; 40], 1, "single site");
}

#[test]
fn naive_and_hhk_agree_as_oracles() {
    for seed in 0..10 {
        let g = random::uniform(80, 280, 4, seed + 1000);
        let q = patterns::random_cyclic(4, 7, 4, seed);
        assert_eq!(
            naive_simulation(&q, &g).relation,
            hhk_simulation(&q, &g).relation,
            "seed {seed}"
        );
    }
}
