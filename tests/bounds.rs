//! Empirical checks of the paper's performance bounds (Theorems 2, 3
//! and Corollary 4): the data-shipment guarantees are inequalities we
//! can verify exactly, message by message.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::prelude::*;
use std::sync::Arc;

/// A `Falsified` message costs 5 bytes of framing plus 6 bytes per
/// shipped variable (see `dgs_core::dgpm::DgpmMsg`).
fn shipped_vars(metrics: &RunMetrics) -> u64 {
    (metrics.data_bytes - 5 * metrics.data_messages) / 6
}

/// Theorem 2: dGPM (without push) ships at most one falsification per
/// (crossing edge, query node) pair — `O(|Ef||Vq|)`.
#[test]
fn dgpm_shipment_bounded_by_ef_times_vq() {
    for seed in 0..8 {
        let g = random::uniform(300, 1_200, 4, seed);
        let q = patterns::random_cyclic(4, 8, 4, seed + 3);
        let k = 5;
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let report =
            DistributedSim::default().run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q);
        let bound = (frag.ef() * q.node_count()) as u64;
        assert!(
            shipped_vars(&report.metrics) <= bound,
            "seed {seed}: shipped {} > |Ef||Vq| = {bound}",
            shipped_vars(&report.metrics)
        );
    }
}

/// Theorem 3: dGPMd sends at most one batch per ordered site pair per
/// rank round, and its shipment stays within the dGPM bound.
#[test]
fn dgpmd_message_and_shipment_bounds() {
    for seed in 0..6 {
        let g = dag::citation_like(400, 1_100, 5, seed);
        let d = 4;
        let q = patterns::random_dag_with_depth(7, 11, d, 5, seed + 31);
        let k = 5;
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let report = DistributedSim::default().run(&Algorithm::Dgpmd, &g, &frag, &q);
        let max_batches = ((d + 1) * k * (k - 1)) as u64;
        assert!(
            report.metrics.data_messages <= max_batches,
            "seed {seed}: {} messages > {max_batches}",
            report.metrics.data_messages
        );
    }
}

/// Corollary 4: dGPMt's shipment is O(|Q||F|) — growing the tree by
/// 16× with fixed |F| leaves DS essentially unchanged, and the
/// absolute volume stays tiny.
#[test]
fn dgpmt_shipment_independent_of_graph_size() {
    let q = patterns::path_pattern(3, &[Label(0), Label(1), Label(2)]);
    let k = 6;
    let ds_of = |n: usize| {
        let g = tree::random_tree_with_chain_bias(n, 4, 0.4, 5);
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let report = DistributedSim::default().run(&Algorithm::Dgpmt, &g, &frag, &q);
        report.metrics.data_bytes
    };
    let small = ds_of(500);
    let large = ds_of(8_000);
    assert!(
        large <= small.max(1) * 4,
        "tree DS grew with |G|: {small} -> {large}"
    );
    // Absolute sanity: a handful of equations and assignments, KBs at
    // most.
    assert!(large < 16 * 1024);
}

/// The dGPM response-time bound is partition bounded, not a function
/// of |G|: on community graphs with *fixed* crossing structure,
/// growing |G| grows PT at most linearly through |Fm| (never through
/// global coordination rounds).
#[test]
fn dgpm_rounds_do_not_grow_with_graph_size() {
    let q = patterns::random_cyclic(4, 8, 6, 11);
    let rounds_of = |n: usize| {
        let g = random::community(n, 4 * n, 4, 0.05, 6, 11);
        let assign = random::community_assignment(n, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let report =
            DistributedSim::default().run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q);
        report.metrics.quiescence_rounds
    };
    // Quiescence rounds (fixpoint + gather) are workload-shape, not
    // size, dependent.
    assert_eq!(rounds_of(500), rounds_of(4_000));
}

/// dMes ships at least an order of magnitude more data than dGPM on
/// workloads with real falsification traffic — the Fig. 6(b) gap.
#[test]
fn dmes_ships_more_than_dgpm() {
    let mut gaps = Vec::new();
    for seed in 0..5 {
        let g = random::uniform(400, 1_600, 4, seed + 60);
        let q = patterns::random_cyclic(4, 8, 4, seed + 61);
        let assign = hash_partition(g.node_count(), 6, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 6));
        let runner = DistributedSim::default();
        let dgpm = runner.run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q);
        let dmes = runner.run(&Algorithm::DMes, &g, &frag, &q);
        assert_eq!(dgpm.relation, dmes.relation);
        gaps.push(dmes.metrics.data_bytes as f64 / dgpm.metrics.data_bytes.max(1) as f64);
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(
        mean_gap > 10.0,
        "dMes should ship far more than dGPM, got mean ratio {mean_gap:.1} ({gaps:?})"
    );
}

/// Match ships the entire graph; dGPM ships orders of magnitude less
/// — in the paper's regime, i.e. a partition with |Ef| ≪ |E| (the
/// paper refines random partitions down to |Vf| = 25%; here the
/// community structure plays that role).
#[test]
fn match_ships_the_graph_dgpm_does_not() {
    let k = 8;
    let g = random::community(5_000, 20_000, k, 0.02, 5, 77);
    let q = patterns::random_cyclic(5, 10, 5, 78);
    let assign = random::community_assignment(g.node_count(), k);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let runner = DistributedSim::default();
    let m = runner.run(&Algorithm::MatchCentral, &g, &frag, &q);
    let d = runner.run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q);
    assert_eq!(m.relation, d.relation);
    // Match's DS ≈ serialized |G| (6 bytes/node + 8 bytes/edge).
    assert!(m.metrics.data_bytes as usize >= 6 * g.node_count() + 8 * g.edge_count());
    assert!(
        d.metrics.data_bytes * 10 < m.metrics.data_bytes,
        "dGPM {} vs Match {}",
        d.metrics.data_bytes,
        m.metrics.data_bytes
    );
    // And dGPM respects its Theorem 2 bound on this workload too.
    assert!(shipped_vars(&d.metrics) <= (frag.ef() * q.node_count()) as u64);
}
