//! Cross-executor conformance and chaos harness.
//!
//! The three executors — deterministic virtual time, real threads, and
//! real OS processes over sockets — must be interchangeable: identical
//! relations (byte-for-byte, the `MatchRelation` representation is
//! canonical sorted lists) and message metrics within documented
//! bounds.
//!
//! ## Documented metric bounds
//!
//! Graph simulation is a monotone fixpoint, so the *set* of shipped
//! falsified variables is executor-invariant; only **batch
//! boundaries** of the asynchronous data phases depend on message
//! interleaving. Hence, across executors:
//!
//! * relations: exactly equal (and equal to the centralized oracle);
//! * `result_messages`: exactly equal — per-site result collection is
//!   one message per site;
//! * `control_messages`: exactly equal for the round-deterministic
//!   protocols (`dGPMt` has no rounds; `dGPMd` runs exactly
//!   `max_rank + 1` rank rounds). `dGPMs` repeats a stratum iff some
//!   site flags `MoreWork`, and that flag is **timing-sensitive**: a
//!   `Batch` arriving before the site's own `StartRound` is buffered
//!   silently and shipped by that `StartRound` (one round *earlier*
//!   than the virtual schedule), suppressing the flag. Control counts
//!   therefore agree within `|F| · (1 + |Δrounds|)` — one possible
//!   flag per site per round plus `|F|` `StartRound`s per
//!   added/removed repeat round;
//! * shipped **variables**: exactly equal, recovered from the data
//!   metrics as `(data_bytes − header·data_messages) / 6` where the
//!   per-message header is 5 bytes for `dGPMs` (`Batch`: 1 tag + 4
//!   vec-length) and 9 for `dGPMd` (`RankBatch`: + 4 rank), and each
//!   shipped `Var` is 6 bytes;
//! * `dGPMt` is fully deterministic (one `RootEquations` per site, one
//!   `SolvedFalse` per site): all data metrics exactly equal;
//! * per-site sent-message counts (`site_msgs`): every site sends at
//!   least its result message, and counts differ from the virtual
//!   executor's only by data-batch splitting — bounded by the total
//!   shipped variable count.

use dgs::graph::generate::{dag, patterns, random, tree};
use dgs::net::{ChaosPlan, ExecutorKind, RunMetrics, SocketConfig};
use dgs::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Spawn-local worker processes: the test binary spawns `dgsq worker`
/// copies (cargo builds the bin for integration tests).
fn spawn_cfg(workers: usize) -> SocketConfig {
    SocketConfig::spawn_local(env!("CARGO_BIN_EXE_dgsq"), vec!["worker".into()], workers)
        .site_timeout(Duration::from_secs(60))
}

struct Trio {
    virt: SimEngine,
    thr: SimEngine,
    sock: SimEngine,
}

fn trio(g: &Graph, assign: &[usize], k: usize) -> Trio {
    let frag = Arc::new(Fragmentation::build(g, assign, k));
    // Cache off: conformance compares protocol metrics, so every query
    // must actually run the protocol.
    let virt = SimEngine::builder(g, Arc::clone(&frag))
        .executor(ExecutorKind::Virtual)
        .cache(false)
        .build();
    let thr = SimEngine::builder(g, Arc::clone(&frag))
        .executor(ExecutorKind::Threaded)
        .cache(false)
        .build();
    let sock = SimEngine::builder(g, frag)
        .cache(false)
        .build_socket(spawn_cfg(2))
        .expect("socket cluster bootstrap");
    Trio { virt, thr, sock }
}

/// Recovers the shipped-variable count from batched data metrics.
fn shipped_vars(m: &RunMetrics, header: u64) -> u64 {
    assert!(m.data_bytes >= header * m.data_messages, "{m:?}");
    (m.data_bytes - header * m.data_messages) / 6
}

/// The cross-executor assertions; `data_header` is `None` for fully
/// deterministic protocols (exact data equality) and `Some(bytes)`
/// for asynchronous ones (shipped-variable equality).
fn assert_conformance(
    g: &Graph,
    q: &Pattern,
    algo: &Algorithm,
    t: &Trio,
    data_header: Option<u64>,
    control_exact: bool,
) {
    let rv = t.virt.query_with(algo, q).expect("virtual run");
    let rt = t.thr.query_with(algo, q).expect("threaded run");
    let rs = t.sock.query_with(algo, q).expect("socket run");

    // Relations: byte-for-byte identical, and equal to the oracle.
    let oracle = hhk_simulation(q, g).relation;
    assert_eq!(rv.relation, oracle, "virtual vs oracle");
    assert_eq!(rt.relation, oracle, "threaded vs oracle");
    assert_eq!(rs.relation, oracle, "socket vs oracle");
    assert_eq!(rv.algorithm, rs.algorithm);

    // Result collection is one message per site: deterministic.
    let k = rv.metrics.site_msgs.len() as u64;
    for (name, r) in [("threaded", &rt), ("socket", &rs)] {
        assert_eq!(
            r.metrics.result_messages, rv.metrics.result_messages,
            "{name} result messages"
        );
        assert_eq!(
            r.metrics.result_bytes, rv.metrics.result_bytes,
            "{name} result bytes"
        );
        if control_exact {
            assert_eq!(
                r.metrics.control_messages, rv.metrics.control_messages,
                "{name} control messages"
            );
        } else {
            // dGPMs: MoreWork flags (≤ 1 per site per round) and repeat
            // rounds (|F| StartRounds each) are timing-sensitive.
            let round_diff = r
                .metrics
                .quiescence_rounds
                .abs_diff(rv.metrics.quiescence_rounds);
            let slack = k * (1 + round_diff);
            assert!(
                r.metrics
                    .control_messages
                    .abs_diff(rv.metrics.control_messages)
                    <= slack,
                "{name} control messages: {} vs virtual {} (slack {slack})",
                r.metrics.control_messages,
                rv.metrics.control_messages
            );
        }
    }

    match data_header {
        // Asynchronous data phase: batch boundaries may differ, the
        // shipped variable multiset may not.
        Some(header) => {
            let vars = shipped_vars(&rv.metrics, header);
            for (name, r) in [("threaded", &rt), ("socket", &rs)] {
                assert_eq!(
                    shipped_vars(&r.metrics, header),
                    vars,
                    "{name} shipped variables"
                );
            }
        }
        // Fully deterministic protocol: exact data equality.
        None => {
            for (name, r) in [("threaded", &rt), ("socket", &rs)] {
                assert_eq!(r.metrics.data_messages, rv.metrics.data_messages, "{name}");
                assert_eq!(r.metrics.data_bytes, rv.metrics.data_bytes, "{name}");
            }
        }
    }

    // Per-site sent-message counts: every site answers the gather, and
    // counts differ from virtual only by data-batch splitting.
    let mut slack: u64 = match data_header {
        Some(h) => shipped_vars(&rv.metrics, h),
        None => 0,
    };
    if !control_exact {
        // Timing-sensitive MoreWork flags: at most one per round.
        slack += rv
            .metrics
            .quiescence_rounds
            .max(rt.metrics.quiescence_rounds)
            .max(rs.metrics.quiescence_rounds);
    }
    for (name, r) in [("threaded", &rt), ("socket", &rs)] {
        assert_eq!(r.metrics.site_msgs.len(), rv.metrics.site_msgs.len());
        for (i, (&got, &base)) in r
            .metrics
            .site_msgs
            .iter()
            .zip(&rv.metrics.site_msgs)
            .enumerate()
        {
            assert!(got >= 1, "{name}: site {i} sent nothing");
            assert!(
                got.abs_diff(base) <= slack,
                "{name}: site {i} sent {got} msgs vs virtual {base} (slack {slack})"
            );
        }
    }

    // The socket run's per-site visit accounting flowed back over the
    // wire: charged ops are execution-order-independent totals.
    assert_eq!(rs.metrics.total_ops, rv.metrics.total_ops, "socket ops");
    assert_eq!(rs.metrics.site_ops, rv.metrics.site_ops, "socket site ops");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(34))]

    /// Trees (connected fragments) under dGPMt: fully deterministic
    /// protocol, exact metric equality across all three executors.
    #[test]
    fn conformance_on_trees(
        n in 20usize..90,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree(n, 4, seed);
        let assign = tree_partition(&g, k);
        let t = trio(&g, &assign, k);
        let q = patterns::random_dag_with_depth(3, 4, 2, 4, seed ^ 0x9a);
        assert_conformance(&g, &q, &Algorithm::Dgpmt, &t, None, true);
    }

    /// DAG graphs under dGPMd: rank-round batching, shipped-variable
    /// equality.
    #[test]
    fn conformance_on_dags(
        n in 30usize..120,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = dag::citation_like(n, 3 * n, 5, seed);
        let assign = hash_partition(g.node_count(), k, seed);
        let t = trio(&g, &assign, k);
        let q = patterns::random_dag_with_depth(3, 5, 2, 5, seed ^ 0x37);
        assert_conformance(&g, &q, &Algorithm::Dgpmd, &t, Some(9), true);
    }

    /// Cyclic graphs and patterns under dGPMs: stratum-round batching,
    /// shipped-variable equality.
    #[test]
    fn conformance_on_cyclic(
        n in 30usize..120,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, 4 * n, 5, seed);
        let assign = hash_partition(g.node_count(), k, seed);
        let t = trio(&g, &assign, k);
        let q = patterns::random_cyclic(3, 6, 5, seed ^ 0x5c);
        assert_conformance(&g, &q, &Algorithm::Dgpms, &t, Some(5), false);
    }
}

/// `Auto` end-to-end on a socket session: the planner, the session
/// surface and the remote execution compose.
#[test]
fn auto_on_socket_agrees_with_oracle() {
    let g = random::uniform(150, 600, 5, 42);
    let assign = hash_partition(g.node_count(), 4, 42);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
    let engine = SimEngine::builder(&g, frag)
        .build_socket(spawn_cfg(3))
        .unwrap();
    for seed in 0..5 {
        let q = patterns::random_cyclic(3, 6, 5, 420 + seed);
        let report = engine.query(&q).unwrap();
        assert_eq!(
            report.relation,
            hhk_simulation(&q, &g).relation,
            "seed {seed}"
        );
        assert!(report.plan.auto);
    }
    // Cache semantics hold on socket sessions too: an isomorphic
    // resubmission is served with zero messages.
    let q = patterns::random_cyclic(3, 6, 5, 420);
    let warm = engine.query(&q).unwrap();
    assert_eq!(warm.metrics.cache_hits, 1);
    assert_eq!(warm.metrics.data_messages, 0);
}

/// Boolean and batch query surfaces work over the socket executor.
#[test]
fn boolean_and_batch_on_socket() {
    let g = random::uniform(100, 400, 4, 77);
    let assign = hash_partition(g.node_count(), 3, 77);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build_socket(spawn_cfg(2))
        .unwrap();
    let oracle_engine = SimEngine::builder(&g, frag).cache(false).build();
    let qs: Vec<Pattern> = (0..4)
        .map(|i| patterns::random_cyclic(3, 6, 4, 770 + i))
        .collect();
    let batch = engine.query_batch(&qs);
    assert_eq!(batch.succeeded(), 4);
    for (r, q) in batch.reports.iter().zip(&qs) {
        let r = r.as_ref().unwrap();
        assert_eq!(r.relation, oracle_engine.query(q).unwrap().relation);
    }
    let b = engine.query_boolean(&qs[0]).unwrap();
    assert_eq!(b.is_match, batch.reports[0].as_ref().unwrap().is_match);
}

/// Regression: a graph delta on a socket session must re-bootstrap
/// the worker processes — without it, post-delta queries silently ran
/// against the stale pre-delta graph the workers loaded at cluster
/// start.
#[test]
fn delta_rebootstraps_socket_workers() {
    let g = random::uniform(100, 400, 4, 67);
    let assign = hash_partition(g.node_count(), 3, 67);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(spawn_cfg(2))
        .unwrap();
    let q = patterns::random_cyclic(3, 6, 4, 67);
    assert_eq!(
        engine.query(&q).unwrap().relation,
        hhk_simulation(&q, &g).relation
    );

    // Insert fresh edges (insertions invalidate and re-plan, so the
    // follow-up query really runs the protocol — on the workers).
    let mut inserts = Vec::new();
    'outer: for u in g.nodes() {
        for v in g.nodes() {
            if u != v && !g.has_edge(u, v) {
                inserts.push((u, v));
                if inserts.len() == 10 {
                    break 'outer;
                }
            }
        }
    }
    let report = engine
        .apply_delta(&GraphDelta::insertions(inserts))
        .unwrap();
    assert_eq!(report.inserted, 10);
    let after = engine.query(&q).unwrap();
    assert!(after.metrics.cache_hits == 0, "must re-run the protocol");
    assert_eq!(
        after.relation,
        hhk_simulation(&q, &engine.graph()).relation,
        "socket workers answered on the stale pre-delta graph"
    );

    // Deletions too (maintenance runs in-process, but an explicit
    // engine request executes on the re-bootstrapped workers).
    let dels: Vec<_> = engine.graph().edges().take(12).collect();
    engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();
    let again = engine.query_with(&Algorithm::Dgpms, &q).unwrap();
    assert_eq!(again.relation, hhk_simulation(&q, &engine.graph()).relation);
}

/// Chaos: drop-then-retry + duplication + delay/reorder on the real
/// socket transport must not change any answer — the protocol's data
/// messages are idempotent (at-least-once safe), which this proves
/// over an actual TCP transport rather than the virtual-time model.
#[test]
fn chaos_transport_preserves_answers_over_real_sockets() {
    let g = random::uniform(120, 500, 4, 9);
    let assign = hash_partition(g.node_count(), 4, 9);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
    let oracle_engine = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build();
    let mut total_data = 0u64;
    let mut total_dup = 0u64;
    for chaos_seed in 0..3u64 {
        let cfg = spawn_cfg(2).chaos(ChaosPlan::heavy(chaos_seed));
        let engine = SimEngine::builder(&g, Arc::clone(&frag))
            .cache(false)
            .build_socket(cfg)
            .unwrap();
        for qseed in 0..4 {
            let q = patterns::random_cyclic(3, 6, 4, 90 + qseed);
            let chaotic = engine.query(&q).unwrap();
            let clean = oracle_engine.query(&q).unwrap();
            assert_eq!(
                chaotic.relation, clean.relation,
                "chaos seed {chaos_seed}, query seed {qseed}"
            );
            total_data += chaotic.metrics.data_messages;
            total_dup += chaotic.metrics.duplicated_messages;
        }
    }
    // The chaos plan really fired: with hundreds of data messages at a
    // 20% duplicate rate, retransmissions must have been recorded.
    assert!(total_data > 0, "workload shipped no data at all");
    assert!(
        total_dup > 0,
        "heavy chaos duplicated nothing across {total_data} data messages"
    );
}

/// A killed worker process yields a typed `DgsError::SiteFailed` —
/// not a hang, not a panic — and the session object stays usable.
#[test]
fn killed_worker_is_a_typed_error() {
    let g = random::uniform(80, 320, 4, 13);
    let assign = hash_partition(g.node_count(), 3, 13);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(spawn_cfg(2).site_timeout(Duration::from_secs(10)))
        .unwrap();
    let q = patterns::random_cyclic(3, 5, 4, 13);
    engine.query(&q).expect("healthy cluster answers"); // healthy first

    // kill -9 one worker.
    let pids = engine.socket_cluster().unwrap().worker_pids();
    assert_eq!(pids.len(), 2);
    let status = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("kill spawns");
    assert!(status.success());
    // Give the OS a moment to tear the connection down.
    std::thread::sleep(Duration::from_millis(100));

    let err = engine.query(&q).unwrap_err();
    assert!(
        matches!(err, DgsError::SiteFailed { .. }),
        "expected SiteFailed, got {err}"
    );
    // And it keeps failing typed (no hang) rather than poisoning.
    let err = engine.query(&q).unwrap_err();
    assert!(matches!(err, DgsError::SiteFailed { .. }), "{err}");
}

/// Attach mode: workers started independently (here: `dgsq worker`
/// processes we spawn by hand, in production `dgsd --worker`) can be
/// attached to by address.
#[test]
fn attach_mode_runs_against_external_workers() {
    use std::io::BufRead;
    let mut workers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_dgsq"))
            .args(["worker", "--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let stdout = child.stdout.take().unwrap();
        let mut lines = std::io::BufReader::new(stdout).lines();
        let line = lines.next().unwrap().unwrap();
        let addr = line
            .split("listening on ")
            .nth(1)
            .expect("announce line")
            .trim()
            .to_owned();
        addrs.push(addr);
        workers.push(child);
    }
    let g = random::uniform(90, 360, 4, 21);
    let assign = hash_partition(g.node_count(), 3, 21);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let q = patterns::random_cyclic(3, 6, 4, 21);
    let oracle = hhk_simulation(&q, &g).relation;
    let engine = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build_socket(SocketConfig::attach(addrs.clone()))
        .unwrap();
    assert_eq!(engine.query(&q).unwrap().relation, oracle);
    drop(engine);
    // Attached workers are externally managed: dropping the session
    // closes its connections but leaves them up for the next
    // coordinator (the two-terminal dgsd --worker flow).
    let engine2 = SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(SocketConfig::attach(addrs))
        .unwrap();
    assert_eq!(engine2.query(&q).unwrap().relation, oracle);
    drop(engine2);
    for mut w in workers {
        assert!(
            w.try_wait().unwrap().is_none(),
            "attached worker exited on coordinator drop"
        );
        w.kill().unwrap();
        w.wait().unwrap();
    }
}

/// Regression (threaded executor): a panicking site handler surfaces
/// as `DgsError::SiteFailed` naming the site instead of poisoning the
/// run ambiguously. The trigger is real: the Boolean gather path's
/// 64-node presence-bitmask limit is an `assert!` inside the site
/// handler.
#[test]
fn threaded_site_panic_is_typed_site_failed() {
    let g = random::uniform(80, 300, 3, 31);
    let assign = hash_partition(g.node_count(), 3, 31);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
    let engine = SimEngine::builder(&g, frag)
        .executor(ExecutorKind::Threaded)
        .cache(false)
        .build();
    // 65 query nodes: every site's Boolean gather handler panics on
    // the presence-bitmask limit.
    let mut pb = PatternBuilder::new();
    let nodes: Vec<QNodeId> = (0..65).map(|i| pb.add_node(Label(i % 3))).collect();
    for w in nodes.windows(2) {
        pb.add_edge(w[0], w[1]);
    }
    let q = pb.build();
    let err = engine
        .query_boolean_with(&Algorithm::dgpm_incremental_only(), &q)
        .unwrap_err();
    match err {
        DgsError::SiteFailed { reason, .. } => {
            assert!(reason.contains("presence bitmask"), "{reason}");
        }
        other => panic!("expected SiteFailed, got {other}"),
    }
    // The session survives the failed run.
    let ok = patterns::random_cyclic(3, 5, 3, 31);
    assert!(engine.query(&ok).is_ok());
}

/// The baselines are gated, not broken: a socket session reports a
/// typed `Unsupported` error before any frame is sent.
#[test]
fn baselines_are_gated_on_socket_sessions() {
    let g = random::uniform(60, 240, 4, 55);
    let assign = hash_partition(g.node_count(), 2, 55);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
    let engine = SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(spawn_cfg(1))
        .unwrap();
    let q = patterns::random_cyclic(3, 5, 4, 55);
    for algo in [Algorithm::MatchCentral, Algorithm::DisHhk, Algorithm::DMes] {
        let err = engine.query_with(&algo, &q).unwrap_err();
        assert!(
            matches!(err, DgsError::Unsupported { .. }),
            "{}: {err}",
            algo.name()
        );
    }
    // The dGPM family still runs on the same session.
    assert!(engine.query_with(&Algorithm::dgpm(), &q).is_ok());
}

/// `dgsq query --executor socket` works end-to-end: the CLI spawns
/// its own workers, answers, and tears everything down.
#[test]
fn dgsq_socket_executor_end_to_end() {
    use std::io::Write as _;
    let dir = std::env::temp_dir().join(format!("dgs-exec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gpath = dir.join("g.txt");
    let qpath = dir.join("q.txt");
    let g = random::uniform(200, 800, 5, 3);
    let q = patterns::random_cyclic(3, 6, 5, 3);
    dgs::graph::io::write_graph(&g, std::fs::File::create(&gpath).unwrap()).unwrap();
    dgs::graph::io::write_pattern(&q, std::fs::File::create(&qpath).unwrap()).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dgsq"))
        .args([
            "query",
            "--graph",
            gpath.to_str().unwrap(),
            "--pattern",
            qpath.to_str().unwrap(),
            "--sites",
            "3",
            "--executor",
            "socket",
            "--workers",
            "2",
        ])
        .output()
        .unwrap();
    std::io::stderr().write_all(&out.stderr).unwrap();
    assert!(out.status.success(), "dgsq exited {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("socket executor: 3 sites across 2 worker"),
        "{stdout}"
    );
    assert!(stdout.contains("match = "), "{stdout}");

    // Same answer as the in-process run.
    let expected = {
        let assign = hash_partition(g.node_count(), 3, 1);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        engine.query(&q).unwrap().is_match
    };
    assert!(stdout.contains(&format!("match = {expected}")), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Intra-query parallelism conformance: a single query with the full
/// intra-query worker budget must be **byte-identical** to the fully
/// sequential run — same relation, same plan choice, same virtual
/// metrics (only `wall_time` is real time) — and equal to the
/// centralized oracle, on every engine and under every executor.
#[test]
fn intra_query_parallelism_is_bit_identical() {
    let g = random::uniform(600, 2_400, 5, 77);
    let q = patterns::random_cyclic(4, 8, 5, 78);
    let k = 6;
    let assign = hash_partition(g.node_count(), k, 77);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let oracle = hhk_simulation(&q, &g);

    let build = |workers: usize, kind: ExecutorKind| {
        SimEngine::builder(&g, Arc::clone(&frag))
            .executor(kind)
            .cache(false)
            .batch_workers(workers)
            .build()
    };
    let seq = build(1, ExecutorKind::Virtual);
    for workers in [2, k, 32] {
        let par = build(workers, ExecutorKind::Virtual);
        for algo in [
            Algorithm::dgpm(),
            Algorithm::dgpm_nopt(),
            Algorithm::Dgpmd,
            Algorithm::Dgpms,
            Algorithm::Dgpmt,
            Algorithm::MatchCentral,
            Algorithm::DisHhk,
            Algorithm::DMes,
            Algorithm::Auto,
        ] {
            let (a, b) = match (seq.query_with(&algo, &q), par.query_with(&algo, &q)) {
                (Ok(a), Ok(b)) => (a, b),
                // Structure-gated engines reject this workload the
                // same way on both paths.
                (Err(ea), Err(eb)) => {
                    assert_eq!(format!("{ea}"), format!("{eb}"));
                    continue;
                }
                (a, b) => panic!("diverging outcomes: {:?} vs {:?}", a.is_err(), b.is_err()),
            };
            assert_eq!(a.relation, oracle.relation, "{}", a.algorithm);
            assert_eq!(a.relation, b.relation, "{}", a.algorithm);
            assert_eq!(a.algorithm, b.algorithm);
            let mut ma = a.metrics.clone();
            let mut mb = b.metrics.clone();
            ma.wall_time = Duration::ZERO;
            mb.wall_time = Duration::ZERO;
            assert_eq!(
                ma, mb,
                "virtual metrics must be bit-identical ({})",
                a.algorithm
            );
        }
    }

    // The threaded and socket executors are already per-site parallel;
    // the worker budget must not change their answers either.
    let thr = build(k, ExecutorKind::Threaded);
    let report = thr.query_with(&Algorithm::dgpm(), &q).unwrap();
    assert_eq!(report.relation, oracle.relation);
    let sock = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .batch_workers(k)
        .build_socket(spawn_cfg(2))
        .expect("socket cluster bootstrap");
    let report = sock.query_with(&Algorithm::dgpm(), &q).unwrap();
    assert_eq!(report.relation, oracle.relation);
}
