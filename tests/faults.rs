//! Fault-injection and heterogeneity tests: the distributed engines
//! compute the same relation under message duplication, adversarial
//! delivery schedules, stragglers, and their combination — the
//! confluence of monotone fixpoints that §4.1's "never changes back"
//! argument rests on.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::core::dgpm::{self, DgpmConfig};
use dgs::core::dgpms;
use dgs::graph::generate::{patterns, random};
use dgs::net::{FaultPlan, VirtualExecutor};
use dgs::prelude::*;
use std::sync::Arc;

fn workload(seed: u64) -> (Graph, Pattern, Arc<Fragmentation>, usize) {
    let n = 600;
    let k = 5;
    let g = random::community(n, 2_400, 6, 0.1, 5, seed);
    let q = patterns::random_cyclic(4, 8, 5, seed + 7);
    let assign = hash_partition(n, k, seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    (g, q, frag, k)
}

#[test]
fn dgpm_answer_invariant_under_duplication() {
    for seed in 0..6 {
        let (g, q, frag, _) = workload(seed);
        let oracle = hhk_simulation(&q, &g).relation;
        let qa = Arc::new(q.clone());
        for rate in [0.25, 0.5, 1.0] {
            let (coord, sites) = dgpm::build(&frag, &qa, DgpmConfig::incremental_only());
            let exec = VirtualExecutor::new(CostModel::default())
                .with_faults(FaultPlan::duplicating(rate, seed));
            let o = exec.run(coord, sites);
            assert_eq!(
                o.coordinator.answer.unwrap(),
                oracle,
                "seed {seed}, rate {rate}"
            );
            // If anything shipped, full duplication must show up in
            // the metrics.
            if rate == 1.0 && o.metrics.data_messages > 0 {
                assert_eq!(
                    o.metrics.duplicated_messages * 2,
                    o.metrics.data_messages,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn dgpm_with_push_tolerates_duplication() {
    // Pushed equations and subscriptions are also idempotent.
    for seed in 0..4 {
        let (g, q, frag, _) = workload(seed);
        let oracle = hhk_simulation(&q, &g).relation;
        let qa = Arc::new(q.clone());
        let (coord, sites) = dgpm::build(&frag, &qa, DgpmConfig::optimized());
        let exec = VirtualExecutor::new(CostModel::default())
            .with_faults(FaultPlan::duplicating(1.0, seed));
        let o = exec.run(coord, sites);
        assert_eq!(o.coordinator.answer.unwrap(), oracle, "seed {seed}");
    }
}

#[test]
fn dgpms_answer_invariant_under_duplication_and_jitter() {
    for seed in 0..4 {
        let (g, q, frag, _) = workload(seed);
        let oracle = hhk_simulation(&q, &g).relation;
        let qa = Arc::new(q.clone());
        let (coord, sites) = dgpms::build(&frag, &qa);
        let cost = CostModel::default().with_jitter(0.4, seed);
        let exec = VirtualExecutor::new(cost).with_faults(FaultPlan::duplicating(0.5, seed ^ 0xFF));
        let o = exec.run(coord, sites);
        assert_eq!(o.coordinator.answer.clone().unwrap(), oracle, "seed {seed}");
    }
}

#[test]
fn answers_invariant_under_stragglers() {
    for seed in 0..4 {
        let (g, q, frag, k) = workload(seed);
        let oracle = hhk_simulation(&q, &g).relation;
        for slow_site in [0, k - 1] {
            let cost = CostModel::default().with_straggler(slow_site, 16.0);
            let runner = DistributedSim::virtual_time(cost);
            for algo in [Algorithm::dgpm(), Algorithm::dgpm_nopt(), Algorithm::Dgpms] {
                let report = runner.run(&algo, &g, &frag, &q);
                assert_eq!(
                    report.relation, oracle,
                    "seed {seed}, straggler {slow_site}, {}",
                    report.algorithm
                );
            }
        }
    }
}

#[test]
fn straggler_raises_response_time_not_shipment() {
    // Under a compute-dominant model the straggler's extra busy time
    // must show in the makespan (with network latency in the mix the
    // critical path can reroute around the slow site).
    let (g, q, frag, _) = workload(11);
    let runner = |cost: CostModel| {
        DistributedSim::virtual_time(cost).run(&Algorithm::dgpm_incremental_only(), &g, &frag, &q)
    };
    let healthy = runner(CostModel::compute_only());
    let degraded = runner(CostModel::compute_only().with_straggler(0, 12.0));
    assert!(degraded.metrics.virtual_time_ns > healthy.metrics.virtual_time_ns);
    // Shipment is *schedule*-sensitive at the margin (incremental
    // evaluation coalesces differently when the straggler reorders
    // deliveries) but must not scale with the 12x slowdown.
    let (h, d) = (
        healthy.metrics.data_bytes as f64,
        degraded.metrics.data_bytes as f64,
    );
    assert!(
        (d - h).abs() / h.max(1.0) < 0.02,
        "shipment drifted: {d} vs {h} bytes"
    );
    assert_eq!(degraded.relation, healthy.relation);
}

#[test]
fn duplication_is_deterministic_end_to_end() {
    let (g, q, frag, _) = workload(3);
    let _ = g;
    let qa = Arc::new(q.clone());
    let run = || {
        let (coord, sites) = dgpm::build(&frag, &qa, DgpmConfig::incremental_only());
        let exec =
            VirtualExecutor::new(CostModel::default()).with_faults(FaultPlan::duplicating(0.5, 77));
        let o = exec.run(coord, sites);
        (
            o.coordinator.answer.unwrap(),
            o.metrics.data_bytes,
            o.metrics.duplicated_messages,
            o.metrics.virtual_time_ns,
        )
    };
    assert_eq!(run(), run());
}
