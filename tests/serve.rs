//! Serving-layer tests: wire-codec totality (roundtrip + corruption,
//! never a panic), the end-to-end daemon with ≥ 8 concurrent clients
//! mixing queries and deltas against an in-process `SimEngine`
//! oracle, admission-control backpressure, version negotiation,
//! session replacement, multi-session routing with fan-out merge,
//! snapshot isolation under a delta storm, and drain-on-shutdown.

use dgs::core::{GraphDelta, SimEngine};
use dgs::graph::generate::{patterns, random};
use dgs::prelude::*;
use dgs::serve::proto::frame;
use dgs::serve::wire::{
    encode_frame_into, put_varint, read_frame, split_request_id, write_frame, FrameReader,
};
use dgs::serve::{
    run_conn_sweep, Answer, Conn, ConnSweepConfig, DgsClient, ErrorCode, MatchDiff, Request,
    Response, ServeError, Server, ServerConfig, SessionInfo, SessionOptions, SubEventKind,
    SubscriptionEvent, WireAlgorithm, WireMetrics, WirePartitioner, WireTrace, WIRE_MAGIC,
};
use proptest::prelude::*;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- helpers ----------------------------------------------------------

fn mixed_pattern(i: usize, labels: usize) -> Pattern {
    let seed = (i % 10) as u64;
    match i % 3 {
        0 => patterns::random_cyclic(3, 6, labels, 700 + seed),
        1 => patterns::random_dag_with_depth(4, 6, 2, labels, 700 + seed),
        _ => patterns::random_cyclic(4, 8, labels, 750 + seed),
    }
}

fn build_engine(g: &Graph, k: usize, seed: u64) -> SimEngine {
    let assign = hash_partition(g.node_count(), k, seed);
    let frag = Arc::new(Fragmentation::build(g, &assign, k));
    SimEngine::builder(g, frag).build()
}

fn spawn_server(g: &Graph, k: usize, seed: u64, cfg: ServerConfig) -> dgs::serve::ServerHandle {
    let engine = build_engine(g, k, seed);
    Server::bind(&ServeAddr::parse("127.0.0.1:0").unwrap(), engine, cfg)
        .expect("bind ephemeral port")
        .spawn()
}

/// The wire rows an in-process report would ship — what "byte
/// identical" means after framing is stripped.
fn rows_of(relation: &MatchRelation) -> Vec<Vec<u32>> {
    (0..relation.query_nodes())
        .map(|u| {
            relation
                .matches_of(QNodeId(u as u16))
                .iter()
                .map(|v| v.0)
                .collect()
        })
        .collect()
}

/// What a fan-out answer must contain: the per-query-node sorted
/// dedup union of the shard relations (graph simulation distributes
/// over disjoint union, so this *is* the combined graph's relation).
fn fan_out_rows(parts: &[Vec<Vec<u32>>]) -> Vec<Vec<u32>> {
    let nq = parts.iter().map(|p| p.len()).max().unwrap_or(0);
    (0..nq)
        .map(|u| {
            let mut row: Vec<u32> = parts
                .iter()
                .flat_map(|p| p.get(u).into_iter().flatten().copied())
                .collect();
            row.sort_unstable();
            row.dedup();
            row
        })
        .collect()
}

// ---- codec: one roundtrip per frame type ------------------------------

fn sample_answer(seed: u64) -> Answer {
    let mut rows = Vec::new();
    for u in 0..(seed % 4) {
        rows.push(
            (0..(seed % 7))
                .map(|i| (i * (u + 2) + seed % 13) as u32)
                .collect(),
        );
    }
    Answer {
        rows,
        is_match: seed.is_multiple_of(2),
        algorithm: format!("algo{}", seed % 3),
        plan: format!("plan {seed}"),
        metrics: WireMetrics {
            data_bytes: seed,
            data_messages: seed / 2,
            virtual_time_ns: seed.wrapping_mul(3),
            cache_hits: seed % 2,
            ..WireMetrics::default()
        },
    }
}

fn all_requests() -> Vec<Request> {
    let g = random::uniform(12, 30, 3, 5);
    vec![
        Request::Ping,
        Request::GraphInfo,
        Request::Query {
            pattern: mixed_pattern(0, 3),
            algorithm: WireAlgorithm::Auto,
            boolean: false,
        },
        Request::Query {
            pattern: mixed_pattern(1, 3),
            algorithm: WireAlgorithm::Dgpm,
            boolean: true,
        },
        Request::QueryBatch {
            patterns: (0..4).map(|i| mixed_pattern(i, 3)).collect(),
            algorithm: WireAlgorithm::Dgpms,
        },
        Request::ApplyDelta {
            insert_edges: vec![(0, 1), (5, 2)],
            delete_edges: vec![(3, 3)],
        },
        Request::CacheStats,
        Request::CompressionInfo,
        Request::LoadGraph {
            graph: g,
            options: SessionOptions {
                sites: 3,
                partitioner: WirePartitioner::Bfs,
                seed: 9,
                cache_capacity: 7,
                compression: Some(dgs::core::CompressionMethod::Bisim),
                compression_threshold: 0.75,
            },
        },
        Request::Shutdown,
        Request::SessionCreate {
            name: "shard-a".into(),
            graph: random::uniform(10, 24, 3, 6),
            options: SessionOptions::default(),
        },
        Request::SessionList,
        Request::SessionDrop {
            name: "shard-a".into(),
        },
        Request::SessionRoute {
            sessions: vec!["shard-a".into(), "shard-b".into()],
        },
        Request::Subscribe {
            pattern: mixed_pattern(2, 3),
            algorithm: WireAlgorithm::Auto,
        },
        Request::Unsubscribe { sub_id: 42 },
        Request::Metrics,
        Request::Trace,
    ]
}

fn sample_metrics_snapshot() -> dgs::net::MetricsSnapshot {
    dgs::net::MetricsSnapshot {
        version: 1,
        counters: vec![
            ("dgsd_requests_total".into(), 7),
            ("dgsd_conns_accepted_total".into(), 3),
        ],
        gauges: vec![
            ("dgsd_queue_depth".into(), 2),
            ("dgsd_session_generation{session=\"default\"}".into(), 5),
        ],
        histograms: vec![dgs::net::HistogramSummary {
            name: "dgsd_request_ns{frame=\"QUERY\"}".into(),
            count: 9,
            min: 1_200,
            max: 8_000_000,
            p50: 40_000,
            p95: 900_000,
            p99: 7_000_000,
        }],
    }
}

fn sample_trace() -> WireTrace {
    WireTrace {
        conn_id: 3,
        request_id: 17,
        ty: 0x12,
        session: "default".into(),
        queue_ns: 12_000,
        exec_ns: 4_000_000,
        encode_ns: 8_000,
        total_ns: 4_020_000,
        algorithm: "dGPM".into(),
        plan: "bounded: cyclic pattern".into(),
        site_ops: vec![10, 20, 0, 5],
        site_msgs: vec![2, 4, 0, 1],
        generation: 6,
    }
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Pong,
        Response::GraphInfo(dgs::serve::GraphInfo {
            nodes: 100,
            edges: 400,
            sites: 4,
            vf: 123,
            ef: 456,
            label_bound: 8,
            generation: 3,
        }),
        Response::Answer(sample_answer(11)),
        Response::BatchAnswer {
            items: vec![
                Ok(sample_answer(4)),
                Err((ErrorCode::Unsupported, "not a tree".into())),
                Ok(sample_answer(9)),
            ],
            total: WireMetrics {
                total_ops: 77,
                ..WireMetrics::default()
            },
        },
        Response::DeltaApplied(dgs::serve::DeltaSummary {
            inserted: 1,
            deleted: 2,
            ignored: 3,
            crossing_inserted: 4,
            crossing_deleted: 5,
            virtuals_created: 6,
            virtuals_retired: 7,
            maintained_entries: 8,
            invalidated_entries: 9,
            revoked_pairs: 10,
            generation: 11,
            resurrected_pairs: 12,
        }),
        Response::CacheStats(None),
        Response::CacheStats(Some(dgs::serve::WireCacheStats {
            entries: 1,
            capacity: 2,
            hits: 3,
            misses: 4,
            evictions: 5,
            generation: 6,
        })),
        Response::CompressionInfo(None),
        Response::CompressionInfo(Some(dgs::serve::WireCompression {
            classes: 42,
            ratio: 0.5,
            method: "bisim".into(),
            active: true,
        })),
        Response::Loaded {
            nodes: 10,
            edges: 20,
            sites: 2,
        },
        Response::ShuttingDown,
        Response::Error {
            code: ErrorCode::Busy,
            message: "at capacity".into(),
        },
        Response::SessionCreated(SessionInfo {
            name: "shard-a".into(),
            nodes: 10,
            edges: 24,
            sites: 4,
            generation: 0,
        }),
        Response::Sessions(vec![
            SessionInfo {
                name: "default".into(),
                nodes: 100,
                edges: 400,
                sites: 4,
                generation: 3,
            },
            SessionInfo {
                name: "shard-a".into(),
                nodes: 10,
                edges: 24,
                sites: 2,
                generation: 0,
            },
        ]),
        Response::SessionDropped,
        Response::SessionRouted { sessions: 2 },
        Response::Subscribed {
            sub_id: 5,
            generation: 17,
            rows: vec![vec![1, 2, 3], vec![], vec![9]],
        },
        Response::Unsubscribed,
        Response::MatchDiff(MatchDiff {
            sub_id: 5,
            generation: 18,
            added: vec![(0, 4), (2, 11)],
            removed: vec![(1, 7)],
        }),
        Response::SubEvent {
            sub_id: 5,
            kind: SubEventKind::SessionDropped,
        },
        Response::Metrics(sample_metrics_snapshot()),
        Response::Metrics(dgs::net::MetricsSnapshot::default()),
        Response::Trace(vec![sample_trace(), WireTrace::default()]),
        Response::Trace(vec![]),
    ]
}

#[test]
fn every_request_frame_roundtrips() {
    for req in all_requests() {
        let (ty, payload) = req.encode();
        assert_eq!(
            Request::decode(ty, &payload).unwrap(),
            req,
            "frame {ty:#04x}"
        );
    }
}

#[test]
fn every_response_frame_roundtrips() {
    for resp in all_responses() {
        let (ty, payload) = resp.encode();
        assert_eq!(
            Response::decode(ty, &payload).unwrap(),
            resp,
            "frame {ty:#04x}"
        );
    }
}

#[test]
fn every_truncated_frame_is_a_typed_error() {
    for req in all_requests() {
        let (ty, payload) = req.encode();
        for len in 0..payload.len() {
            match Request::decode(ty, &payload[..len]) {
                Ok(_) => panic!("frame {ty:#04x} decoded from a strict prefix of {len} bytes"),
                Err(ServeError::Corrupt { .. }) => {}
                Err(e) => panic!("frame {ty:#04x} prefix {len}: unexpected error kind {e:?}"),
            }
        }
    }
    for resp in all_responses() {
        let (ty, payload) = resp.encode();
        for len in 0..payload.len() {
            match Response::decode(ty, &payload[..len]) {
                Err(_) => {}
                // One deliberate exception: DELTA_APPLIED's trailing
                // `resurrected_pairs` is a v4 extension a v3 decoder
                // never sees, so the exact v3-length prefix decodes —
                // to the same summary with the extension zeroed, never
                // to garbage.
                Ok(Response::DeltaApplied(got)) if ty == frame::DELTA_APPLIED => {
                    let Response::DeltaApplied(want) = &resp else {
                        unreachable!()
                    };
                    assert_eq!(
                        got,
                        dgs::serve::DeltaSummary {
                            resurrected_pairs: 0,
                            ..want.clone()
                        },
                        "the only decodable prefix is the v3 payload"
                    );
                }
                Ok(_) => {
                    panic!("response frame {ty:#04x} decoded from a strict prefix of {len} bytes")
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Randomly corrupted payloads must decode to a typed error or a
    /// (different) valid value — never panic, never hang.
    #[test]
    fn corrupted_frames_never_panic(seed in any::<u64>(), flips in 1usize..8) {
        let reqs = all_requests();
        let req = &reqs[(seed as usize) % reqs.len()];
        let (ty, mut payload) = req.encode();
        if payload.is_empty() {
            return;
        }
        let mut s = seed;
        for _ in 0..flips {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (s >> 33) as usize % payload.len();
            payload[idx] ^= (s % 255) as u8 + 1;
        }
        let _ = Request::decode(ty, &payload); // outcome irrelevant; must return
        let resps = all_responses();
        let resp = &resps[(seed as usize) % resps.len()];
        let (ty, mut payload) = resp.encode();
        if payload.is_empty() {
            return;
        }
        for _ in 0..flips {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (s >> 33) as usize % payload.len();
            payload[idx] ^= (s % 255) as u8 + 1;
        }
        let _ = Response::decode(ty, &payload);
    }

    /// Random answers roundtrip exactly (the relation rows are what
    /// the oracle comparison depends on).
    #[test]
    fn random_answers_roundtrip(seed in any::<u64>()) {
        let resp = Response::Answer(sample_answer(seed));
        let (ty, payload) = resp.encode();
        prop_assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
    }
}

// ---- end-to-end: concurrent clients vs the in-process oracle ----------

/// The acceptance test: a daemon on an ephemeral port, 8 concurrent
/// clients mixing queries and deltas, every remote answer byte-equal
/// to what an identically configured in-process `SimEngine` produces.
#[test]
fn eight_concurrent_clients_mixing_queries_and_deltas_match_oracle() {
    const CLIENTS: usize = 8;
    const LABELS: usize = 4;
    let g = random::uniform(150, 600, LABELS, 31);
    let handle = spawn_server(&g, 4, 31, ServerConfig::default());
    let addr = handle.addr().clone();

    // The oracle: an identically configured in-process session.
    let oracle = build_engine(&g, 4, 31);
    let pool: Vec<Pattern> = (0..10).map(|i| mixed_pattern(i, LABELS)).collect();
    let expected: Vec<MatchRelation> = pool
        .iter()
        .map(|q| oracle.query(q).expect("oracle query").relation.clone())
        .collect();

    // Phase A — static graph, 8 clients hammering concurrently; every
    // answer must be byte-identical (same wire rows) to the oracle's.
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let (addr, pool, expected) = (&addr, &pool, &expected);
            s.spawn(move || {
                let mut client = DgsClient::connect(addr).expect("connect");
                for i in 0..24 {
                    let qi = (t * 24 + i) % pool.len();
                    let a = client
                        .query(&pool[qi], WireAlgorithm::Auto)
                        .unwrap_or_else(|e| panic!("client {t} query {i}: {e}"));
                    assert_eq!(a.rows, rows_of(&expected[qi]), "client {t} query {i}");
                    assert_eq!(a.is_match, expected[qi].is_total());
                }
            });
        }
    });

    // Phase B — deltas and queries concurrently: clients 0..3 each
    // delete a disjoint slice of edges (plus an insert/delete pair
    // that cancels out), the rest keep querying. Mid-flight answers
    // land at *some* generation, so only integrity is asserted here.
    let all_edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let slices: Vec<Vec<(NodeId, NodeId)>> = (0..4)
        .map(|c| {
            all_edges
                .iter()
                .copied()
                .skip(c)
                .step_by(29)
                .take(5)
                .collect()
        })
        .collect();
    // A non-edge of `g`: every delta client inserts then deletes it,
    // so whatever the interleaving, the last op on it fleet-wide is a
    // delete and the final graph stays "g minus the deleted slices".
    let probe = (0..g.node_count() as u32)
        .flat_map(|u| (0..g.node_count() as u32).map(move |v| (NodeId(u), NodeId(v))))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("a 150-node graph with 600 edges has non-edges");
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let (addr, pool, slices) = (&addr, &pool, &slices);
            s.spawn(move || {
                let mut client = DgsClient::connect(addr).expect("connect");
                if t < 4 {
                    for &(u, v) in &slices[t] {
                        client
                            .apply_delta(&GraphDelta::deletions([(u, v)]))
                            .unwrap_or_else(|e| panic!("delta client {t}: {e}"));
                    }
                    client
                        .apply_delta(&GraphDelta::insertions([probe]))
                        .and_then(|_| client.apply_delta(&GraphDelta::deletions([probe])))
                        .unwrap_or_else(|e| panic!("delta client {t} probe: {e}"));
                } else {
                    for i in 0..12 {
                        let a = client
                            .query(&pool[(t + i) % pool.len()], WireAlgorithm::Auto)
                            .unwrap_or_else(|e| panic!("query client {t}: {e}"));
                        // Integrity: is_match must agree with the rows.
                        let total = !a.rows.is_empty() && a.rows.iter().all(|r| !r.is_empty());
                        assert_eq!(a.is_match, total, "client {t} answer {i} inconsistent");
                    }
                }
            });
        }
    });

    // Phase C — convergence: the oracle absorbs the same deletions
    // (one batch; batching differs from the clients' interleaving but
    // the final graph is identical — the probe edge always ends
    // deleted), then every pool pattern must again answer
    // byte-identically.
    let deleted: Vec<(NodeId, NodeId)> = slices.iter().flatten().copied().collect();
    oracle
        .apply_delta(&GraphDelta::deletions(deleted.iter().copied()))
        .expect("oracle delta");
    let mut client = DgsClient::connect(&addr).expect("connect");
    let info = client.graph_info().expect("info");
    assert_eq!(info.edges, oracle.graph().edge_count() as u64);
    for (qi, q) in pool.iter().enumerate() {
        let want = oracle.query(q).expect("oracle re-query").relation.clone();
        let a = client.query(q, WireAlgorithm::Auto).expect("re-query");
        assert_eq!(a.rows, rows_of(&want), "post-delta pattern {qi}");
        // Byte-identical on the wire, not merely equal in memory.
        let via_wire = Response::Answer(a.clone()).encode();
        let oracle_answer = Answer {
            rows: rows_of(&want),
            is_match: a.is_match,
            algorithm: a.algorithm.clone(),
            plan: a.plan.clone(),
            metrics: a.metrics.clone(),
        };
        assert_eq!(via_wire, Response::Answer(oracle_answer).encode());
    }
    // Batches agree too.
    let (items, _) = client
        .query_batch(&pool, WireAlgorithm::Auto)
        .expect("batch");
    for (qi, item) in items.iter().enumerate() {
        let a = item.as_ref().expect("batch item");
        let want = oracle.query(&pool[qi]).expect("oracle").relation.clone();
        assert_eq!(a.rows, rows_of(&want), "batch item {qi}");
    }

    drop(client);
    handle.shutdown().expect("shutdown");
}

// ---- admission control, negotiation, admin ----------------------------

#[test]
fn admission_control_rejects_with_typed_busy_then_recovers() {
    let g = random::uniform(40, 120, 3, 7);
    let handle = spawn_server(
        &g,
        2,
        7,
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().clone();

    let c1 = DgsClient::connect(&addr).expect("first");
    let c2 = DgsClient::connect(&addr).expect("second");
    let err = match DgsClient::connect(&addr) {
        Ok(_) => panic!("third connection must be rejected"),
        Err(e) => e,
    };
    assert!(err.is_busy(), "expected Busy, got {err}");
    assert!(handle.rejected_connections() >= 1);

    // Freeing a slot lets new clients in (the server needs a moment
    // to notice the hang-up).
    drop(c1);
    let mut ok = None;
    for _ in 0..100 {
        match DgsClient::connect(&addr) {
            Ok(c) => {
                ok = Some(c);
                break;
            }
            Err(e) if e.is_busy() => std::thread::sleep(std::time::Duration::from_millis(10)),
            Err(e) => panic!("unexpected error while recovering: {e}"),
        }
    }
    let mut c = ok.expect("slot never freed");
    c.ping().expect("recovered client works");
    drop((c, c2));
    handle.shutdown().expect("shutdown");
}

#[test]
fn handshake_negotiates_down_and_rejects_garbage() {
    let g = random::uniform(30, 80, 3, 5);
    let handle = spawn_server(&g, 2, 5, ServerConfig::default());
    let addr = handle.addr().clone();

    // A future client offering v9 gets our v4 back.
    let mut conn = Conn::connect(&addr).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(9);
    write_frame(&mut conn, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME);
    assert_eq!(payload, [b'D', b'G', b'S', b'W', 4]);

    // At v3 every request carries a varint id the response echoes. A
    // malformed request frame gets a typed error and the connection
    // survives (frames are length-delimited, the stream stays in
    // sync).
    let mut garbage = vec![7u8]; // varint request id 7
    garbage.extend_from_slice(b"garbage");
    write_frame(&mut conn, 0xee, &garbage).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    assert_eq!(payload[0], 7, "response echoes the request id");
    match Response::decode(ty, &payload[1..]).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }
    let (ty, body) = Request::Ping.encode();
    let mut ping = vec![8u8]; // varint request id 8
    ping.extend_from_slice(&body);
    write_frame(&mut conn, ty, &ping).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    assert_eq!(payload[0], 8, "response echoes the request id");
    assert_eq!(Response::decode(ty, &payload[1..]).unwrap(), Response::Pong);

    // Bad magic in the handshake is refused outright.
    let mut conn2 = Conn::connect(&addr).unwrap();
    write_frame(&mut conn2, frame::HELLO, b"NOPE\x01").unwrap();
    let (ty, payload) = read_frame(&mut conn2).unwrap().unwrap();
    match Response::decode(ty, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }

    // A v2 client negotiates down and keeps the id-less framing.
    let mut conn3 = Conn::connect(&addr).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(2);
    write_frame(&mut conn3, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn3).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME);
    assert_eq!(payload, [b'D', b'G', b'S', b'W', 2]);
    let (ty, body) = Request::Ping.encode();
    write_frame(&mut conn3, ty, &body).unwrap();
    let (ty, payload) = read_frame(&mut conn3).unwrap().unwrap();
    assert_eq!(
        Response::decode(ty, &payload).unwrap(),
        Response::Pong,
        "downgraded connections answer without ids"
    );

    // So does a v1 client — the oldest wire dialect still served.
    let mut conn5 = Conn::connect(&addr).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(1);
    write_frame(&mut conn5, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn5).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME);
    assert_eq!(payload, [b'D', b'G', b'S', b'W', 1]);
    let (ty, body) = Request::Ping.encode();
    write_frame(&mut conn5, ty, &body).unwrap();
    let (ty, payload) = read_frame(&mut conn5).unwrap().unwrap();
    assert_eq!(Response::decode(ty, &payload).unwrap(), Response::Pong);

    // HELLO with trailing extension bytes after the version is
    // tolerated (a future client's extensions), not rejected.
    let mut conn4 = Conn::connect(&addr).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(3);
    hello.extend_from_slice(b"future-extension");
    write_frame(&mut conn4, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn4).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME, "trailing HELLO bytes are tolerated");
    assert_eq!(payload[4], 3);

    drop((conn, conn2, conn3, conn4, conn5));
    handle.shutdown().expect("shutdown");
}

#[test]
fn load_graph_swaps_the_served_session() {
    let g1 = random::uniform(50, 150, 3, 11);
    let handle = spawn_server(&g1, 2, 11, ServerConfig::default());
    let mut client = DgsClient::connect(handle.addr()).expect("connect");
    assert_eq!(client.graph_info().unwrap().nodes, 50);

    let g2 = random::uniform(80, 240, 4, 13);
    let options = SessionOptions {
        sites: 3,
        seed: 13,
        ..SessionOptions::default()
    };
    let (nodes, edges, sites) = client.load_graph(&g2, &options).expect("load");
    assert_eq!((nodes, edges, sites), (80, g2.edge_count() as u64, 3));
    let info = client.graph_info().unwrap();
    assert_eq!(info.nodes, 80);
    assert_eq!(info.sites, 3);

    // Answers now come from the new graph: compare with a fresh
    // oracle built exactly like the server built its session.
    let assign = hash_partition(g2.node_count(), 3, 13);
    let frag = Arc::new(Fragmentation::build(&g2, &assign, 3));
    let oracle = SimEngine::builder(&g2, frag).build();
    for i in 0..6 {
        let q = mixed_pattern(i, 4);
        let want = oracle.query(&q).expect("oracle").relation.clone();
        let a = client.query(&q, WireAlgorithm::Auto).expect("query");
        assert_eq!(a.rows, rows_of(&want), "pattern {i} after session swap");
    }
    drop(client);
    handle.shutdown().expect("shutdown");
}

#[test]
fn unix_socket_serving_works_end_to_end() {
    let g = random::uniform(60, 180, 3, 17);
    let path = std::env::temp_dir().join(format!("dgs-serve-test-{}.sock", std::process::id()));
    let addr = ServeAddr::Unix(path.clone());
    let engine = build_engine(&g, 2, 17);
    let handle = Server::bind(&addr, engine, ServerConfig::default())
        .expect("bind unix socket")
        .spawn();
    let oracle = build_engine(&g, 2, 17);

    let mut client = DgsClient::connect(handle.addr()).expect("connect over unix");
    client.ping().expect("ping");
    let q = mixed_pattern(3, 3);
    let a = client.query(&q, WireAlgorithm::Auto).expect("query");
    assert_eq!(a.rows, rows_of(&oracle.query(&q).unwrap().relation));
    drop(client);
    handle.shutdown().expect("shutdown");
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

// ---- multi-session routing + fan-out ----------------------------------

/// Create/list/drop/route over the wire. Fan-out answers must be the
/// per-query-node sorted dedup union of what identically configured
/// per-shard oracles produce, single-target admin frames on a
/// multi-session route fail with a typed `Unsupported`, and the empty
/// ("all sessions") route re-resolves per request.
#[test]
fn multi_session_routing_and_fan_out_merge_match_per_shard_oracles() {
    const LABELS: usize = 3;
    let g0 = random::uniform(60, 180, LABELS, 21);
    let handle = spawn_server(&g0, 2, 21, ServerConfig::default());
    let mut client = DgsClient::connect(handle.addr()).expect("connect");

    let ga = random::uniform(50, 150, LABELS, 22);
    let gb = random::uniform(70, 210, LABELS, 23);
    let options = SessionOptions {
        sites: 2,
        seed: 5,
        ..SessionOptions::default()
    };
    let info = client
        .session_create("shard-a", &ga, &options)
        .expect("create shard-a");
    assert_eq!(
        (info.name.as_str(), info.nodes, info.sites),
        ("shard-a", 50, 2)
    );
    client
        .session_create("shard-b", &gb, &options)
        .expect("create shard-b");
    let names: Vec<String> = client
        .session_list()
        .expect("list")
        .into_iter()
        .map(|s| s.name)
        .collect();
    assert_eq!(names, ["default", "shard-a", "shard-b"]);

    // Oracles built exactly like the server built its shards.
    let oracle_a = build_engine(&ga, 2, 5);
    let oracle_b = build_engine(&gb, 2, 5);

    // A single-name route behaves like a dedicated server for that
    // shard.
    assert_eq!(client.session_route(&["shard-a"]).expect("route"), 1);
    let q = mixed_pattern(1, LABELS);
    let a = client.query(&q, WireAlgorithm::Auto).expect("routed query");
    assert_eq!(a.rows, rows_of(&oracle_a.query(&q).unwrap().relation));

    // Fan-out over both shards.
    assert_eq!(client.session_route(&["shard-a", "shard-b"]).unwrap(), 2);
    let pool: Vec<Pattern> = (0..6).map(|i| mixed_pattern(i, LABELS)).collect();
    let expected: Vec<Vec<Vec<u32>>> = pool
        .iter()
        .map(|q| {
            fan_out_rows(&[
                rows_of(&oracle_a.query(q).unwrap().relation),
                rows_of(&oracle_b.query(q).unwrap().relation),
            ])
        })
        .collect();
    for (qi, q) in pool.iter().enumerate() {
        let a = client.query(q, WireAlgorithm::Auto).expect("fan-out query");
        assert_eq!(a.rows, expected[qi], "fan-out pattern {qi}");
        let total = !a.rows.is_empty() && a.rows.iter().all(|r| !r.is_empty());
        assert_eq!(a.is_match, total, "is_match recomputed from the merge");
        assert!(a.algorithm.starts_with("fanout"), "got {}", a.algorithm);
    }
    // Batches fan out item-wise.
    let (items, _) = client
        .query_batch(&pool, WireAlgorithm::Auto)
        .expect("fan-out batch");
    for (qi, item) in items.iter().enumerate() {
        let a = item.as_ref().expect("batch item");
        assert_eq!(a.rows, expected[qi], "batch item {qi}");
    }
    // Single-target frames refuse a two-session route, typed.
    let delta = GraphDelta::insertions([(NodeId(0), NodeId(1))]);
    for (what, err) in [
        (
            "GRAPH_INFO",
            client.graph_info().err().map(|e| e.to_string()),
        ),
        (
            "APPLY_DELTA",
            client.apply_delta(&delta).err().map(|e| e.to_string()),
        ),
        (
            "CACHE_STATS",
            client.cache_stats().err().map(|e| e.to_string()),
        ),
    ] {
        let msg = err.unwrap_or_else(|| panic!("{what} must fail on a fan-out route"));
        assert!(msg.contains("single"), "{what}: {msg}");
    }

    // The empty route means "all sessions", re-resolved per request:
    // dropping a shard shrinks the fan-out without re-routing.
    assert_eq!(client.session_route::<&str>(&[]).unwrap(), 3);
    client.session_drop("shard-b").expect("drop shard-b");
    let oracle_0 = build_engine(&g0, 2, 21);
    let q = mixed_pattern(2, LABELS);
    let want = fan_out_rows(&[
        rows_of(&oracle_0.query(&q).unwrap().relation),
        rows_of(&oracle_a.query(&q).unwrap().relation),
    ]);
    let a = client
        .query(&q, WireAlgorithm::Auto)
        .expect("all-route query");
    assert_eq!(a.rows, want, "all-route re-resolves after a drop");

    // Unknown names are typed NoSuchSession — at route and drop time.
    for err in [
        client.session_route(&["nope"]).err(),
        client.session_drop("nope").err(),
    ] {
        match err {
            Some(ServeError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::NoSuchSession)
            }
            other => panic!("expected Remote(NoSuchSession), got {other:?}"),
        }
    }
    drop(client);
    handle.shutdown().expect("shutdown");
}

// ---- snapshot isolation under fire ------------------------------------

/// A storm of writers continuously applying deltas must not push
/// query tail latency past 2x the quiet baseline — reads run against
/// an immutable generation snapshot and never block behind a writer.
/// The baseline is floored at 25 ms so the bound tests isolation,
/// not CPU timesharing: with sub-100-us serving, the writers churn
/// deltas fast enough to keep a small CI box's cores busy, and a
/// query's tail is then a few scheduler periods of waiting for CPU —
/// tens of ms on a single-core host — even though it never touches a
/// writer lock. A reader that actually serialized behind the delta
/// queue would blow through this floor by an order of magnitude.
#[test]
fn delta_storm_keeps_query_p99_within_2x_of_quiet_baseline() {
    const QUERIES: usize = 150;
    const WRITERS: usize = 3;
    let g = random::uniform(250, 1000, 4, 41);
    let handle = spawn_server(&g, 4, 41, ServerConfig::default());
    let addr = handle.addr().clone();
    let pool: Vec<Pattern> = (0..6).map(|i| mixed_pattern(i, 4)).collect();

    let p99_of = |label: &str| -> u64 {
        let mut client = DgsClient::connect(&addr).expect(label);
        let mut lat: Vec<u64> = Vec::with_capacity(QUERIES);
        for i in 0..QUERIES {
            let t = Instant::now();
            client
                .query(&pool[i % pool.len()], WireAlgorithm::Auto)
                .unwrap_or_else(|e| panic!("{label} query {i}: {e}"));
            lat.push(t.elapsed().as_nanos() as u64);
        }
        lat.sort_unstable();
        lat[lat.len() * 99 / 100]
    };

    p99_of("warm-up");
    let quiet = p99_of("quiet");

    // Writers churn generations for the whole measured pass: each
    // delta really flips edges, so every one swaps in a new snapshot.
    let all_edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let stop = AtomicBool::new(false);
    let storm = std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (addr, all_edges, stop) = (&addr, &all_edges, &stop);
            s.spawn(move || {
                let mut c = DgsClient::connect(addr).expect("writer connect");
                let slice: Vec<(NodeId, NodeId)> = all_edges
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(47)
                    .take(8)
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    c.apply_delta(&GraphDelta::deletions(slice.iter().copied()))
                        .expect("storm delete");
                    c.apply_delta(&GraphDelta::insertions(slice.iter().copied()))
                        .expect("storm insert");
                }
            });
        }
        let p = p99_of("storm");
        stop.store(true, Ordering::Relaxed);
        p
    });

    let baseline = quiet.max(25_000_000);
    assert!(
        storm <= 2 * baseline,
        "delta storm pushed query p99 to {:.3} ms, over 2x the quiet baseline {:.3} ms",
        storm as f64 / 1e6,
        baseline as f64 / 1e6,
    );
    handle.shutdown().expect("shutdown");
}

/// Generation atomicity: one batched delta applied while readers
/// hammer means every concurrent answer equals the pre-delta oracle
/// relation or the post-delta one — never a mix of the two (the
/// snapshot swap is atomic and queries pin a snapshot).
#[test]
fn concurrent_answers_observe_exactly_one_generation() {
    const READERS: usize = 4;
    let g = random::uniform(120, 480, 3, 51);
    let handle = spawn_server(&g, 3, 51, ServerConfig::default());
    let addr = handle.addr().clone();

    let q = mixed_pattern(2, 3);
    let oracle = build_engine(&g, 3, 51);
    let pre = rows_of(&oracle.query(&q).unwrap().relation);
    let dels: Vec<(NodeId, NodeId)> = g.edges().step_by(5).take(60).collect();
    oracle
        .apply_delta(&GraphDelta::deletions(dels.iter().copied()))
        .expect("oracle delta");
    let post = rows_of(&oracle.query(&q).unwrap().relation);
    assert_ne!(pre, post, "the delta must change the relation to bite");

    std::thread::scope(|s| {
        for t in 0..READERS {
            let (addr, q, pre, post) = (&addr, &q, &pre, &post);
            s.spawn(move || {
                let mut c = DgsClient::connect(addr).expect("reader connect");
                for i in 0..50 {
                    let a = c
                        .query(q, WireAlgorithm::Auto)
                        .unwrap_or_else(|e| panic!("reader {t} query {i}: {e}"));
                    assert!(
                        &a.rows == pre || &a.rows == post,
                        "reader {t} answer {i} matches neither generation: torn snapshot"
                    );
                }
            });
        }
        let (addr, dels) = (&addr, &dels);
        s.spawn(move || {
            let mut c = DgsClient::connect(addr).expect("writer connect");
            std::thread::sleep(Duration::from_millis(10));
            // One batch, one swap: exactly two generations ever serve.
            c.apply_delta(&GraphDelta::deletions(dels.iter().copied()))
                .expect("delta");
        });
    });

    // After the scope the swap has happened; only `post` serves.
    let mut c = DgsClient::connect(&addr).expect("connect");
    assert_eq!(c.query(&q, WireAlgorithm::Auto).unwrap().rows, post);
    drop(c);
    handle.shutdown().expect("shutdown");
}

// ---- drain on shutdown -------------------------------------------------

/// Shutdown drains: once a `QUERY_BATCH` request is fully written,
/// the client gets its complete answer or a typed `ShuttingDown`
/// error — never a torn frame or a short read. Raw framing is used so
/// the test can distinguish the send phase (where a hang-up is
/// legitimate socket behaviour) from the awaiting-response phase
/// (where it is the bug this test exists to catch).
#[test]
fn shutdown_drains_in_flight_batches_instead_of_cutting_sockets() {
    const WORKERS: usize = 4;
    let g = random::uniform(150, 600, 3, 61);
    let handle = spawn_server(
        &g,
        3,
        61,
        ServerConfig {
            drain_grace: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().clone();
    let patterns: Vec<Pattern> = (0..32).map(|i| mixed_pattern(i, 3)).collect();

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let (addr, patterns) = (&addr, &patterns);
                s.spawn(move || {
                    let mut conn = Conn::connect(addr).expect("dial");
                    let mut hello = WIRE_MAGIC.to_vec();
                    hello.push(2);
                    write_frame(&mut conn, frame::HELLO, &hello).expect("hello");
                    let (ty, _) = read_frame(&mut conn).expect("welcome").expect("welcome");
                    assert_eq!(ty, frame::WELCOME);

                    let (req_ty, req_payload) = Request::QueryBatch {
                        patterns: patterns.clone(),
                        algorithm: WireAlgorithm::Auto,
                    }
                    .encode();
                    let mut completed = 0usize;
                    loop {
                        if write_frame(&mut conn, req_ty, &req_payload).is_err() {
                            // The server hung up between requests; its
                            // final typed error must still be readable.
                            if let Ok(Some((ty, payload))) = read_frame(&mut conn) {
                                match Response::decode(ty, &payload) {
                                    Ok(Response::Error { code, .. }) => {
                                        assert_eq!(code, ErrorCode::ShuttingDown, "worker {t}")
                                    }
                                    other => panic!("worker {t}: expected typed error, {other:?}"),
                                }
                            }
                            return completed;
                        }
                        // The request is on the wire: from here the
                        // answer must arrive whole or as a typed error.
                        match read_frame(&mut conn) {
                            Ok(Some((ty, payload))) => {
                                match Response::decode(ty, &payload)
                                    .unwrap_or_else(|e| panic!("worker {t}: torn frame: {e}"))
                                {
                                    Response::BatchAnswer { items, .. } => {
                                        assert_eq!(
                                            items.len(),
                                            patterns.len(),
                                            "worker {t}: short batch"
                                        );
                                        completed += 1;
                                    }
                                    Response::Error { code, .. } => {
                                        assert_eq!(
                                            code,
                                            ErrorCode::ShuttingDown,
                                            "worker {t}: wrong typed error"
                                        );
                                        return completed;
                                    }
                                    other => panic!("worker {t}: unexpected frame {other:?}"),
                                }
                            }
                            Ok(None) => panic!(
                                "worker {t}: clean EOF while awaiting a batch answer — \
                                 the in-flight response was dropped"
                            ),
                            Err(e) => panic!("worker {t}: short read mid-answer: {e}"),
                        }
                    }
                })
            })
            .collect();
        // Let every worker get batches in flight, then pull the plug.
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown().expect("shutdown");
        for (t, w) in workers.into_iter().enumerate() {
            let completed = w.join().expect("worker panicked");
            assert!(completed >= 1, "worker {t} never completed a batch");
        }
    });
}

#[test]
fn remote_dgs_errors_arrive_typed() {
    let g = dgs::graph::generate::tree::random_tree(40, 3, 3);
    // Trees: an explicit dGPMt request with a *cyclic* graph pattern
    // is fine, but disHHK on an empty pattern is invalid — use an
    // empty pattern to provoke InvalidPattern.
    let handle = spawn_server(&g, 2, 3, ServerConfig::default());
    let mut client = DgsClient::connect(handle.addr()).expect("connect");
    let empty = dgs::graph::PatternBuilder::new().build();
    let err = client
        .query(&empty, WireAlgorithm::Auto)
        .expect_err("empty pattern must be rejected");
    match err {
        ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::InvalidPattern),
        other => panic!("expected Remote(InvalidPattern), got {other}"),
    }
    // The connection survives the error.
    client.ping().expect("connection still usable");
    drop(client);
    handle.shutdown().expect("shutdown");
}

// ---- v3 request ids, pipelining, and lifecycle fixes ------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// v3 framing corpus: a frame encoded with any request id splits
    /// back into exactly that id plus the untouched body — across the
    /// whole varint range, including ids needing 1..=10 bytes.
    #[test]
    fn request_id_framing_roundtrips(
        shift in 0u32..64,
        low in any::<u64>(),
        body_seed in any::<u64>(),
    ) {
        let id = low >> shift; // bias toward every varint width
        let body: Vec<u8> = (0..(body_seed % 64))
            .map(|i| (body_seed.rotate_left(i as u32) ^ i) as u8)
            .collect();
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, Some(id), |b| {
            b.extend_from_slice(&body);
            0x42
        })
        .unwrap();
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(buf[4], 0x42);
        let payload = &buf[5..];
        prop_assert_eq!(payload.len(), len);
        let (got, rest) = split_request_id(payload).unwrap();
        prop_assert_eq!(got, id);
        prop_assert_eq!(rest, &body[..]);
    }
}

/// Satellite: every client rejected at the admission gate reads a
/// complete, typed `Busy` frame even when shutdown races the burst —
/// rejections ride the drain accounting, not fire-and-forget threads.
#[test]
fn rejected_clients_read_complete_busy_frames_across_shutdown() {
    const REJECTED: usize = 6;
    let g = random::uniform(30, 80, 3, 9);
    let handle = spawn_server(
        &g,
        2,
        9,
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().clone();

    let admitted = DgsClient::connect(&addr).expect("fill the only slot");
    // A burst of doomed dials, each sending HELLO without reading the
    // answer — their Busy frames are queued (or still unwritten) when
    // the shutdown lands.
    let mut doomed = Vec::new();
    for i in 0..REJECTED {
        let mut conn = Conn::connect(&addr).unwrap_or_else(|e| panic!("dial {i}: {e}"));
        let mut hello = WIRE_MAGIC.to_vec();
        hello.push(3);
        write_frame(&mut conn, frame::HELLO, &hello).expect("hello");
        doomed.push(conn);
    }
    handle.shutdown().expect("shutdown");
    for (i, mut conn) in doomed.into_iter().enumerate() {
        let (ty, payload) = read_frame(&mut conn)
            .unwrap_or_else(|e| panic!("rejected conn {i}: torn Busy frame: {e}"))
            .unwrap_or_else(|| panic!("rejected conn {i}: EOF before the Busy frame"));
        match Response::decode(ty, &payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy, "conn {i}"),
            other => panic!("rejected conn {i}: expected Busy, got {other:?}"),
        }
    }
    drop(admitted);
}

/// Satellite: `LOAD_GRAPH` on a multi-session route reports the
/// *route's* width, not how many sessions the server happens to
/// host. Three hosted sessions, a two-session route: the error must
/// say 2.
#[test]
fn load_graph_on_a_multi_route_reports_the_route_width() {
    let g = random::uniform(40, 120, 3, 13);
    let handle = spawn_server(&g, 2, 13, ServerConfig::default());
    let mut client = DgsClient::connect(handle.addr()).expect("connect");

    let opts = SessionOptions::default();
    client.session_create("a", &g, &opts).expect("session a");
    client.session_create("b", &g, &opts).expect("session b");
    assert_eq!(
        client.session_route(&["default", "a"]).expect("route"),
        2,
        "route resolves to two sessions"
    );
    let err = client
        .load_graph(&g, &opts)
        .expect_err("LOAD_GRAPH must refuse a fan-out route");
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::Unsupported);
            assert!(
                message.contains("routed to 2 sessions"),
                "error must count the route targets (2), not the hosted sessions (3): {message}"
            );
        }
        other => panic!("expected Remote(Unsupported), got {other}"),
    }
    drop(client);
    handle.shutdown().expect("shutdown");
}

/// Satellite: a read timeout that fires *mid-frame* (between the
/// length prefix and the payload) must not desync the stream — the
/// resumable `FrameReader` keeps the partial bytes and the next call
/// picks up exactly where the socket stalled.
#[test]
fn frame_reader_resumes_after_a_mid_frame_read_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let payload = b"resumed payload";
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.push(0x07);
        frame.extend_from_slice(payload);
        // First the length prefix and two payload bytes...
        s.write_all(&frame[..7]).expect("first half");
        s.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(120));
        // ...then, after the client's read timeout fired, the rest.
        s.write_all(&frame[7..]).expect("second half");
        s.flush().expect("flush");
        s
    });

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(40)))
        .expect("timeout");
    let mut reader = FrameReader::new();
    let err = match reader.read_frame(&mut stream) {
        Err(ServeError::Io(e)) => e,
        other => panic!("expected the timeout to surface as Io, got {other:?}"),
    };
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "unexpected io error: {err}"
    );
    assert!(
        reader.buffered() > 0,
        "the partial frame must stay buffered across the timeout"
    );
    // The stream is *not* desynced: the retry returns the whole frame.
    stream.set_read_timeout(None).expect("clear timeout");
    let (ty, payload) = reader
        .read_frame(&mut stream)
        .expect("resumed read")
        .expect("frame");
    assert_eq!(ty, 0x07);
    assert_eq!(payload, b"resumed payload");
    drop(server.join().expect("server thread"));
}

/// A v3 connection really pipelines: a heavyweight batch submitted
/// first and a ping submitted second come back ping-first on the
/// wire, each echoing its own request id.
#[test]
fn pipelined_responses_complete_out_of_order() {
    let g = random::uniform(1500, 6000, 4, 17);
    let handle = spawn_server(&g, 4, 17, ServerConfig::default());
    let addr = handle.addr().clone();

    let mut conn = Conn::connect(&addr).expect("dial");
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(3);
    write_frame(&mut conn, frame::HELLO, &hello).expect("hello");
    let (ty, _) = read_frame(&mut conn).expect("welcome").expect("welcome");
    assert_eq!(ty, frame::WELCOME);

    // Request id 1: a batch heavy enough to hold a worker for a
    // while. Request id 2: a ping that lands on another worker.
    let (batch_ty, batch_body) = Request::QueryBatch {
        patterns: (0..24).map(|i| mixed_pattern(i, 4)).collect(),
        algorithm: WireAlgorithm::Auto,
    }
    .encode();
    let mut payload = vec![1u8];
    payload.extend_from_slice(&batch_body);
    write_frame(&mut conn, batch_ty, &payload).expect("batch");
    let (ping_ty, ping_body) = Request::Ping.encode();
    let mut payload = vec![2u8];
    payload.extend_from_slice(&ping_body);
    write_frame(&mut conn, ping_ty, &payload).expect("ping");

    let (ty, payload) = read_frame(&mut conn)
        .expect("first response")
        .expect("frame");
    let (id, body) = split_request_id(&payload).expect("id");
    assert_eq!(
        id, 2,
        "the ping (id 2) must overtake the heavyweight batch (id 1)"
    );
    assert_eq!(Response::decode(ty, body).unwrap(), Response::Pong);

    let (ty, payload) = read_frame(&mut conn)
        .expect("second response")
        .expect("frame");
    let (id, body) = split_request_id(&payload).expect("id");
    assert_eq!(id, 1);
    match Response::decode(ty, body).unwrap() {
        Response::BatchAnswer { items, .. } => assert_eq!(items.len(), 24),
        other => panic!("expected the batch answer, got {other:?}"),
    }
    drop(conn);
    handle.shutdown().expect("shutdown");
}

/// A response carrying an id the client never submitted is a
/// protocol violation the typed client refuses — exercised against a
/// scripted fake server that answers with the wrong id.
#[test]
fn client_rejects_a_response_with_an_unknown_request_id() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().expect("addr").port();
    let addr = ServeAddr::parse(&format!("127.0.0.1:{port}")).expect("parse");

    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let (ty, _) = read_frame(&mut s).expect("hello").expect("hello");
        assert_eq!(ty, frame::HELLO);
        let mut welcome = WIRE_MAGIC.to_vec();
        welcome.push(3);
        write_frame(&mut s, frame::WELCOME, &welcome).expect("welcome");
        let (_, payload) = read_frame(&mut s).expect("request").expect("request");
        let (id, _) = split_request_id(&payload).expect("id");
        let mut out = Vec::new();
        put_varint(&mut out, id + 999); // an id nobody asked for
        let rty = Response::Pong.encode_into(&mut out);
        write_frame(&mut s, rty, &out).expect("bogus response");
        s
    });

    let mut client = DgsClient::connect(&addr).expect("connect");
    let id = client.submit(&Request::Ping).expect("submit");
    let err = client
        .await_response(id)
        .expect_err("bogus id must be refused");
    match err {
        ServeError::Corrupt { message } => assert!(
            message.contains("unknown request id"),
            "wrong corrupt message: {message}"
        ),
        other => panic!("expected Corrupt, got {other}"),
    }
    drop(fake.join().expect("fake server"));
}

/// The in-process connection-count sweep completes every step with
/// zero errors and its snapshot artifact roundtrips through JSON.
#[test]
fn conn_sweep_completes_each_step_and_roundtrips_its_snapshot() {
    let g = random::uniform(60, 200, 3, 19);
    let handle = spawn_server(&g, 2, 19, ServerConfig::default());
    let cfg = ConnSweepConfig {
        addr: handle.addr().clone(),
        steps: vec![1, 12],
        rate: 800.0,
        requests_per_step: 400,
        active_senders: 8,
    };
    let snapshot = run_conn_sweep(&cfg).expect("sweep");
    assert_eq!(snapshot.steps.len(), 2);
    for (step, want_conns) in snapshot.steps.iter().zip([1u64, 12]) {
        assert_eq!(step.connections, want_conns);
        assert_eq!(step.completed, 400, "step {want_conns} lost requests");
        assert_eq!(step.errors, 0, "step {want_conns} errored");
        assert!(step.throughput > 0.0 && step.p99_us > 0.0);
    }
    let parsed = dgs::net::ConnSweepSnapshot::parse_json(&snapshot.to_json())
        .expect("snapshot JSON roundtrip");
    assert_eq!(parsed.steps.len(), snapshot.steps.len());
    assert!(
        snapshot.regressions(&parsed, 0.25, 2000.0).is_empty(),
        "a snapshot can never regress against itself"
    );
    handle.shutdown().expect("shutdown");
}

/// Acceptance: one pipelined connection clears at least 3x the
/// throughput of the same connection in blocking lockstep, measured
/// on the `PING` microbenchmark — the workload pipelining targets:
/// with near-zero per-request execution cost, throughput is pure
/// protocol (framing, syscalls, scheduling). Query workloads are
/// CPU-bound on small machines, so their ceiling is execution, not
/// round trips. Release builds only — debug-build codecs are slow
/// enough to drown the syscall savings the pipeline amortizes.
#[cfg(not(debug_assertions))]
#[test]
fn pipelined_connection_triples_blocking_throughput() {
    let g = random::uniform(60, 200, 3, 23);
    let handle = spawn_server(&g, 2, 23, ServerConfig::default());

    let throughput_at = |depth: usize| {
        let cfg = dgs::serve::LoadConfig {
            addr: handle.addr().clone(),
            clients: 1,
            requests_per_client: 4000,
            mode: dgs::serve::LoadMode::Closed,
            delta_every: 0,
            batch_size: 1,
            seed: 5,
            patterns: Vec::new(),
            session: None,
            pipeline: depth,
            pings: true,
        };
        let report = dgs::serve::run_load(&cfg).expect("load run");
        assert_eq!(report.errors, 0, "depth {depth} run errored");
        report.throughput()
    };

    // Best of 3: the suite's other tests share the machine, and a
    // neighbor stealing the core mid-measurement skews one sample. A
    // real pipelining regression (ratio near 1x) fails every attempt;
    // scheduler noise does not survive three.
    let mut best = 0.0_f64;
    let (mut blocking, mut pipelined) = (0.0, 0.0);
    for _ in 0..3 {
        let b = throughput_at(1);
        let p = throughput_at(64);
        if p / b > best {
            best = p / b;
            (blocking, pipelined) = (b, p);
        }
        if best >= 3.0 {
            break;
        }
    }
    assert!(
        best >= 3.0,
        "pipelining must amortize round trips: blocking {blocking:.0} req/s, \
         pipelined {pipelined:.0} req/s ({best:.1}x)"
    );
    handle.shutdown().expect("shutdown");
}

// ---- live subscriptions (wire v4) -------------------------------------

/// Replays one pushed diff onto a row table — the client-side
/// contract: snapshot + streamed diffs == the server's rows at the
/// diff's generation.
fn apply_diff(rows: &mut [Vec<u32>], diff: &MatchDiff) {
    for &(u, v) in &diff.removed {
        let row = &mut rows[u as usize];
        if let Ok(i) = row.binary_search(&v) {
            row.remove(i);
        }
    }
    for &(u, v) in &diff.added {
        let row = &mut rows[u as usize];
        if let Err(i) = row.binary_search(&v) {
            row.insert(i, v);
        }
    }
}

/// The tentpole end-to-end property: a subscriber's snapshot plus its
/// streamed diffs reproduces the engine's exact match rows at every
/// delta batch — deletions, re-insertions and mixed batches alike —
/// while the same connection keeps issuing pipelined requests whose
/// responses interleave with the id-0 pushes.
#[test]
fn live_subscription_streams_exact_diffs_under_churn() {
    let g = random::uniform(60, 220, 3, 41);
    let handle = spawn_server(&g, 3, 41, ServerConfig::default());
    let oracle = handle.engine();
    let mut subscriber = DgsClient::connect(handle.addr()).expect("connect");
    let mut writer = DgsClient::connect(handle.addr()).expect("connect");

    let q = mixed_pattern(2, 3);
    let (sub_id, mut last_gen, mut rows) = subscriber
        .subscribe(&q, WireAlgorithm::Auto)
        .expect("subscribe");
    assert_eq!(
        rows,
        rows_of(&oracle.query(&q).expect("oracle").relation),
        "the snapshot is the engine's current rows"
    );
    assert!(
        rows.iter().any(|r| !r.is_empty()),
        "the pattern must match for churn to exercise diffs"
    );
    assert_eq!(handle.live_subscriptions(), 1);

    // Slices 0/1/2 are deleted, then 0/1 re-inserted, then a mixed
    // batch re-inserts slice 2 while deleting slice 0 again.
    let edges: Vec<_> = g.edges().collect();
    let slice = |i: usize| edges[i * 25..(i + 1) * 25].to_vec();
    let batches = [
        GraphDelta::deletions(slice(0)),
        GraphDelta::deletions(slice(1)),
        GraphDelta::deletions(slice(2)),
        GraphDelta::insertions(slice(0)),
        GraphDelta::insertions(slice(1)),
        GraphDelta {
            insert_edges: slice(2),
            delete_edges: slice(0),
        },
    ];
    let mut saw_diff = false;
    for (step, delta) in batches.iter().enumerate() {
        let summary = writer.apply_delta(delta).expect("delta");
        // A pipelined request on the subscribing connection: its
        // response must interleave cleanly with any pushes.
        let answer = subscriber.query(&q, WireAlgorithm::Auto).expect("query");
        let expected = rows_of(&oracle.query(&q).expect("oracle").relation);
        assert_eq!(answer.rows, expected, "step {step}");
        while rows != expected {
            match subscriber.next_event().expect("push") {
                SubscriptionEvent::Diff(d) => {
                    assert_eq!(d.sub_id, sub_id, "step {step}");
                    assert!(
                        d.generation > last_gen,
                        "step {step}: generations strictly increase"
                    );
                    assert!(d.generation <= summary.generation, "step {step}");
                    last_gen = d.generation;
                    saw_diff = true;
                    apply_diff(&mut rows, &d);
                }
                other => panic!("step {step}: unexpected push {other:?}"),
            }
        }
    }
    assert!(saw_diff, "the churn produced at least one pushed diff");

    // UNSUBSCRIBE stops the stream: a later delta pushes nothing.
    subscriber.unsubscribe(sub_id).expect("unsubscribe");
    assert_eq!(handle.live_subscriptions(), 0);
    writer
        .apply_delta(&GraphDelta::deletions(slice(1)))
        .expect("post-unsubscribe delta");
    subscriber.ping().expect("ping");
    assert_eq!(
        subscriber.poll_event(),
        None,
        "no pushes after UNSUBSCRIBE was acknowledged"
    );

    // Unknown ids are typed.
    match subscriber.unsubscribe(777) {
        Err(ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::NoSuchSubscription)
        }
        other => panic!("expected NoSuchSubscription, got {other:?}"),
    }

    drop((subscriber, writer));
    handle.shutdown().expect("shutdown");
}

/// Satellite: a live `Route::Many` that names a dropped session is
/// *stale*, not broken — the next request gets a typed
/// `NoSuchSession` (raw frames, so the regression pins the wire
/// behaviour), and the dropped session's subscriptions end with a
/// typed `SessionDropped` event.
#[test]
fn dropping_a_routed_session_is_typed_stale_and_terminates_its_subscriptions() {
    let g = random::uniform(40, 120, 3, 51);
    let handle = spawn_server(&g, 2, 51, ServerConfig::default());
    let opts = SessionOptions {
        sites: 2,
        seed: 51,
        ..SessionOptions::default()
    };
    let mut admin = DgsClient::connect(handle.addr()).expect("connect");
    admin.session_create("a", &g, &opts).expect("session a");
    admin.session_create("b", &g, &opts).expect("session b");

    // Raw v4 client routed across ["default", "a"].
    let mut conn = Conn::connect(handle.addr()).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(4);
    write_frame(&mut conn, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME);
    assert_eq!(payload[4], 4);
    let send = |conn: &mut Conn, id: u8, req: &Request| {
        let (ty, body) = req.encode();
        let mut p = vec![id];
        p.extend_from_slice(&body);
        write_frame(conn, ty, &p).unwrap();
        let (ty, payload) = read_frame(conn).unwrap().unwrap();
        let (got, rest) = split_request_id(&payload).unwrap();
        assert_eq!(got, u64::from(id));
        Response::decode(ty, rest).unwrap()
    };
    let routed = send(
        &mut conn,
        1,
        &Request::SessionRoute {
            sessions: vec!["default".into(), "a".into()],
        },
    );
    assert_eq!(routed, Response::SessionRouted { sessions: 2 });

    admin.session_drop("a").expect("drop a");

    // The stale route answers typed on the very next request.
    let stale = send(
        &mut conn,
        2,
        &Request::Query {
            pattern: mixed_pattern(0, 3),
            algorithm: WireAlgorithm::Auto,
            boolean: false,
        },
    );
    match stale {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchSession),
        other => panic!("expected NoSuchSession on the stale route, got {other:?}"),
    }

    // SUBSCRIBE needs a single-session route; fan-out is refused typed.
    let mut wide = DgsClient::connect(handle.addr()).expect("connect");
    wide.session_route(&["default", "b"]).expect("route");
    match wide.subscribe(&mixed_pattern(1, 3), WireAlgorithm::Auto) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("expected Unsupported on a fan-out SUBSCRIBE, got {other:?}"),
    }

    // A subscription on "b" dies with a typed event when "b" drops,
    // and the subscriber's stale single route answers typed too.
    let mut sub = DgsClient::connect(handle.addr()).expect("connect");
    sub.session_route(&["b"]).expect("route b");
    let q = mixed_pattern(2, 3);
    let (sub_id, _, _) = sub.subscribe(&q, WireAlgorithm::Auto).expect("subscribe");
    assert_eq!(handle.live_subscriptions(), 1);
    admin.session_drop("b").expect("drop b");
    assert_eq!(handle.live_subscriptions(), 0);
    match sub.next_event().expect("terminal event") {
        SubscriptionEvent::Event { sub_id: id, kind } => {
            assert_eq!(id, sub_id);
            assert_eq!(kind, SubEventKind::SessionDropped);
        }
        other => panic!("expected SessionDropped, got {other:?}"),
    }
    match sub.query(&q, WireAlgorithm::Auto) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NoSuchSession),
        other => panic!("stale single route must answer typed, got {other:?}"),
    }

    drop((admin, conn, wide, sub));
    handle.shutdown().expect("shutdown");
}

/// SUBSCRIBE on a connection that negotiated below v4 is refused with
/// a typed error and the connection keeps serving.
#[test]
fn subscribe_below_v4_is_refused_typed() {
    let g = random::uniform(30, 80, 3, 61);
    let handle = spawn_server(&g, 2, 61, ServerConfig::default());
    let mut conn = Conn::connect(handle.addr()).unwrap();
    let mut hello = WIRE_MAGIC.to_vec();
    hello.push(3);
    write_frame(&mut conn, frame::HELLO, &hello).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    assert_eq!(ty, frame::WELCOME);
    assert_eq!(payload[4], 3, "the server accepted v3");

    let (ty, body) = Request::Subscribe {
        pattern: mixed_pattern(0, 3),
        algorithm: WireAlgorithm::Auto,
    }
    .encode();
    let mut p = vec![9u8];
    p.extend_from_slice(&body);
    write_frame(&mut conn, ty, &p).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    let (id, rest) = split_request_id(&payload).unwrap();
    assert_eq!(id, 9);
    match Response::decode(ty, rest).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Unsupported);
            assert!(
                message.contains("v4"),
                "the refusal names the version: {message}"
            );
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }

    // The connection survives the refusal.
    let (ty, body) = Request::Ping.encode();
    let mut p = vec![10u8];
    p.extend_from_slice(&body);
    write_frame(&mut conn, ty, &p).unwrap();
    let (ty, payload) = read_frame(&mut conn).unwrap().unwrap();
    let (id, rest) = split_request_id(&payload).unwrap();
    assert_eq!(id, 10);
    assert_eq!(Response::decode(ty, rest).unwrap(), Response::Pong);

    drop(conn);
    handle.shutdown().expect("shutdown");
}

/// Drain-on-shutdown ends every live subscription with a typed
/// `Draining` event *before* the connection-level shutdown notice.
#[test]
fn shutdown_drain_terminates_subscriptions_with_draining_event() {
    let g = random::uniform(40, 120, 3, 71);
    let handle = spawn_server(&g, 2, 71, ServerConfig::default());
    let mut sub = DgsClient::connect(handle.addr()).expect("connect");
    let q = mixed_pattern(1, 3);
    let (sub_id, _, _) = sub.subscribe(&q, WireAlgorithm::Auto).expect("subscribe");
    assert_eq!(handle.live_subscriptions(), 1);

    std::thread::scope(|s| {
        let reader = s.spawn(move || {
            match sub.next_event().expect("draining event") {
                SubscriptionEvent::Event { sub_id: id, kind } => {
                    assert_eq!(id, sub_id);
                    assert_eq!(kind, SubEventKind::Draining);
                }
                other => panic!("expected Draining first, got {other:?}"),
            }
            match sub.next_event() {
                Err(ServeError::Remote { code, .. }) => {
                    assert_eq!(code, ErrorCode::ShuttingDown)
                }
                other => panic!("expected the shutdown notice next, got {other:?}"),
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown().expect("shutdown");
        reader.join().expect("subscriber thread");
    });
}

/// The `dgsload --subscribe` machinery end to end: sessions created,
/// a subscriber fleet on open streams, one session stormed. The run
/// is self-verifying (each subscriber replays its diffs and compares
/// against a final re-query), so a clean report — zero errors, every
/// diff latency-joined to a writer batch — is the assertion.
#[test]
fn the_subscribe_load_run_is_clean_and_self_verifying() {
    let g = random::uniform(60, 180, 4, 81);
    let handle = spawn_server(&g, 2, 81, ServerConfig::default());
    let cfg = dgs::serve::SubscribeConfig {
        addr: handle.addr().clone(),
        sessions: 2,
        subscribers: 2,
        nodes: 150,
        batches: 12,
        ops_per_batch: 10,
        seed: 9,
    };
    let report = dgs::serve::run_subscribe(&cfg).expect("subscribe run");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.batches, 12);
    // Only the stormed session's two subscribers may receive pushes
    // (at most one per batch each), and every push was joined against
    // the writer's send log.
    assert!(report.diffs <= 24, "{report:?}");
    assert_eq!(report.histogram.count(), report.diffs);

    // The artifact the CI gate commits and compares.
    let snap = dgs::net::SubscribeSnapshot::of_run(
        &report.histogram,
        report.diffs,
        report.batches,
        report.errors,
    );
    let parsed = dgs::net::SubscribeSnapshot::parse_json(&snap.to_json()).expect("parses");
    assert_eq!(parsed.diffs, snap.diffs);
    assert_eq!(parsed.batches, snap.batches);
    assert_eq!(parsed.errors, 0);
    assert!((parsed.diff_p99_us - snap.diff_p99_us).abs() < 0.1);
    assert!(snap.regressions(&parsed, 0.25, 500.0).is_empty());

    // The generator dropped its own sessions on the way out.
    let mut admin = DgsClient::connect(handle.addr()).expect("connect");
    let names: Vec<String> = admin
        .session_list()
        .expect("list")
        .into_iter()
        .map(|s| s.name)
        .collect();
    assert!(
        !names.iter().any(|n| n.starts_with("churn-")),
        "leftover sessions: {names:?}"
    );
    drop(admin);
    handle.shutdown().expect("shutdown");
}

// ---- observability: metrics, exposition, slow-query traces ------------

/// The METRICS frame end to end: counters exist, grow monotonically
/// under a mixed workload, and agree with the workload (every delta
/// applied is counted, the subscription gauge tracks the live set).
#[test]
fn metrics_counters_are_monotone_and_consistent_over_the_wire() {
    let g = random::uniform(80, 240, 3, 91);
    let handle = spawn_server(&g, 2, 91, ServerConfig::default());
    let mut client = DgsClient::connect(handle.addr()).expect("connect");

    let before = client.metrics().expect("metrics");
    assert_eq!(before.version, 1);
    let req0 = before.counter("dgsd_requests_total").expect("counter");
    let del0 = before
        .counter("dgsd_deltas_applied_total")
        .expect("counter");

    const QUERIES: u64 = 5;
    for i in 0..QUERIES as usize {
        client
            .query(&mixed_pattern(i, 3), WireAlgorithm::Auto)
            .expect("query");
    }
    client
        .apply_delta(&GraphDelta::insertions([
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(3)),
        ]))
        .expect("apply delta");
    let (sub_id, _, _) = client
        .subscribe(&mixed_pattern(0, 3), WireAlgorithm::Auto)
        .expect("subscribe");

    let mid = client.metrics().expect("metrics");
    let req1 = mid.counter("dgsd_requests_total").expect("counter");
    // At least the queries, the delta, the subscribe and the first
    // METRICS call landed between the two snapshots.
    assert!(
        req1 >= req0 + QUERIES + 2,
        "requests_total {req0} -> {req1} after {QUERIES} queries + delta + subscribe"
    );
    assert_eq!(
        mid.counter("dgsd_deltas_applied_total"),
        Some(del0 + 1),
        "exactly one delta applied"
    );
    assert_eq!(mid.gauge("dgsd_subscriptions_active"), Some(1));
    assert!(mid.counter("dgsd_connections_accepted_total").unwrap() >= 1);
    assert_eq!(mid.counter("dgsd_accept_errors_total"), Some(0));
    // The scraped per-session engine gauges mirror the workload.
    assert!(
        mid.gauge("dgsd_session_queries{session=\"default\"}")
            .unwrap()
            >= QUERIES
    );
    assert_eq!(
        mid.gauge("dgsd_session_deltas{session=\"default\"}"),
        Some(1)
    );
    // The per-frame latency histogram saw every query.
    let qh = mid
        .histograms
        .iter()
        .find(|h| h.name == "dgsd_request_ns{frame=\"QUERY\"}")
        .expect("QUERY histogram");
    assert!(qh.count >= QUERIES);
    assert!(qh.min <= qh.p50 && qh.p50 <= qh.max);

    client.unsubscribe(sub_id).expect("unsubscribe");
    let after = client.metrics().expect("metrics");
    assert_eq!(after.gauge("dgsd_subscriptions_active"), Some(0));
    assert!(
        after.counter("dgsd_requests_total").unwrap() > req1,
        "counters stay monotone"
    );

    // The in-process snapshot agrees with the wire snapshot.
    let local = handle.metrics_snapshot();
    assert_eq!(
        local.counter("dgsd_deltas_applied_total"),
        after.counter("dgsd_deltas_applied_total")
    );

    drop(client);
    handle.shutdown().expect("shutdown");
}

/// The plain-TCP text endpoint: a bare HTTP/1.0 GET gets a 0.0.4
/// exposition with the expected series and no NaN, consistent with
/// the METRICS frame taken over the main port.
#[test]
fn metrics_text_endpoint_serves_the_exposition_format() {
    let g = random::uniform(60, 180, 3, 93);
    let cfg = ServerConfig {
        metrics_addr: Some(ServeAddr::parse("127.0.0.1:0").unwrap()),
        ..ServerConfig::default()
    };
    let handle = spawn_server(&g, 2, 93, cfg);
    let mut client = DgsClient::connect(handle.addr()).expect("connect");
    for i in 0..3 {
        client
            .query(&mixed_pattern(i, 3), WireAlgorithm::Auto)
            .expect("query");
    }

    let maddr = handle.metrics_addr().expect("metrics addr").clone();
    let mut http = Conn::connect(&maddr).expect("connect metrics port");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send request");
    let mut body = String::new();
    std::io::Read::read_to_string(&mut http, &mut body).expect("read response");

    assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
    assert!(body.contains("text/plain; version=0.0.4"), "{body}");
    for series in [
        "dgsd_requests_total",
        "dgsd_connections_accepted_total",
        "dgsd_job_queue_depth",
        "dgsd_subscriptions_active",
        "dgsd_request_ns",
    ] {
        assert!(body.contains(series), "missing series {series}: {body}");
    }
    assert!(!body.contains("NaN"), "{body}");

    // The text body and the wire frame report the same delta counter.
    let snap = client.metrics().expect("metrics");
    let wire_deltas = snap.counter("dgsd_deltas_applied_total").unwrap();
    assert!(
        body.contains(&format!("dgsd_deltas_applied_total {wire_deltas}")),
        "{body}"
    );

    drop(http);
    drop(client);
    handle.shutdown().expect("shutdown");
}

/// Requests over `--slow-ms` land in the slow-query ring with their
/// timing breakdown, plan explanation and per-site work attached, and
/// `TRACE` ships them newest-first.
#[test]
fn slow_queries_are_traced_with_plan_and_per_site_work() {
    // A graph big enough that a query reliably exceeds 1 ms.
    let g = random::uniform(4000, 16000, 4, 95);
    let cfg = ServerConfig {
        slow_ms: Some(1),
        ..ServerConfig::default()
    };
    let handle = spawn_server(&g, 3, 95, cfg);
    let mut client = DgsClient::connect(handle.addr()).expect("connect");

    let mut traces = Vec::new();
    for i in 0..20 {
        client
            .query(&mixed_pattern(i, 4), WireAlgorithm::Auto)
            .expect("query");
        traces = client.trace().expect("trace");
        if !traces.is_empty() {
            break;
        }
    }
    assert!(!traces.is_empty(), "no query exceeded 1 ms on a 4k graph");

    let t = &traces[0];
    assert_eq!(t.session, "default");
    assert!(t.total_ns >= 1_000_000, "{t:?}");
    assert_eq!(
        t.total_ns,
        t.queue_ns + t.exec_ns + t.encode_ns,
        "the breakdown sums to the total: {t:?}"
    );
    assert!(!t.plan.is_empty(), "the plan explanation rides along");
    assert!(!t.algorithm.is_empty());
    assert_eq!(t.site_ops.len(), 3, "one ops entry per site: {t:?}");
    assert_eq!(t.site_msgs.len(), 3);

    // The slow counter agrees with the ring.
    let snap = client.metrics().expect("metrics");
    assert!(snap.counter("dgsd_slow_queries_total").unwrap() >= traces.len() as u64);

    drop(client);
    handle.shutdown().expect("shutdown");
}

/// `slow_ms: Some(0)` is the flight-recorder setting: **every**
/// request is traced, the ring caps at 256 entries (oldest evicted),
/// and `TRACE` ships them newest-first even after wraparound.
/// `slow_ms: None` (the default) captures nothing at all.
#[test]
fn trace_everything_ring_wraps_at_cap_and_ships_newest_first() {
    let g = random::uniform(60, 240, 4, 7);

    // Default config: no threshold, no capture — even after traffic.
    let off = spawn_server(&g, 2, 7, ServerConfig::default());
    let mut client = DgsClient::connect(off.addr()).expect("connect");
    for _ in 0..5 {
        client.ping().expect("ping");
    }
    assert_eq!(client.trace().expect("trace"), vec![]);
    drop(client);
    off.shutdown().expect("shutdown");

    // Some(0): every request lands in the ring.
    let cfg = ServerConfig {
        slow_ms: Some(0),
        ..ServerConfig::default()
    };
    let handle = spawn_server(&g, 2, 7, cfg);
    let mut client = DgsClient::connect(handle.addr()).expect("connect");

    // More pings than the ring holds, all on one connection, so the
    // request ids form one strictly increasing sequence.
    const SENT: usize = 300;
    let mut last_id = 0;
    for _ in 0..SENT {
        let id = client.submit(&Request::Ping).expect("submit");
        match client.await_response(id).expect("pong") {
            Response::Pong => {}
            other => panic!("expected PONG, got {other:?}"),
        }
        last_id = id;
    }

    let traces = client.trace().expect("trace");
    // Exactly the cap survives: the oldest 300 - 256 pings were
    // evicted by the wraparound.
    assert_eq!(traces.len(), 256);
    // Newest-first across the wrap: the head is the most recent ping
    // and the request ids descend strictly from there.
    assert_eq!(traces[0].request_id, last_id);
    for w in traces.windows(2) {
        assert!(
            w[0].request_id > w[1].request_id,
            "not newest-first: {} then {}",
            w[0].request_id,
            w[1].request_id
        );
    }
    // The evicted prefix is really gone: the oldest surviving entry
    // is newer than the first 300 - 256 requests.
    let oldest = traces.last().unwrap();
    assert!(oldest.request_id > traces[0].request_id - 256);

    drop(client);
    handle.shutdown().expect("shutdown");
}
