//! Concurrent-serving tests: one shared `SimEngine` under parallel
//! traffic, the pattern-result cache, and compression-backed plans.
//!
//! The stress test is meant to run with `RUST_TEST_THREADS`
//! unconstrained and in release mode (see the `serving-release` CI
//! job) so the 8 client threads really do hammer the engine
//! concurrently.

use dgs::graph::generate::{dag, patterns, random, rmat, tree};
use dgs::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The issue's compile-time guard: `SimEngine` must be shareable
/// across serving threads.
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn sim_engine_is_send_sync() {
    assert_send_sync::<SimEngine>();
}

/// A mixed stream: cyclic, DAG and path shapes, drawn from a small
/// seed pool so streams overlap (and the cache sees repeats).
fn mixed_pattern(i: usize, labels: usize) -> Pattern {
    let seed = (i % 10) as u64;
    match i % 3 {
        0 => patterns::random_cyclic(3, 6, labels, 900 + seed),
        1 => patterns::random_dag_with_depth(4, 6, 2, labels, 900 + seed),
        _ => patterns::random_cyclic(4, 8, labels, 950 + seed),
    }
}

fn shared_engine(g: &Graph, k: usize, seed: u64) -> SimEngine {
    let assign = hash_partition(g.node_count(), k, seed);
    let frag = Arc::new(Fragmentation::build(g, &assign, k));
    SimEngine::builder(g, frag)
        .compress(CompressionMethod::SimEq)
        .compression_threshold(1.0)
        .build()
}

/// 8 threads × 50 mixed patterns against one shared engine (cache and
/// compressed leg both on), every answer checked against the
/// centralized `hhk_simulation` oracle.
#[test]
fn stress_eight_threads_fifty_patterns_vs_oracle() {
    let g = random::uniform(150, 600, 4, 31);
    let engine = shared_engine(&g, 4, 31);
    std::thread::scope(|s| {
        for t in 0..8usize {
            let engine = &engine;
            let g = &g;
            s.spawn(move || {
                for i in 0..50usize {
                    let q = mixed_pattern(t * 50 + i, 4);
                    let report = engine.query(&q).unwrap_or_else(|e| {
                        panic!("thread {t} query {i} failed: {e}");
                    });
                    let oracle = hhk_simulation(&q, g).relation;
                    assert_eq!(
                        report.relation, oracle,
                        "thread {t} query {i} deviates from the oracle"
                    );
                }
            });
        }
    });
    let stats = engine.cache_stats().expect("cache on by default");
    assert!(stats.hits > 0, "overlapping streams must hit the cache");
    assert_eq!(stats.hits + stats.misses, 8 * 50);
}

/// Acceptance check: a repeated query is served from cache with zero
/// protocol messages recorded.
#[test]
fn repeated_query_ships_zero_messages() {
    let g = random::uniform(120, 480, 4, 32);
    let engine = shared_engine(&g, 3, 32);
    let q = patterns::random_cyclic(3, 6, 4, 32);
    let cold = engine.query(&q).unwrap();
    assert_eq!(cold.metrics.cache_hits, 0);
    let warm = engine.query(&q).unwrap();
    assert_eq!(warm.metrics.cache_hits, 1);
    assert_eq!(warm.metrics.data_messages, 0);
    assert_eq!(warm.metrics.control_messages, 0);
    assert_eq!(warm.metrics.result_messages, 0);
    assert_eq!(
        warm.metrics.data_bytes + warm.metrics.control_bytes + warm.metrics.result_bytes,
        0
    );
    assert_eq!(warm.relation, cold.relation);
}

/// Rebuilds `q` with node `u` inserted at position `perm[u]`.
fn renumber(q: &Pattern, perm: &[usize]) -> Pattern {
    let n = q.node_count();
    let mut node_at = vec![0usize; n];
    for (u, &p) in perm.iter().enumerate() {
        node_at[p] = u;
    }
    let mut b = PatternBuilder::new();
    for &u in &node_at {
        b.add_node(q.label(QNodeId(u as u16)));
    }
    for (u, v) in q.edges() {
        b.add_edge(
            QNodeId(perm[u.index()] as u16),
            QNodeId(perm[v.index()] as u16),
        );
    }
    b.build()
}

/// Batch agreement: the parallel pool returns report-for-report
/// identical results to a forced single-worker run, including batches
/// containing `Err` entries.
#[test]
fn parallel_batch_agrees_with_single_worker() {
    let g = random::uniform(140, 560, 4, 33);
    let assign = hash_partition(g.node_count(), 4, 33);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
    let single = SimEngine::builder(&g, Arc::clone(&frag))
        .batch_workers(1)
        .build();
    let pooled = SimEngine::builder(&g, frag).batch_workers(8).build();

    let mut qs: Vec<Pattern> = (0..20).map(|i| mixed_pattern(i, 4)).collect();
    qs.insert(5, PatternBuilder::new().build()); // Err: empty pattern
    qs.insert(13, PatternBuilder::new().build()); // another Err

    let a = single.query_batch(&qs);
    let b = pooled.query_batch(&qs);
    assert_eq!(a.reports.len(), b.reports.len());
    for (i, (x, y)) in a.reports.iter().zip(&b.reports).enumerate() {
        match (x, y) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.relation, y.relation, "answer {i}");
                assert_eq!(x.is_match, y.is_match, "match {i}");
                assert_eq!(x.algorithm, y.algorithm, "engine {i}");
                assert_eq!(x.plan.to_string(), y.plan.to_string(), "plan {i}");
                assert_eq!(x.metrics.data_messages, y.metrics.data_messages, "dm {i}");
                assert_eq!(x.metrics.data_bytes, y.metrics.data_bytes, "db {i}");
                assert_eq!(
                    x.metrics.control_messages, y.metrics.control_messages,
                    "cm {i}"
                );
                assert_eq!(x.metrics.total_ops, y.metrics.total_ops, "ops {i}");
                assert_eq!(x.metrics.cache_hits, y.metrics.cache_hits, "hits {i}");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "error {i}"),
            _ => panic!("query {i}: pooled and single-worker disagree on success"),
        }
    }
    assert_eq!(a.succeeded(), b.succeeded());
    assert_eq!(a.total.data_messages, b.total.data_messages);
    assert_eq!(a.total.data_bytes, b.total.data_bytes);
    assert_eq!(a.total.control_messages, b.total.control_messages);
    assert_eq!(a.total.control_bytes, b.total.control_bytes);
    assert_eq!(a.total.total_ops, b.total.total_ops);
    assert_eq!(a.total.cache_hits, b.total.cache_hits);
}

/// Engine-level compression conformance: for every generator family,
/// `query` on the compression-backed plan equals `query` with
/// compression disabled, and the report names the compressed leg.
#[test]
fn compression_backed_plans_agree_across_families() {
    let families: Vec<(&str, Graph)> = vec![
        ("tree", tree::random_tree(200, 4, 41)),
        ("dag", dag::citation_like(180, 420, 4, 42)),
        (
            "rmat",
            rmat::rmat(7, 400, 4, rmat::RmatParams::graph500(), 43),
        ),
        ("social", random::community(180, 640, 6, 0.1, 4, 44)),
    ];
    for (family, g) in &families {
        let assign = hash_partition(g.node_count(), 3, 45);
        let frag = Arc::new(Fragmentation::build(g, &assign, 3));
        let compressed = SimEngine::builder(g, Arc::clone(&frag))
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .cache(false)
            .build();
        assert!(compressed.compression_active(), "{family}: leg inactive");
        let plain = SimEngine::builder(g, frag).cache(false).build();
        for i in 0..6 {
            let q = mixed_pattern(i, 4);
            let on_gc = compressed.query(&q).unwrap();
            let on_g = plain.query(&q).unwrap();
            assert_eq!(on_gc.relation, on_g.relation, "{family} query {i}");
            assert_eq!(on_gc.is_match, on_g.is_match, "{family} query {i}");
            let note = on_gc
                .plan
                .compressed
                .as_ref()
                .unwrap_or_else(|| panic!("{family} query {i}: no compressed leg in the plan"));
            assert!(note.classes <= g.node_count());
            assert!(
                on_gc.plan.to_string().contains("Gc"),
                "{family} query {i}: plan must name the compressed leg"
            );
        }
    }
}

/// Strategy for the cache property tests: a random workload plus a
/// random node permutation for the isomorphic re-submission.
fn cache_workload() -> impl Strategy<Value = (Graph, Pattern, usize, u64)> {
    (
        20usize..90,  // nodes
        2usize..5,    // labels
        3usize..6,    // query nodes
        2usize..5,    // sites
        any::<u64>(), // seed
    )
        .prop_map(|(n, labels, nq, k, seed)| {
            let g = random::uniform(n, 4 * n, labels, seed);
            let q = patterns::random_cyclic(nq, nq + 3, labels, seed ^ 0x51c3);
            (g, q, k, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit returns a relation identical to a cold run.
    #[test]
    fn cache_hit_equals_cold_run((g, q, k, seed) in cache_workload()) {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let cached = SimEngine::builder(&g, Arc::clone(&frag)).build();
        let uncached = SimEngine::builder(&g, frag).cache(false).build();
        let cold = cached.query(&q).unwrap();
        let warm = cached.query(&q).unwrap();
        let reference = uncached.query(&q).unwrap();
        prop_assert_eq!(&cold.relation, &reference.relation);
        prop_assert_eq!(&warm.relation, &reference.relation);
        prop_assert_eq!(warm.metrics.cache_hits, 1);
        prop_assert_eq!(warm.metrics.data_messages + warm.metrics.control_messages, 0);
    }

    /// Eviction never changes answers: a capacity-2 cache cycled over
    /// five patterns (twice) still answers every query like the
    /// oracle.
    #[test]
    fn eviction_never_changes_answers((g, _q, k, seed) in cache_workload()) {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache_capacity(2).build();
        let qs: Vec<Pattern> = (0..5)
            .map(|i| patterns::random_cyclic(3, 6, 4, seed ^ (0xe0 + i)))
            .collect();
        for round in 0..2 {
            for (i, q) in qs.iter().enumerate() {
                let r = engine.query(q).unwrap();
                let oracle = hhk_simulation(q, &g).relation;
                prop_assert_eq!(&r.relation, &oracle, "round {} query {}", round, i);
            }
        }
        let stats = engine.cache_stats().unwrap();
        prop_assert!(stats.evictions > 0, "capacity 2 over 5 patterns must evict");
    }

    /// An isomorphic re-submission (renumbered nodes) hits the cache
    /// and the served relation matches the oracle for the renumbered
    /// pattern.
    #[test]
    fn isomorphic_resubmission_hits((g, q, k, seed) in cache_workload()) {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        engine.query(&q).unwrap();

        // A deterministic pseudo-random permutation of the nodes.
        let n = q.node_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let q2 = renumber(&q, &perm);

        let warm = engine.query(&q2).unwrap();
        prop_assert_eq!(warm.metrics.cache_hits, 1, "renumbered pattern must hit");
        let oracle = hhk_simulation(&q2, &g).relation;
        prop_assert_eq!(&warm.relation, &oracle);
    }
}
