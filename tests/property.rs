//! Property-based tests (proptest) over random graphs, patterns and
//! fragmentations.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{patterns, random};
use dgs::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a small random workload described by seeds and sizes
/// (generation itself goes through the deterministic generators so
/// shrinking stays meaningful).
fn workload_strategy() -> impl Strategy<Value = (Graph, Pattern, Vec<usize>, usize)> {
    (
        10usize..80,  // nodes
        1usize..5,    // edge multiplier
        2usize..5,    // labels
        3usize..6,    // query nodes
        1usize..5,    // sites
        any::<u64>(), // seed
    )
        .prop_map(|(n, em, labels, nq, k, seed)| {
            let g = random::uniform(n, n * em, labels, seed);
            let q = patterns::random_cyclic(nq, nq + 3, labels, seed ^ 0x9e37);
            let assign = hash_partition(n, k, seed);
            (g, q, assign, k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The distributed engines equal the centralized oracle on
    /// arbitrary workloads.
    #[test]
    fn dgpm_equals_oracle((g, q, assign, k) in workload_strategy()) {
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let oracle = hhk_simulation(&q, &g);
        let runner = DistributedSim::default();
        for algo in [Algorithm::dgpm(), Algorithm::dgpm_nopt(), Algorithm::DMes] {
            let report = runner.run(&algo, &g, &frag, &q);
            prop_assert_eq!(&report.relation, &oracle.relation);
        }
    }

    /// HHK equals the naive fixpoint.
    #[test]
    fn hhk_equals_naive((g, q, _assign, _k) in workload_strategy()) {
        prop_assert_eq!(
            hhk_simulation(&q, &g).relation,
            naive_simulation(&q, &g).relation
        );
    }

    /// Soundness: every pair of the computed relation satisfies the
    /// simulation child condition; labels always agree.
    #[test]
    fn relation_is_sound((g, q, _assign, _k) in workload_strategy()) {
        let rel = hhk_simulation(&q, &g).relation;
        for (u, v) in rel.iter() {
            prop_assert_eq!(q.label(u), g.label(v));
        }
        let ok = rel.respects_child_condition(&q, |v| g.successors(v).to_vec());
        prop_assert!(ok);
    }

    /// Maximality: adding any label-compatible pair not in the
    /// relation breaks the simulation conditions (the relation is the
    /// *maximum* simulation). Verified by checking the candidate pair
    /// itself fails the child condition under R ∪ {pair}.
    #[test]
    fn relation_is_maximal((g, q, _assign, _k) in workload_strategy()) {
        let rel = hhk_simulation(&q, &g).relation;
        for u in q.nodes() {
            for v in g.nodes() {
                if q.label(u) != g.label(v) || rel.contains(u, v) {
                    continue;
                }
                // Under the (false) assumption that (u,v) holds in
                // addition to rel, some query edge of u must still be
                // unwitnessed — otherwise rel wasn't maximal. Witness
                // check uses rel ∪ {(u,v)}.
                let holds = |uu: QNodeId, vv: NodeId| {
                    rel.contains(uu, vv) || (uu == u && vv == v)
                };
                let all_witnessed = q.children(u).iter().all(|&uc| {
                    g.successors(v).iter().any(|&vc| holds(uc, vc))
                });
                prop_assert!(
                    !all_witnessed,
                    "pair (u{}, v{}) could be added — relation not maximal",
                    u.0, v.0
                );
            }
        }
    }

    /// The Boolean answer is consistent with totality of the relation,
    /// and the ∅ convention is applied.
    #[test]
    fn boolean_answer_consistency((g, q, assign, k) in workload_strategy()) {
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let report = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
        prop_assert_eq!(report.is_match, report.relation.is_total());
        if !report.is_match {
            prop_assert!(report.answer().is_empty());
        } else {
            prop_assert_eq!(report.answer(), &report.relation);
        }
    }

    /// Fragmentation invariants hold for arbitrary assignments:
    /// the local node sets partition V; Fi.O / Fi.I are consistent
    /// with the crossing edges; |Vf| counts distinct virtual nodes.
    #[test]
    fn fragmentation_invariants((g, _q, assign, k) in workload_strategy()) {
        let frag = Fragmentation::build(&g, &assign, k);
        // Partition.
        let mut seen = vec![false; g.node_count()];
        for f in frag.fragments() {
            for idx in f.local_indices() {
                let v = f.global_id(idx);
                prop_assert!(!seen[v.index()], "node in two fragments");
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "node in no fragment");
        // Crossing-edge consistency.
        let mut ef = 0usize;
        for (u, v) in g.edges() {
            if assign[u.index()] != assign[v.index()] {
                ef += 1;
                let fu = frag.fragment(assign[u.index()]);
                let idx = fu.index_of(v).expect("virtual node present at source");
                prop_assert!(fu.is_virtual(idx));
                let fv = frag.fragment(assign[v.index()]);
                let vidx = fv.index_of(v).unwrap();
                prop_assert!(fv.in_node_pos(vidx).is_some(), "target is an in-node");
            }
        }
        prop_assert_eq!(frag.ef(), ef);
        // |Vf| = distinct crossing-edge targets.
        let mut vf: Vec<u32> = g
            .edges()
            .filter(|&(u, v)| assign[u.index()] != assign[v.index()])
            .map(|(_, v)| v.0)
            .collect();
        vf.sort_unstable();
        vf.dedup();
        prop_assert_eq!(frag.vf(), vf.len());
    }

    /// The SCC-stratified engine equals the oracle on arbitrary
    /// (cyclic) workloads.
    #[test]
    fn dgpms_equals_oracle((g, q, assign, k) in workload_strategy()) {
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let oracle = hhk_simulation(&q, &g);
        let report = DistributedSim::default().run(&Algorithm::Dgpms, &g, &frag, &q);
        prop_assert_eq!(&report.relation, &oracle.relation);
    }

    /// Bounded simulation with every bound at 1 hop coincides with
    /// plain simulation.
    #[test]
    fn bounded_hop1_is_plain_simulation((g, q, _assign, _k) in workload_strategy()) {
        let bq = dgs::sim::BoundedPattern::from_plain(&q);
        prop_assert_eq!(
            dgs::sim::bounded_simulation(&bq, &g).relation,
            hhk_simulation(&q, &g).relation
        );
    }

    /// Every subgraph-isomorphism embedding lies inside the maximum
    /// simulation relation (iso finds strictly fewer potential
    /// matches — §1's motivation for simulation semantics).
    #[test]
    fn embeddings_within_simulation((g, q, _assign, _k) in workload_strategy()) {
        let rel = hhk_simulation(&q, &g).relation;
        for m in dgs::sim::enumerate_embeddings(&q, &g, 10) {
            for (u, &v) in m.iter().enumerate() {
                prop_assert!(rel.contains(QNodeId(u as u16), v));
            }
        }
    }
}

// ---- bitset kernels vs the HashSet-of-pairs reference -----------------
//
// The flat `MatchSet` representation inside `hhk_simulation` and the
// engines' `lEval` has zero iteration-order freedom, so it must
// reproduce the HashSet reference kernel (`dgs_sim::hashset_simulation`)
// *exactly* — on trees, DAGs and cyclic graphs, under every engine,
// and across the delta-maintenance path.

/// Strategy: a (graph shape × pattern shape) workload — tree, DAG or
/// cyclic data, tree-ish/DAG/cyclic query — plus a fragmentation.
fn shaped_workload_strategy() -> impl Strategy<Value = (Graph, Pattern, Vec<usize>, usize, u64)> {
    (
        0usize..3,    // graph family: tree | DAG | cyclic
        0usize..2,    // pattern family: DAG | cyclic
        12usize..70,  // nodes
        2usize..5,    // labels
        2usize..5,    // sites
        any::<u64>(), // seed
    )
        .prop_map(|(gf, qf, n, labels, k, seed)| {
            let g = match gf {
                0 => dgs::graph::generate::tree::random_tree(n, labels, seed),
                1 => dgs::graph::generate::dag::citation_like(n, 3 * n, labels, seed),
                _ => random::uniform(n, 3 * n, labels, seed),
            };
            let q = match qf {
                0 => patterns::random_dag_with_depth(4, 6, 2, labels, seed ^ 0x5bd1),
                _ => patterns::random_cyclic(4, 7, labels, seed ^ 0x5bd1),
            };
            let assign = hash_partition(g.node_count(), k, seed);
            (g, q, assign, k, seed)
        })
}

/// Pseudo-random mixed delta over `g`: deletions of distinct present
/// edges, insertions of distinct absent ones.
fn random_delta(g: &Graph, nops: usize, seed: u64) -> GraphDelta {
    let n = g.node_count() as u64;
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut touched: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut delta = GraphDelta::default();
    let mut s = seed | 1;
    for i in 0..nops {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if i % 2 == 0 && !edges.is_empty() {
            let at = (s >> 33) as usize % edges.len();
            delta.delete_edges.push(edges.swap_remove(at));
        } else {
            let u = NodeId(((s >> 20) % n) as u32);
            let v = NodeId(((s >> 40) % n) as u32);
            if touched.insert((u, v)) {
                delta.insert_edges.push((u, v));
            }
        }
    }
    delta
}

/// `g` after `delta`, rebuilt the slow way for the oracle.
fn apply_to_graph(g: &Graph, delta: &GraphDelta) -> Graph {
    let deleted: std::collections::HashSet<(NodeId, NodeId)> =
        delta.delete_edges.iter().copied().collect();
    let mut b = GraphBuilder::new();
    for v in g.nodes() {
        b.add_node(g.label(v));
    }
    for (u, v) in g.edges() {
        if !deleted.contains(&(u, v)) {
            b.add_edge(u, v);
        }
    }
    for &(u, v) in &delta.insert_edges {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The bitset kernel equals the HashSet reference kernel exactly,
    /// on every graph/pattern shape.
    #[test]
    fn bitset_kernel_equals_hashset_reference(
        (g, q, _assign, _k, _seed) in shaped_workload_strategy()
    ) {
        prop_assert_eq!(
            hhk_simulation(&q, &g).relation,
            hashset_simulation(&q, &g).relation
        );
    }

    /// Every engine whose plan accepts the workload reproduces the
    /// HashSet reference: the bitset `lEval`/`MatchSet` conversions
    /// changed no answers anywhere in dGPM/dGPMd/dGPMs/dGPMt. The one
    /// sanctioned divergence is the planner's `trivial-∅`
    /// short-circuit (cyclic `Q` on an acyclic `G`), whose relation
    /// is the ∅ answer convention rather than the raw fixpoint — for
    /// that case the reference must agree there is no total match.
    #[test]
    fn engines_equal_hashset_reference_on_shaped_workloads(
        (g, q, assign, k, _seed) in shaped_workload_strategy()
    ) {
        let oracle = hashset_simulation(&q, &g);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        for algo in [
            Algorithm::dgpm(),
            Algorithm::Dgpmd,
            Algorithm::Dgpms,
            Algorithm::Dgpmt,
            Algorithm::Auto,
        ] {
            // Shape-restricted engines may decline (e.g. dGPMt off a
            // tree); a produced answer must match the reference.
            if let Ok(report) = engine.query_with(&algo, &q) {
                prop_assert_eq!(report.is_match, oracle.relation.is_total());
                if report.algorithm == "trivial-∅" {
                    prop_assert!(!oracle.relation.is_total());
                } else {
                    prop_assert_eq!(
                        &report.relation,
                        &oracle.relation,
                        "{:?} diverges from the HashSet reference",
                        algo
                    );
                }
            }
        }
    }

    /// The delta path too: after a mixed insert/delete batch the
    /// maintained (or, for an invalidated `trivial-∅` entry,
    /// re-evaluated) session answers exactly what the HashSet
    /// reference computes on the mutated graph.
    #[test]
    fn delta_path_equals_hashset_reference(
        (g, q, assign, k, seed) in shaped_workload_strategy()
    ) {
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        // Warm the cached answer so maintenance has something to keep
        // current.
        engine.query(&q).expect("pre-delta query");
        let delta = random_delta(&g, 8, seed ^ 0xd1f7);
        if !delta.is_empty() {
            engine.apply_delta(&delta).expect("apply delta");
            let oracle = hashset_simulation(&q, &apply_to_graph(&g, &delta));
            let got = engine.query(&q).expect("post-delta query");
            prop_assert_eq!(got.is_match, oracle.relation.is_total());
            if got.algorithm == "trivial-∅" {
                prop_assert!(!oracle.relation.is_total());
            } else {
                prop_assert_eq!(
                    &got.relation,
                    &oracle.relation,
                    "delta path diverges from the HashSet reference on the mutated graph"
                );
            }
        }
    }
}
