//! Integration tests for the extension features: edge labels (§2.1's
//! dummy-node reduction), Boolean-query gathering (§4.1), schedule
//! jitter (confluence under adversarial schedules), and the dual /
//! strong simulation comparisons (§2.1).

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{patterns, random, social};
use dgs::graph::transform::{EdgeLabeledBuilder, EdgeLabeledPatternBuilder};
use dgs::prelude::*;
use std::sync::Arc;

/// End-to-end edge-labeled matching via the dummy-node reduction: an
/// `ℓ0` query edge must not match an `ℓ1` graph edge, centralized and
/// distributed alike.
#[test]
fn edge_labels_distinguish_matches() {
    const BASE: u16 = 100;
    // Pattern: A -[0]-> B.
    let mut qb = EdgeLabeledPatternBuilder::new(BASE);
    let qa = qb.add_node(Label(0));
    let qb_node = qb.add_node(Label(1));
    qb.add_edge(qa, qb_node, Some(0));
    let (q, _) = qb.build();

    // Graph: a0 -[0]-> b0, a1 -[1]-> b1.
    let mut gb = EdgeLabeledBuilder::new(BASE);
    let a0 = gb.add_node(Label(0));
    let b0 = gb.add_node(Label(1));
    let a1 = gb.add_node(Label(0));
    let b1 = gb.add_node(Label(1));
    gb.add_edge(a0, b0, Some(0));
    gb.add_edge(a1, b1, Some(1));
    let (g, _) = gb.build();

    let r = hhk_simulation(&q, &g).relation;
    assert!(r.contains(qa, a0));
    assert!(!r.contains(qa, a1));

    // Distributed: split the two components across sites.
    let assign: Vec<usize> = g.nodes().map(|v| (v.0 % 2) as usize).collect();
    let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
    let report = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
    assert_eq!(report.relation, r);
}

/// Boolean-query gathering returns the same verdict as the
/// data-selecting run, with O(|F|) result bytes.
#[test]
fn boolean_mode_matches_data_selecting() {
    for seed in 0..8 {
        let g = random::uniform(200, 700, 5, seed);
        let q = patterns::random_cyclic(4, 8, 5, seed + 23);
        let assign = hash_partition(g.node_count(), 4, seed);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let runner = DistributedSim::default();
        let full = runner.run(&Algorithm::dgpm(), &g, &frag, &q);
        let (matched, metrics) = runner.run_boolean(&Algorithm::dgpm(), &g, &frag, &q);
        assert_eq!(matched, full.is_match, "seed {seed}");
        // Presence bits: 9 bytes per site of result traffic.
        assert_eq!(metrics.result_messages, 4);
        assert_eq!(metrics.result_bytes, 4 * 9);
        assert!(metrics.result_bytes <= full.metrics.result_bytes);
        // Fixpoint shipment identical.
        assert_eq!(metrics.data_bytes, full.metrics.data_bytes);
    }
}

/// Boolean mode through the fallback path for non-dGPM algorithms.
#[test]
fn boolean_mode_fallback_for_other_algorithms() {
    let w = social::fig1();
    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let runner = DistributedSim::default();
    for algo in [Algorithm::DisHhk, Algorithm::DMes, Algorithm::MatchCentral] {
        let (matched, _) = runner.run_boolean(&algo, &w.graph, &frag, &w.pattern);
        assert!(matched, "{}", algo.name());
    }
}

/// Confluence under adversarial schedules: latency jitter permutes
/// message orderings, yet the monotone fixpoint answer never changes.
#[test]
fn jitter_schedules_are_confluent() {
    let g = random::uniform(250, 900, 4, 31);
    let q = patterns::random_cyclic(4, 8, 4, 32);
    let assign = hash_partition(g.node_count(), 6, 31);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 6));

    let baseline = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
    let mut saw_different_timing = false;
    for seed in 0..6 {
        let cost = CostModel::default().with_jitter(0.8, seed);
        let runner = DistributedSim::virtual_time(cost);
        let jittered = runner.run(&Algorithm::dgpm(), &g, &frag, &q);
        assert_eq!(jittered.relation, baseline.relation, "jitter seed {seed}");
        if jittered.metrics.virtual_time_ns != baseline.metrics.virtual_time_ns {
            saw_different_timing = true;
        }
    }
    assert!(
        saw_different_timing,
        "jitter should actually perturb schedules"
    );
}

/// §2.1's containment chain: strong ⊆ dual ⊆ plain simulation, and
/// the Fig. 1 golden fact that strong simulation misses yb2.
#[test]
fn simulation_refinement_chain() {
    use dgs::sim::{dual_simulation, strong_simulation};
    for seed in 0..6 {
        let g = random::uniform(70, 250, 4, seed + 90);
        let q = patterns::random_cyclic(3, 6, 4, seed + 91);
        let sim = hhk_simulation(&q, &g).relation;
        let dual = dual_simulation(&q, &g).relation;
        let strong = strong_simulation(&q, &g).relation;
        for (u, v) in dual.iter() {
            assert!(sim.contains(u, v));
        }
        for (u, v) in strong.iter() {
            assert!(dual.contains(u, v), "strong ⊄ dual at seed {seed}");
        }
    }

    let w = social::fig1();
    let sim = hhk_simulation(&w.pattern, &w.graph).relation;
    let strong = dgs::sim::strong_simulation(&w.pattern, &w.graph).relation;
    assert!(sim.contains(w.qnode("YB"), w.node("yb2")));
    assert!(!strong.contains(w.qnode("YB"), w.node("yb2")));
}

/// Push correctness under jitter: pushed equations + rewiring arrive
/// in arbitrary orders relative to falsifications; answers must hold.
#[test]
fn push_is_robust_to_schedules() {
    use dgs::core::dgpm::DgpmConfig;
    for seed in 0..6 {
        let g = random::community(300, 1_200, 5, 0.3, 5, seed);
        let q = patterns::random_cyclic(4, 8, 5, seed + 55);
        let assign = random::community_assignment(300, 5);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 5));
        let oracle = hhk_simulation(&q, &g).relation;
        for jitter_seed in 0..3 {
            let cost = CostModel::default().with_jitter(0.9, jitter_seed);
            let runner = DistributedSim::virtual_time(cost);
            let algo = Algorithm::Dgpm(DgpmConfig {
                incremental: true,
                push_threshold: Some(0.0), // force pushes everywhere
                push_size_cap: 4096,
            });
            let report = runner.run(&algo, &g, &frag, &q);
            assert_eq!(report.relation, oracle, "seed {seed} jitter {jitter_seed}");
        }
    }
}
