//! Executor confluence: graph simulation is a monotone fixpoint, so
//! the threaded cluster (real concurrency, nondeterministic
//! interleavings) and the virtual-time simulator (deterministic) must
//! produce identical answers — and the virtual executor must be
//! bit-reproducible.

// These tests deliberately exercise the deprecated one-shot shim
// alongside the session API.
#![allow(deprecated)]

use dgs::graph::generate::{patterns, random};
use dgs::prelude::*;
use std::sync::Arc;

fn workload(seed: u64) -> (Graph, Pattern, Arc<Fragmentation>) {
    let g = random::uniform(250, 900, 5, seed);
    let q = patterns::random_cyclic(4, 8, 5, seed + 13);
    let assign = hash_partition(g.node_count(), 6, seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 6));
    (g, q, frag)
}

#[test]
fn threaded_and_virtual_agree_on_answers() {
    for seed in 0..8 {
        let (g, q, frag) = workload(seed);
        for algo in [
            Algorithm::dgpm(),
            Algorithm::dgpm_nopt(),
            Algorithm::Dgpms,
            Algorithm::DMes,
            Algorithm::DisHhk,
            Algorithm::MatchCentral,
        ] {
            let virt = DistributedSim::default().run(&algo, &g, &frag, &q);
            let thr = DistributedSim::threaded().run(&algo, &g, &frag, &q);
            assert_eq!(
                virt.relation, thr.relation,
                "seed {seed}, {}",
                virt.algorithm
            );
        }
    }
}

#[test]
fn virtual_executor_is_deterministic_end_to_end() {
    let (g, q, frag) = workload(3);
    let run = || {
        let r = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
        (
            r.relation.clone(),
            r.metrics.virtual_time_ns,
            r.metrics.data_bytes,
            r.metrics.data_messages,
            r.metrics.total_ops,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn threaded_runs_tolerate_repeated_execution() {
    // Message interleavings differ between runs; the answer may not.
    let (g, q, frag) = workload(5);
    let first = DistributedSim::threaded().run(&Algorithm::dgpm(), &g, &frag, &q);
    for _ in 0..3 {
        let again = DistributedSim::threaded().run(&Algorithm::dgpm(), &g, &frag, &q);
        assert_eq!(first.relation, again.relation);
    }
}

#[test]
fn wall_clock_is_recorded_by_both_executors() {
    let (g, q, frag) = workload(1);
    let virt = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
    let thr = DistributedSim::threaded().run(&Algorithm::dgpm(), &g, &frag, &q);
    assert!(virt.metrics.wall_time.as_nanos() > 0);
    assert!(thr.metrics.wall_time.as_nanos() > 0);
    assert!(virt.metrics.virtual_time_ns > 0);
    assert_eq!(thr.metrics.virtual_time_ns, 0); // wall-clock mode
}
