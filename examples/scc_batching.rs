//! `dGPMs` vs `dGPM`: what SCC-stratified batching buys (and costs).
//!
//! `dGPMd` (§5.1) batches falsifications by topological rank to cut
//! the *number* of messages — Example 10 counts 6 instead of 12. The
//! repository's `dGPMs` extends that scheduling to cyclic patterns via
//! the SCC condensation. This example measures the trade on a
//! community graph with a cyclic query:
//!
//! * **messages**: `dGPMs` sends at most one data message per site
//!   pair per round — typically several-fold fewer than the eager
//!   asynchronous `dGPM`;
//! * **bytes**: identical up to batch headers (each falsified
//!   variable still ships at most once per subscriber, `O(|Ef||Vq|)`);
//! * **response time**: asynchronous `dGPM` usually wins — it
//!   pipelines falsification chains, while each `dGPMs` stratum round
//!   pays a coordinator barrier round trip. Batching pays off when
//!   per-message cost dominates (flow control, small-message-hostile
//!   transports), which the second table simulates.
//!
//! ```text
//! cargo run --release --example scc_batching
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let seed = 42u64;
    let g = dgs::graph::generate::random::community(30_000, 150_000, 8, 0.1, 15, seed);
    let q = dgs::graph::generate::patterns::random_cyclic(5, 10, 15, seed);
    let k = 8;
    let assign = hash_partition(g.node_count(), k, seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let oracle = hhk_simulation(&q, &g).relation;

    // An EC2-like network and one where each message costs 1 ms of
    // handling (the per-message-dominated regime).
    let ec2 = CostModel::default();
    let permsg = CostModel {
        ns_per_message: 1_000_000,
        ..CostModel::default()
    };

    for (label, cost) in [("EC2-like network", &ec2), ("1 ms per message", &permsg)] {
        println!("{label}:");
        let engine = SimEngine::builder(&g, Arc::clone(&frag))
            .cost(cost.clone())
            .build();
        for algo in [Algorithm::dgpm_incremental_only(), Algorithm::Dgpms] {
            let r = engine.query_with(&algo, &q).unwrap();
            assert_eq!(r.relation, oracle);
            println!(
                "  {:>12}: {:>5} data messages  {:>8.1} KB  PT {:>7.2} ms",
                r.algorithm,
                r.metrics.data_messages,
                r.metrics.data_kb(),
                r.metrics.virtual_time_ms()
            );
        }
    }
    println!("\nanswers identical across engines and cost models (asserted)");
}
