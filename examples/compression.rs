//! Query-preserving compression: answer simulation patterns on a
//! quotient graph instead of the original, exactly.
//!
//! §7 of the paper names graph compression as a companion technique
//! for querying real-life graphs. This example compresses a
//! label-sparse web-like graph by simulation equivalence and by
//! bisimulation, runs the same pattern on the original and both
//! quotients, and verifies the expanded answers are identical.
//!
//! ```text
//! cargo run --example compression
//! ```

use dgs::prelude::*;
use dgs::sim::{compress_bisim, compress_simeq};

fn main() {
    // A label-sparse scale-free graph: lots of same-label sink-side
    // redundancy for the equivalences to merge.
    let g = dgs::graph::generate::random::web_like(4_000, 16_000, 4, 11);
    let q = dgs::graph::generate::patterns::random_cyclic(4, 7, 4, 5);
    println!(
        "original:        |V| = {:>5}  |E| = {:>5}  |G| = {:>5}",
        g.node_count(),
        g.edge_count(),
        g.size()
    );

    let simeq = compress_simeq(&g);
    println!(
        "simeq quotient:  |V| = {:>5}  |E| = {:>5}  |G| = {:>5}  ({:.1}% of original)",
        simeq.graph.node_count(),
        simeq.graph.edge_count(),
        simeq.graph.size(),
        100.0 * simeq.ratio(g.size())
    );
    let bisim = compress_bisim(&g);
    println!(
        "bisim quotient:  |V| = {:>5}  |E| = {:>5}  |G| = {:>5}  ({:.1}% of original)",
        bisim.graph.node_count(),
        bisim.graph.edge_count(),
        bisim.graph.size(),
        100.0 * bisim.ratio(g.size())
    );
    assert!(simeq.class_count() <= bisim.class_count());

    // Same answers, computed on graphs of different sizes.
    let oracle = hhk_simulation(&q, &g).relation;
    let via_simeq = simeq.query_expanded(&q);
    let via_bisim = bisim.query_expanded(&q);
    assert_eq!(via_simeq, oracle);
    assert_eq!(via_bisim, oracle);
    println!(
        "\npattern (|Vq| = {}, |Eq| = {}): {} match pairs — identical on G, G/simeq, G/bisim",
        q.node_count(),
        q.edge_count(),
        oracle.len()
    );

    // The largest merged class, as a peek at *what* compression merges.
    let biggest = simeq
        .members
        .iter()
        .enumerate()
        .max_by_key(|(_, m)| m.len())
        .expect("nonempty graph");
    println!(
        "largest simulation-equivalence class: {} nodes with label {:?} \
         (all indistinguishable to every simulation query)",
        biggest.1.len(),
        g.label(biggest.1[0])
    );

    // Structure decides the payoff: a scale-free graph with cycles
    // barely compresses, while a tree's same-label leaves and
    // subtrees merge aggressively.
    let t = dgs::graph::generate::tree::random_tree(4_000, 4, 11);
    let tq = dgs::graph::generate::patterns::random_dag_with_depth(4, 6, 3, 4, 5);
    let tc = compress_simeq(&t);
    assert_eq!(tc.query_expanded(&tq), hhk_simulation(&tq, &t).relation);
    println!(
        "\nsame exercise on a random tree: |G| = {} -> |Gc| = {} ({:.1}%), answers identical",
        t.size(),
        tc.graph.size(),
        100.0 * tc.ratio(t.size())
    );
}
