//! The paper's motivating scenario at scale: a beer brand mining a
//! distributed social network for potential customers (Example 1).
//!
//! Generates a 50K-node social graph with implanted recommendation
//! cycles, distributes it over 8 sites, and compares `dGPM` against
//! the `Match`, `disHHK` and `dMes` baselines on response time and
//! data shipment.
//!
//! ```text
//! cargo run --release --example social_recommendation
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    // The Fig. 1 pattern: YB -> {F, YF}, cycle YF -> F -> SP -> YF.
    let fig1 = dgs::graph::generate::social::fig1();
    let pattern = fig1.pattern.clone();

    // A 50K-node geo-distributed social network over 8 interest
    // labels: users cluster into 8 regional communities (§1 of the
    // paper — Twitter/Facebook graphs are geo-distributed to data
    // centers), with 5% cross-region recommendations and 40 implanted
    // pattern instances (guaranteed matches).
    let n = 50_000;
    let k = 8;
    let graph = dgs::graph::generate::social::community_social_network(
        n,
        4 * n,
        k,
        0.05,
        8,
        &pattern,
        40,
        2024,
    );
    println!(
        "social graph: {} nodes, {} edges; pattern |Q| = ({}, {})",
        graph.node_count(),
        graph.edge_count(),
        pattern.node_count(),
        pattern.edge_count()
    );

    // The pattern's labels (0..4) are a subset of the graph's
    // alphabet (0..8), so it applies as-is. One region per site — the
    // low-crossing regime the paper's partition-bounded guarantees are
    // stated in (their experiments refine random partitions to
    // |Vf| = 25% with the swap heuristic of [27], which
    // `dgs_partition::refine_toward_ratio` also implements).
    let assign = dgs::graph::generate::social::community_social_assignment(graph.node_count(), k);
    let frag = Arc::new(Fragmentation::build(&graph, &assign, k));
    println!(
        "fragmentation: {}",
        FragmentationStats::compute(&graph, &frag)
    );

    // Load the graph into a session once; every algorithm below reuses
    // the fragmentation and the planner's facts.
    let engine = SimEngine::builder(&graph, frag).build();
    println!(
        "\n{:<10} {:>12} {:>12} {:>10} {:>14}",
        "algorithm", "PT (ms)", "DS (KB)", "matches", "data msgs"
    );
    let mut dgpm_answer: Option<MatchRelation> = None;
    for algo in [
        Algorithm::dgpm(),
        Algorithm::DisHhk,
        Algorithm::DMes,
        Algorithm::MatchCentral,
    ] {
        let report = engine.query_with(&algo, &pattern).unwrap();
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>10} {:>14}",
            report.algorithm,
            report.metrics.virtual_time_ms(),
            report.metrics.data_kb(),
            report.answer().len(),
            report.metrics.data_messages
        );
        match &dgpm_answer {
            None => dgpm_answer = Some(report.relation.clone()),
            Some(first) => assert_eq!(first, &report.relation, "algorithms disagree"),
        }
    }

    let answer = dgpm_answer.unwrap();
    assert!(answer.is_total(), "implanted matches guarantee a hit");
    // The beer brand's targets: the YB matches.
    let yb = QNodeId(0);
    println!(
        "\npotential customers (YB matches): {} users, e.g. {:?}",
        answer.matches_of(yb).len(),
        &answer.matches_of(yb)[..answer.matches_of(yb).len().min(5)]
    );
}
