//! Truly distributed execution: the coordinator and the worker sites
//! run in **separate OS processes**, connected by TCP sockets.
//!
//! ```text
//! cargo run --example multiprocess
//! ```
//!
//! The example re-spawns itself twice with `--worker` (each copy hosts
//! half the sites), bootstraps the cluster with the graph + the
//! fragmentation, runs the same queries under the in-process virtual
//! executor and the socket executor, and shows that the answers — and
//! the shipped-variable accounting — agree. A second socket session
//! adds a chaos transport (drop-then-retry, duplication, reordering)
//! and the answers still agree: the protocol's data messages are
//! idempotent, so at-least-once delivery is safe.
//!
//! In production the workers are `dgsd --worker` processes on other
//! machines and the coordinator attaches by address; see the README's
//! "Truly distributed execution" walkthrough.

use dgs::graph::generate::{patterns, random};
use dgs::net::{ChaosPlan, SocketConfig};
use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    // Worker mode: host sites for a coordinator, then exit.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        dgs::core::remote::run_worker_cli("multiprocess-worker", "127.0.0.1:0")
            .expect("worker loop");
        return;
    }

    let me = std::env::current_exe().expect("own executable");
    let spawn = || SocketConfig::spawn_local(me.clone(), vec!["--worker".into()], 2);

    // A cyclic web-like graph over 4 sites.
    let g = random::web_like(2_000, 8_000, 6, 7);
    let assign = hash_partition(g.node_count(), 4, 7);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
    println!(
        "graph |V|={} |E|={}  fragmentation |F|=4 |Vf|={} |Ef|={}",
        g.node_count(),
        g.edge_count(),
        frag.vf(),
        frag.ef()
    );

    let virt = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build();
    let sock = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build_socket(spawn())
        .expect("socket cluster");
    {
        let cluster = sock.socket_cluster().expect("socket session");
        println!(
            "spawned {} worker processes: {}",
            cluster.num_workers(),
            cluster.worker_addrs().join(", ")
        );
    }

    for seed in 0..3 {
        let q = patterns::random_cyclic(3, 6, 6, 100 + seed);
        let a = virt.query(&q).expect("virtual");
        let b = sock.query(&q).expect("socket");
        assert_eq!(a.relation, b.relation, "executors disagree!");
        println!(
            "query {seed} ({}): |Q(G)| = {:>4} pairs  virtual: {} data msgs / {} B   \
             socket: {} data msgs / {} B (across real processes)",
            a.algorithm,
            a.answer().len(),
            a.metrics.data_messages,
            a.metrics.data_bytes,
            b.metrics.data_messages,
            b.metrics.data_bytes,
        );
    }
    drop(sock); // shuts the workers down and reaps them

    // Same again, through an adversarial transport.
    let chaotic = SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(spawn().chaos(ChaosPlan::heavy(13)))
        .expect("chaotic cluster");
    let mut dups = 0;
    for seed in 0..3 {
        let q = patterns::random_cyclic(3, 6, 6, 100 + seed);
        let a = virt.query(&q).expect("virtual");
        let b = chaotic.query(&q).expect("chaotic socket");
        assert_eq!(a.relation, b.relation, "chaos changed an answer!");
        dups += b.metrics.duplicated_messages;
    }
    println!(
        "chaos transport (20% drop-then-retry, 20% duplicate, 30% reorder): \
         all answers identical, {dups} duplicate deliveries absorbed"
    );
    println!("ok");
}
