//! Dynamic graphs: a `SimEngine` session absorbing live edge updates.
//!
//! Deletions (unfollows, revoked recommendations) drive **distributed
//! incremental maintenance**: every site replays the HHK counter
//! update on its fragment and ships in-node falsifications to its
//! subscriber sites, exactly like dGPM data messages — so the warm
//! cache keeps answering with **zero** protocol runs. Insertions can
//! revive candidates from above, so they conservatively invalidate
//! the cache and the next query re-plans.
//!
//! ```text
//! cargo run --release --example dynamic
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let fig1 = dgs::graph::generate::social::fig1();
    let pattern = fig1.pattern.clone();
    let n = 5_000;
    let graph = dgs::graph::generate::social::social_network(n, 4 * n, 8, &pattern, 25, 7);
    let assign = hash_partition(graph.node_count(), 4, 7);
    let frag = Arc::new(Fragmentation::build(&graph, &assign, 4));
    let engine = SimEngine::builder(&graph, frag).build();
    println!(
        "session: |V| = {}, |E| = {}, |F| = 4, |Ef| = {}",
        graph.node_count(),
        graph.edge_count(),
        engine.fragmentation().ef()
    );

    // Load the cache with a cold run.
    let cold = engine.query(&pattern).unwrap();
    println!(
        "cold query: {} pairs via {} ({} data msgs)",
        cold.relation.len(),
        cold.algorithm,
        cold.metrics.data_messages
    );

    // A stream of unfollows: three delete-only batches.
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    for batch in 0..3 {
        let dels: Vec<(NodeId, NodeId)> = edges.split_off(edges.len() - 40);
        let report = engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();
        println!(
            "\nbatch {batch}: -{} edges (crossing {}), maintained {} entr{} — \
             {} pairs revoked, {} falsification msgs",
            report.deleted,
            report.crossing_deleted,
            report.maintained_entries,
            if report.maintained_entries == 1 {
                "y"
            } else {
                "ies"
            },
            report.revoked_pairs,
            report.metrics.data_messages,
        );
        let warm = engine.query(&pattern).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.metrics.data_messages, 0);
        let note = warm.plan.incremental.expect("incremental leg recorded");
        println!(
            "  warm query: {} pairs, served from the maintained entry \
             ({} deletions absorbed over {} runs, zero messages)",
            warm.relation.len(),
            note.deletions_absorbed,
            note.maintenance_runs
        );
    }

    // One new follow edge: the relation may grow, so the cache is
    // conservatively invalidated and the next query re-plans.
    let (u, v) = edges[0];
    let report = engine
        .apply_delta(&GraphDelta::insertions([(v, u)]))
        .unwrap();
    println!(
        "\ninsertion: +{} edge, invalidated {} cached entr{} (generation {})",
        report.inserted,
        report.invalidated_entries,
        if report.invalidated_entries == 1 {
            "y"
        } else {
            "ies"
        },
        report.generation
    );
    let fresh = engine.query(&pattern).unwrap();
    assert_eq!(fresh.metrics.cache_hits, 0);
    println!(
        "re-planned query: {} pairs via {} ({} data msgs)",
        fresh.relation.len(),
        fresh.algorithm,
        fresh.metrics.data_messages
    );

    // The session stayed exact throughout.
    let oracle = hhk_simulation(&pattern, &engine.graph());
    assert_eq!(fresh.relation, oracle.relation);
    println!("\nfinal relation equals the centralized oracle: ✓");
}
