//! Trees: `dGPMt`'s two-round protocol on a distributed document tree
//! (Corollary 4 — parallel scalability in data shipment).
//!
//! Shipment stays `O(|Q||F|)` as the tree grows 16×, while `dGPM`'s
//! general-purpose protocol (also correct on trees) is compared for
//! contrast.
//!
//! ```text
//! cargo run --release --example distributed_tree
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let q = dgs::graph::generate::patterns::path_pattern(3, &[Label(0), Label(1), Label(2)]);
    let k = 8;

    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "|V|", "dGPMt PT(ms)", "dGPMt DS(KB)", "dGPM PT(ms)", "dGPM DS(KB)"
    );
    for n in [10_000usize, 40_000, 160_000] {
        let g = dgs::graph::generate::tree::random_tree_with_chain_bias(n, 6, 0.4, 5);
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).build();
        // The session's cached facts prove the dGPMt preconditions.
        assert!(engine.facts().is_rooted_tree && engine.facts().fragments_connected);
        // Auto resolves to the tree algorithm here.
        let rt = engine.query(&q).unwrap();
        assert_eq!(rt.algorithm, "dGPMt");
        let rg = engine
            .query_with(&Algorithm::dgpm_incremental_only(), &q)
            .unwrap();
        assert_eq!(rt.relation, rg.relation, "engines disagree at n={n}");
        println!(
            "{:>9} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            n,
            rt.metrics.virtual_time_ms(),
            rt.metrics.data_kb(),
            rg.metrics.virtual_time_ms(),
            rg.metrics.data_kb()
        );
    }
    println!("\ndGPMt's DS column is flat in |G| — Corollary 4's O(|Q||F|) bound.");
}
