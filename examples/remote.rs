//! Serving over the network, in one process: spin up the `dgsd`
//! server core on an ephemeral port, drive it with the typed client,
//! and watch remote answers match the in-process session — queries,
//! a batch, a delta, and the cache counters.
//!
//! ```text
//! cargo run --example remote
//! ```

use dgs::core::{GraphDelta, SimEngine};
use dgs::graph::generate::{patterns, random};
use dgs::prelude::*;
use dgs::serve::{ServerConfig, WireAlgorithm};
use std::sync::Arc;

fn main() {
    // A web-like graph served over 4 sites.
    let g = random::web_like(400, 1_600, 5, 42);
    let assign = hash_partition(g.node_count(), 4, 42);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
    let engine = SimEngine::builder(&g, frag).build();

    // Bind an ephemeral TCP port and serve in the background.
    let server = Server::bind(
        &ServeAddr::parse("127.0.0.1:0").unwrap(),
        engine,
        ServerConfig::default(),
    )
    .expect("bind");
    let handle = server.spawn();
    println!(
        "serving |V| = {} |E| = {} on {}",
        g.node_count(),
        g.edge_count(),
        handle.addr()
    );

    // Dial it like any remote client would.
    let mut client = DgsClient::connect(handle.addr()).expect("connect");
    let info = client.graph_info().expect("info");
    println!(
        "remote session: |V| = {}, |E| = {}, |F| = {}, generation {}",
        info.nodes, info.edges, info.sites, info.generation
    );

    // One query: the plan and metrics travel with the answer.
    let q = patterns::random_cyclic(3, 6, 5, 7);
    let a = client.query(&q, WireAlgorithm::Auto).expect("query");
    println!(
        "{}: match = {}, |relation| = {} pairs, PT = {:.3} ms, DS = {:.3} KB",
        a.algorithm,
        a.is_match,
        a.relation().len(),
        a.metrics.virtual_time_ms(),
        a.metrics.data_kb()
    );
    println!("plan: {}", a.plan);

    // A batch; the repeat of `q` is served from the daemon's cache.
    let batch: Vec<Pattern> = vec![
        q.clone(),
        patterns::random_dag_with_depth(4, 6, 2, 5, 9),
        q.clone(),
    ];
    let (items, total) = client
        .query_batch(&batch, WireAlgorithm::Auto)
        .expect("batch");
    println!(
        "batch: {}/{} answered, {} cache hits, PT = {:.3} ms",
        items.iter().filter(|r| r.is_ok()).count(),
        batch.len(),
        total.cache_hits,
        total.virtual_time_ms()
    );

    // A deletion-only delta: the daemon maintains its cached answers
    // incrementally (PR 3's machinery, now over the wire).
    let victim = g.edges().next().expect("graph has edges");
    let d = client
        .apply_delta(&GraphDelta::deletions([victim]))
        .expect("delta");
    println!(
        "delta: -{} edges, {} cached entries maintained incrementally, generation {}",
        d.deleted, d.maintained_entries, d.generation
    );

    // The same query again — answered at the new generation.
    let a2 = client.query(&q, WireAlgorithm::Auto).expect("re-query");
    println!(
        "re-query after delta: match = {}, |relation| = {} pairs ({} cache hit)",
        a2.is_match,
        a2.relation().len(),
        a2.metrics.cache_hits
    );

    if let Some(stats) = client.cache_stats().expect("stats") {
        println!(
            "daemon cache: {} entries, {} hits / {} misses, generation {}",
            stats.entries, stats.hits, stats.misses, stats.generation
        );
    }

    drop(client);
    handle.shutdown().expect("shutdown");
    println!("daemon shut down cleanly");
}
