//! DAG workloads: `dGPMd` on a citation-like network (Exp-2's
//! setting).
//!
//! Shows (a) the rank-scheduled algorithm's *bounded* messaging — at
//! most `d + 1` batches per site pair, so its message count grows
//! linearly in the pattern depth and is independent of how chatty the
//! falsification traffic is (dGPM's count is data-dependent and can
//! explode on deep cascades), and (b) the §5.1 short-circuit: a
//! cyclic pattern on a DAG graph is answered with zero distributed
//! work.
//!
//! ```text
//! cargo run --release --example citation_dag
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let n = 30_000;
    let graph = dgs::graph::generate::dag::citation_like(n, 2 * n + n / 7, 15, 11);
    assert!(dgs::graph::algo::graph_is_dag(&graph));
    println!(
        "citation DAG: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let k = 8;
    let assign = hash_partition(n, k, 3);
    let frag = Arc::new(Fragmentation::build(&graph, &assign, k));
    println!(
        "fragmentation: {}",
        FragmentationStats::compute(&graph, &frag)
    );

    // One session serves the whole sweep — structural facts (incl. the
    // DAG check dGPMd needs) are computed once, here.
    let engine = SimEngine::builder(&graph, frag).build();
    println!(
        "\nDAG patterns of growing diameter d (|Q| = (9,13)):\n{:<4} {:>14} {:>14} {:>12} {:>12}",
        "d", "dGPMd PT(ms)", "dGPM PT(ms)", "dGPMd msgs", "dGPM msgs"
    );
    for d in [2usize, 4, 6, 8] {
        let q = dgs::graph::generate::patterns::random_dag_with_depth(9, 13, d, 15, 99 + d as u64);
        let rd = engine.query_with(&Algorithm::Dgpmd, &q).unwrap();
        let rg = engine
            .query_with(&Algorithm::dgpm_incremental_only(), &q)
            .unwrap();
        assert_eq!(rd.relation, rg.relation, "engines disagree at d={d}");
        println!(
            "{:<4} {:>14.3} {:>14.3} {:>12} {:>12}",
            d,
            rd.metrics.virtual_time_ms(),
            rg.metrics.virtual_time_ms(),
            rd.metrics.data_messages,
            rg.metrics.data_messages
        );
    }

    // §5.1: cyclic pattern + DAG graph = immediate empty answer. The
    // auto-planner spots this itself — and explains it.
    let cyclic = dgs::graph::generate::patterns::random_cyclic(5, 10, 15, 1);
    let r = engine.query(&cyclic).unwrap();
    assert!(!r.is_match);
    assert_eq!(r.metrics.data_bytes, 0);
    println!("\ncyclic pattern on the DAG — plan: {}", r.plan);
    println!("empty answer with zero shipment (Theorem 3 shortcut)");
}
