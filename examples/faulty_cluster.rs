//! Robustness: stragglers and at-least-once delivery.
//!
//! The paper's protocol is a monotone fixpoint — falsified variables
//! never flip back (§4.1) — so its data messages are idempotent and
//! the computed relation is schedule-independent. This example
//! demonstrates both properties on the virtual-time cluster:
//!
//! 1. one site is slowed 8× (a straggler): the answer is unchanged,
//!    the asynchronous `dGPM` loses less response time than the
//!    round-synchronized `dGPMs`;
//! 2. 50% of data messages are delivered twice (a retrying
//!    transport): the answer is unchanged, only traffic grows.
//!
//! ```text
//! cargo run --example faulty_cluster
//! ```

use dgs::core::dgpm::{self, DgpmConfig};
use dgs::net::{FaultPlan, VirtualExecutor};
use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let g = dgs::graph::generate::random::community(4_000, 16_000, 8, 0.05, 8, 3);
    let q = dgs::graph::generate::patterns::random_cyclic(5, 9, 8, 17);
    let k = 8;
    let assign = hash_partition(g.node_count(), k, 3);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let oracle = hhk_simulation(&q, &g).relation;

    // --- 1. Straggler ---------------------------------------------
    println!("one site slowed 8x (|F| = {k}):");
    let healthy_engine = SimEngine::builder(&g, Arc::clone(&frag)).build();
    let degraded_engine = SimEngine::builder(&g, Arc::clone(&frag))
        .cost(CostModel::default().with_straggler(0, 8.0))
        .build();
    for algo in [Algorithm::dgpm(), Algorithm::Dgpms] {
        let healthy = healthy_engine.query_with(&algo, &q).unwrap();
        let degraded = degraded_engine.query_with(&algo, &q).unwrap();
        assert_eq!(healthy.relation, oracle);
        assert_eq!(degraded.relation, oracle);
        println!(
            "  {:>6}: PT {:.2} ms -> {:.2} ms ({:.2}x); answers identical",
            healthy.algorithm,
            healthy.metrics.virtual_time_ms(),
            degraded.metrics.virtual_time_ms(),
            degraded.metrics.virtual_time_ms() / healthy.metrics.virtual_time_ms()
        );
    }

    // --- 2. Duplicated deliveries ----------------------------------
    println!("\n50% of data messages delivered twice:");
    let qa = Arc::new(q.clone());
    let run = |rate: f64| {
        let (coord, sites) = dgpm::build(&frag, &qa, DgpmConfig::incremental_only());
        let mut exec = VirtualExecutor::new(CostModel::default());
        if rate > 0.0 {
            exec = exec.with_faults(FaultPlan::duplicating(rate, 99));
        }
        exec.run(coord, sites)
    };
    let clean = run(0.0);
    let faulty = run(0.5);
    assert_eq!(clean.coordinator.answer.as_ref().unwrap(), &oracle);
    assert_eq!(faulty.coordinator.answer.as_ref().unwrap(), &oracle);
    println!(
        "  clean : DS {:>8.2} KB in {:>5} messages",
        clean.metrics.data_kb(),
        clean.metrics.data_messages
    );
    println!(
        "  faulty: DS {:>8.2} KB in {:>5} messages ({} duplicates) — answer identical",
        faulty.metrics.data_kb(),
        faulty.metrics.data_messages,
        faulty.metrics.duplicated_messages
    );
}
