//! Quickstart: the paper's Fig. 1 running example.
//!
//! Builds the 13-node social graph distributed over 3 sites, runs the
//! partition-bounded `dGPM` algorithm, and prints the match relation —
//! reproducing Examples 1–7 of the paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let w = dgs::graph::generate::social::fig1();
    println!(
        "Fig. 1 workload: |G| = ({} nodes, {} edges), |Q| = ({}, {}), 3 sites",
        w.graph.node_count(),
        w.graph.edge_count(),
        w.pattern.node_count(),
        w.pattern.edge_count()
    );

    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let stats = FragmentationStats::compute(&w.graph, &frag);
    println!("fragmentation: {stats}");

    // Run dGPM on the deterministic virtual-time cluster.
    let report = DistributedSim::default().run(&Algorithm::dgpm(), &w.graph, &frag, &w.pattern);

    println!(
        "\nG matches Q: {} (PT {:.3} ms, DS {:.3} KB, {} data messages)",
        report.is_match,
        report.metrics.virtual_time_ms(),
        report.metrics.data_kb(),
        report.metrics.data_messages
    );
    println!("\nmaximum match relation Q(G):");
    for u in report.answer.iter().map(|(u, _)| u).collect::<std::collections::BTreeSet<_>>() {
        let matches: Vec<&str> = report
            .answer
            .matches_of(u)
            .iter()
            .map(|v| w.node_names[v.index()])
            .collect();
        println!("  {:>3} -> {}", w.query_names[u.index()], matches.join(", "));
    }

    // Cross-check against the centralized oracle.
    let oracle = hhk_simulation(&w.pattern, &w.graph);
    assert_eq!(report.relation, oracle.relation);
    println!("\ncross-checked against centralized HHK: OK");
}
