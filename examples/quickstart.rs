//! Quickstart: the paper's Fig. 1 running example on the session API.
//!
//! Builds the 13-node social graph distributed over 3 sites, loads it
//! into a `SimEngine` session, and lets `Algorithm::Auto` plan the
//! query — printing the planner's explanation alongside the match
//! relation (Examples 1–7 of the paper).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let w = dgs::graph::generate::social::fig1();
    println!(
        "Fig. 1 workload: |G| = ({} nodes, {} edges), |Q| = ({}, {}), 3 sites",
        w.graph.node_count(),
        w.graph.edge_count(),
        w.pattern.node_count(),
        w.pattern.edge_count()
    );

    let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
    let stats = FragmentationStats::compute(&w.graph, &frag);
    println!("fragmentation: {stats}");

    // Build the session once: the planner's structural facts (DAG-ness,
    // tree check, fragment connectivity, SCC condensation) are computed
    // here, then every query reuses them.
    let engine = SimEngine::builder(&w.graph, frag).build();
    let facts = engine.facts();
    println!(
        "session facts: dag = {}, rooted tree = {}, connected fragments = {}, {} SCCs",
        facts.is_dag, facts.is_rooted_tree, facts.fragments_connected, facts.scc_count
    );

    // Query with the auto-planner and show why it chose its engine.
    let report = engine.query(&w.pattern).expect("fig1 query is valid");
    println!("\nplan: {}", report.plan);
    println!(
        "G matches Q: {} (engine {}, PT {:.3} ms, DS {:.3} KB, {} data messages)",
        report.is_match,
        report.algorithm,
        report.metrics.virtual_time_ms(),
        report.metrics.data_kb(),
        report.metrics.data_messages
    );
    println!("\nmaximum match relation Q(G):");
    let answer = report.answer();
    for u in answer
        .iter()
        .map(|(u, _)| u)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let matches: Vec<&str> = answer
            .matches_of(u)
            .iter()
            .map(|v| w.node_names[v.index()])
            .collect();
        println!(
            "  {:>3} -> {}",
            w.query_names[u.index()],
            matches.join(", ")
        );
    }

    // Cross-check against the centralized oracle.
    let oracle = hhk_simulation(&w.pattern, &w.graph);
    assert_eq!(report.relation, oracle.relation);
    println!("\ncross-checked against centralized HHK: OK");
}
