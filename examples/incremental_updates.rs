//! Incremental simulation maintenance on a changing social graph.
//!
//! The paper's incremental `lEval` (§4.2) builds on incremental
//! pattern matching [13]: when edges disappear (an unfollow, a
//! revoked recommendation), the match relation shrinks and can be
//! repaired in `O(|AFF|)` — the affected area — instead of
//! recomputing from scratch. This example streams deletions over a
//! social graph and compares the incremental repair cost against full
//! recomputation.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use dgs::prelude::*;
use dgs::sim::IncrementalSim;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let fig1 = dgs::graph::generate::social::fig1();
    let pattern = fig1.pattern.clone();
    let n = 20_000;
    let graph = dgs::graph::generate::social::social_network(n, 4 * n, 8, &pattern, 25, 7);
    println!(
        "social graph: {} nodes, {} edges; pattern |Q| = ({}, {})",
        graph.node_count(),
        graph.edge_count(),
        pattern.node_count(),
        pattern.edge_count()
    );

    let full = hhk_simulation(&pattern, &graph);
    println!(
        "initial maximum match: {} pairs (full HHK: {} ops)",
        full.relation.len(),
        full.ops
    );

    let mut inc = IncrementalSim::new(&pattern, &graph);
    assert_eq!(inc.relation(), full.relation);

    let mut rng = SmallRng::seed_from_u64(99);
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let mut total_update_ops = 0u64;
    let deletions = 500;
    for _ in 0..deletions {
        let i = rng.gen_range(0..edges.len());
        let (u, v) = edges.swap_remove(i);
        let removed = inc.delete_edge(u, v);
        total_update_ops += inc.last_update_ops;
        if !removed.is_empty() {
            println!(
                "  unfollow {u:?} -> {v:?}: {} match pair(s) revoked ({} ops)",
                removed.len(),
                inc.last_update_ops
            );
        }
    }

    println!(
        "\n{deletions} deletions maintained with {total_update_ops} total ops \
         ({:.1} ops/update, vs {} ops for ONE full recomputation)",
        total_update_ops as f64 / deletions as f64,
        full.ops
    );
    println!(
        "final relation: {} pairs; still matching: {}",
        inc.relation().len(),
        inc.relation().is_total()
    );
    assert!(
        total_update_ops < full.ops * 2,
        "incremental maintenance should be far cheaper than recomputation per update"
    );
}
