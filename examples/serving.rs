//! Serving mode: one shared `SimEngine` under concurrent traffic.
//!
//! Builds a session over a labeled web-like graph with all three
//! serving features on — the parallel batch pool, the pattern-result
//! cache, and the compression-backed plan leg — then drives it from
//! four client threads at once and shows that repeat and isomorphic
//! submissions are served from cache with zero protocol messages.
//!
//! ```text
//! cargo run --example serving
//! ```

use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let g = dgs::graph::generate::random::web_like(600, 2_400, 4, 7);
    let assign = hash_partition(g.node_count(), 4, 7);
    let frag = Arc::new(Fragmentation::build(&g, &assign, 4));

    // One engine for the whole process: SimEngine is Send + Sync, so
    // threads share it by reference; the cache is shared too.
    let engine = SimEngine::builder(&g, frag)
        .cache_capacity(256)
        .compress(CompressionMethod::SimEq)
        .compression_threshold(1.0)
        .build();
    if let Some(note) = engine.compression_note() {
        println!(
            "compressed leg: {} classes via {}, ratio {:.3} (active: {})",
            note.classes,
            note.method,
            note.ratio,
            engine.compression_active()
        );
    }

    // Four clients, each submitting its own mixed stream — with
    // overlapping patterns, so later clients hit entries cached by
    // earlier ones.
    let queries: Vec<Pattern> = (0..12)
        .map(|i| dgs::graph::generate::patterns::random_cyclic(3, 6, 4, 100 + (i % 6)))
        .collect();
    std::thread::scope(|s| {
        for client in 0..4 {
            let engine = &engine;
            let queries = &queries;
            s.spawn(move || {
                for (i, q) in queries.iter().enumerate() {
                    let r = engine.query(q).expect("valid pattern");
                    if client == 0 && i < 3 {
                        println!(
                            "client {client} query {i}: {} -> {} pairs (cache_hits = {})",
                            r.algorithm,
                            r.answer().len(),
                            r.metrics.cache_hits
                        );
                    }
                }
            });
        }
    });
    let stats = engine.cache_stats().expect("cache enabled");
    println!(
        "after 4 clients x {} queries: {} distinct entries, {} hits, {} misses",
        queries.len(),
        stats.entries,
        stats.hits,
        stats.misses
    );

    // A batch through the worker pool; a repeat of the same batch is
    // pure cache traffic.
    let batch = engine.query_batch(&queries);
    println!(
        "warm batch: {}/{} answered, {} cache hits, {} protocol messages",
        batch.succeeded(),
        queries.len(),
        batch.total.cache_hits,
        batch.total.data_messages + batch.total.control_messages
    );
    assert_eq!(batch.total.data_messages + batch.total.control_messages, 0);

    // Isomorphic re-submission: the same pattern with renumbered
    // nodes still hits.
    let mut b = PatternBuilder::new();
    let y = b.add_node(Label(1));
    let x = b.add_node(Label(0));
    b.add_edge(x, y);
    let q1 = b.build();
    let mut b = PatternBuilder::new();
    let x = b.add_node(Label(0));
    let y = b.add_node(Label(1));
    b.add_edge(x, y);
    let q2 = b.build();
    let cold = engine.query(&q1).unwrap();
    let warm = engine.query(&q2).unwrap();
    println!(
        "isomorphic resubmission: cold cache_hits = {}, renumbered cache_hits = {}",
        cold.metrics.cache_hits, warm.metrics.cache_hits
    );
    assert_eq!(warm.metrics.cache_hits, 1);
    // The served relation is re-expressed in q2's numbering: q2's
    // node 0 is q1's node 1 and vice versa.
    assert_eq!(
        warm.relation.matches_of(QNodeId(0)),
        cold.relation.matches_of(QNodeId(1))
    );
    assert_eq!(
        warm.relation.matches_of(QNodeId(1)),
        cold.relation.matches_of(QNodeId(0))
    );
}
