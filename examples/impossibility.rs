//! The impossibility theorem, experimentally (Theorem 1, Fig. 2).
//!
//! `Q0` is the 2-cycle `A ⇄ B`; `G0` is a ring of `n` `(Ai, Bi)` pairs
//! with one pair per site. Both `|Q0|` and every fragment are
//! constant-size, yet:
//!
//! * breaking one ring edge forces the falsification to travel through
//!   all `n` sites — response time grows linearly in `n`, so no
//!   algorithm is parallel scalable in response time (Thm 1(1));
//! * with just 2 fragments (all A's vs all B's), deciding the broken
//!   ring forces `Ω(n)` data across the cut, so none is parallel
//!   scalable in data shipment (Thm 1(2)).
//!
//! ```text
//! cargo run --release --example impossibility
//! ```

use dgs::graph::generate::adversarial;
use dgs::prelude::*;
use std::sync::Arc;

fn main() {
    let q = adversarial::q0();
    let algo = Algorithm::dgpm_incremental_only();
    let query = |g: &Graph, assign: &[usize], k: usize| {
        let frag = Arc::new(Fragmentation::build(g, assign, k));
        SimEngine::builder(g, frag)
            .build()
            .query_with(&algo, &q)
            .expect("ring workload is valid")
    };

    println!("Theorem 1(1): one (Ai,Bi) pair per site — constant |Fm|, |Q|");
    println!(
        "{:>6} {:>16} {:>16} {:>12} {:>10}",
        "n", "broken PT(ms)", "intact PT(ms)", "broken msgs", "matches"
    );
    for n in [4usize, 8, 16, 32, 64, 128] {
        let assign = adversarial::per_pair_assignment(n);
        let rb = query(&adversarial::broken_cycle_graph(n), &assign, n);
        assert!(!rb.is_match);

        let ri = query(&adversarial::cycle_graph(n), &assign, n);
        assert!(ri.is_match);

        println!(
            "{:>6} {:>16.3} {:>16.3} {:>12} {:>10}",
            n,
            rb.metrics.virtual_time_ms(),
            ri.metrics.virtual_time_ms(),
            rb.metrics.data_messages,
            ri.is_match
        );
    }
    println!("broken-ring PT grows with n: information must traverse the whole ring.\n");

    println!("Theorem 1(2): two fragments (A side / B side) — constant |F|, |Q|");
    println!("{:>6} {:>14} {:>14}", "n", "DS (KB)", "data msgs");
    for n in [64usize, 128, 256, 512, 1024] {
        let assign = adversarial::bipartite_assignment(n);
        let r = query(&adversarial::broken_cycle_graph(n), &assign, 2);
        assert!(!r.is_match);
        println!(
            "{:>6} {:>14.3} {:>14}",
            n,
            r.metrics.data_kb(),
            r.metrics.data_messages
        );
    }
    println!("DS grows with n despite |F| = 2: parallel scalability in shipment is impossible.");
}
