//! Synthetic workload generators.
//!
//! The paper evaluates on the Yahoo web graph, a citation DAG, and
//! synthetic graphs with `|Σ| = 15` labels; none of those datasets are
//! redistributable, so this module provides generators that preserve
//! the structural properties the experiments depend on (degree
//! distributions, |V|:|E| ratios, label alphabet size, acyclicity,
//! tree shape) — see DESIGN.md §4 for the substitution rationale.
//!
//! * [`random`] — uniform and power-law ("web-like") labeled digraphs
//!   (Exp-1, Exp-3);
//! * [`dag`] — layered "citation-like" DAGs (Exp-2);
//! * [`tree`] — random rooted trees (Corollary 4 experiments);
//! * [`social`] — the paper's Fig. 1 running example and scalable
//!   social-recommendation graphs;
//! * [`adversarial`] — the Fig. 2 families behind the impossibility
//!   theorem;
//! * [`rmat`] — the R-MAT / Graph500 recursive-matrix model, a second
//!   scale-free family for cross-checking generator effects;
//! * [`patterns`] — random cyclic patterns and DAG patterns with a
//!   prescribed depth.

pub mod adversarial;
pub mod dag;
pub mod patterns;
pub mod random;
pub mod rmat;
pub mod social;
pub mod tree;

use crate::graph::{GraphBuilder, NodeId};
use crate::pattern::Pattern;
use rand::Rng;

/// Adds `copies` isomorphic copies of `pattern` to `builder`, plus one
/// random incoming edge per copy to keep the graph weakly connected.
///
/// An isomorphic copy guarantees that every pattern node has a
/// simulation match (the copy simulates the pattern), so generators use
/// this to implant a controllable number of guaranteed matches into
/// otherwise random graphs. Returns the first implanted node of each
/// copy.
pub fn implant_pattern<R: Rng>(
    builder: &mut GraphBuilder,
    pattern: &Pattern,
    copies: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut firsts = Vec::with_capacity(copies);
    for _ in 0..copies {
        let existing = builder.node_count();
        let base = builder.node_count() as u32;
        for u in pattern.nodes() {
            builder.add_node(pattern.label(u));
        }
        firsts.push(NodeId(base));
        for (u, c) in pattern.edges() {
            builder.add_edge(NodeId(base + u.0 as u32), NodeId(base + c.0 as u32));
        }
        if existing > 0 {
            let anchor = NodeId(rng.gen_range(0..existing as u32));
            builder.add_edge(anchor, NodeId(base));
        }
    }
    firsts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::pattern::PatternBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn implant_adds_isomorphic_copy() {
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(1));
        let b = qb.add_node(Label(2));
        qb.add_edge(a, b);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        gb.add_node(Label(0)); // pre-existing anchor
        let mut rng = SmallRng::seed_from_u64(7);
        let firsts = implant_pattern(&mut gb, &q, 3, &mut rng);
        assert_eq!(firsts.len(), 3);
        let g = gb.build();
        assert_eq!(g.node_count(), 1 + 3 * 2);
        for f in firsts {
            assert_eq!(g.label(f), Label(1));
            let next = NodeId(f.0 + 1);
            assert_eq!(g.label(next), Label(2));
            assert!(g.has_edge(f, next));
        }
    }
}
