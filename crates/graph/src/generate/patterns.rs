//! Pattern-query generators.
//!
//! The paper's experiments use (a) "20 cyclic patterns" of a given size
//! `|Q| = (|Vq|, |Eq|)` (Exp-1/3) and (b) sets of DAG patterns whose
//! diameter `d` is swept from 2 to 8 (Exp-2). These generators
//! reproduce that protocol deterministically from a seed.

use crate::label::Label;
use crate::pattern::{Pattern, PatternBuilder, QNodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random *cyclic* connected pattern with `nq` nodes and `eq` edges
/// (`eq >= nq` required so a cycle plus connectivity fits), labels
/// uniform over `0..num_labels`.
///
/// Construction: a directed cycle over the first `k = max(2, nq/2)`
/// nodes guarantees cyclicity; the remaining nodes are attached by a
/// random edge to/from the existing component (connectivity); leftover
/// edge budget becomes uniform random extra edges.
pub fn random_cyclic(nq: usize, eq: usize, num_labels: usize, seed: u64) -> Pattern {
    assert!(nq >= 2, "cyclic pattern needs >= 2 nodes");
    assert!(eq >= nq, "need eq >= nq to be cyclic and connected");
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new();
    for _ in 0..nq {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    let mut edges = 0usize;
    let k = (nq / 2).max(2);
    for i in 0..k {
        b.add_edge(QNodeId(i as u16), QNodeId(((i + 1) % k) as u16));
        edges += 1;
    }
    for i in k..nq {
        let other = QNodeId(rng.gen_range(0..i) as u16);
        let node = QNodeId(i as u16);
        if rng.gen_bool(0.5) {
            b.add_edge(other, node);
        } else {
            b.add_edge(node, other);
        }
        edges += 1;
    }
    // Extra edges; avoid self-loops and duplicates by resampling.
    let mut have: std::collections::HashSet<(u16, u16)> = std::collections::HashSet::new();
    for i in 0..k {
        have.insert((i as u16, ((i + 1) % k) as u16));
    }
    let mut attempts = 0;
    while edges < eq && attempts < 50 * eq {
        attempts += 1;
        let u = rng.gen_range(0..nq) as u16;
        let v = rng.gen_range(0..nq) as u16;
        if u == v || !have.insert((u, v)) {
            continue;
        }
        b.add_edge(QNodeId(u), QNodeId(v));
        edges += 1;
    }
    b.build()
}

/// A random DAG pattern with `nq` nodes, about `eq` edges, and longest
/// directed path exactly `depth` (the quantity that bounds `dGPMd`'s
/// rank rounds; the paper calls it the diameter `d`).
///
/// Every node gets a level in `0..=depth` and edges only go from level
/// `l` to a strictly larger level, so no path exceeds `depth`; a
/// backbone path through all levels guarantees `depth` is attained.
pub fn random_dag_with_depth(
    nq: usize,
    eq: usize,
    depth: usize,
    num_labels: usize,
    seed: u64,
) -> Pattern {
    assert!(nq > depth, "need nq >= depth + 1 nodes");
    assert!(
        eq >= nq.saturating_sub(1),
        "need eq >= nq - 1 for connectivity"
    );
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = PatternBuilder::new();
    // Nodes 0..=depth form the backbone at levels 0..=depth; the rest
    // get random levels.
    let mut level = Vec::with_capacity(nq);
    for i in 0..nq {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
        level.push(if i <= depth {
            i
        } else {
            rng.gen_range(0..=depth)
        });
    }
    let mut have = std::collections::HashSet::new();
    let mut edges = 0usize;
    // Backbone.
    for i in 0..depth {
        b.add_edge(QNodeId(i as u16), QNodeId((i + 1) as u16));
        have.insert((i as u16, (i + 1) as u16));
        edges += 1;
    }
    // Connect every non-backbone node to the component, respecting
    // levels.
    for i in (depth + 1)..nq {
        let li = level[i];
        // Pick any earlier node with a different level; the backbone
        // spans all levels so one always exists.
        let j = loop {
            let j = rng.gen_range(0..i);
            if level[j] != li {
                break j;
            }
        };
        let (src, dst) = if level[j] < li { (j, i) } else { (i, j) };
        if have.insert((src as u16, dst as u16)) {
            b.add_edge(QNodeId(src as u16), QNodeId(dst as u16));
            edges += 1;
        }
    }
    // Extra forward edges.
    let mut attempts = 0;
    while edges < eq && attempts < 50 * eq {
        attempts += 1;
        let u = rng.gen_range(0..nq);
        let v = rng.gen_range(0..nq);
        if level[u] >= level[v] {
            continue;
        }
        if !have.insert((u as u16, v as u16)) {
            continue;
        }
        b.add_edge(QNodeId(u as u16), QNodeId(v as u16));
        edges += 1;
    }
    b.build()
}

/// A simple directed path pattern `u0 → u1 → ... → u(len)` with the
/// given labels (cycling if fewer labels than nodes are supplied).
pub fn path_pattern(len: usize, labels: &[Label]) -> Pattern {
    assert!(!labels.is_empty(), "need at least one label");
    let mut b = PatternBuilder::new();
    for i in 0..=len {
        b.add_node(labels[i % labels.len()]);
    }
    for i in 0..len {
        b.add_edge(QNodeId(i as u16), QNodeId((i + 1) as u16));
    }
    b.build()
}

/// Generates `count` seeded variants of a cyclic pattern family, as the
/// paper averages results over 20 queries of fixed size.
pub fn cyclic_family(
    count: usize,
    nq: usize,
    eq: usize,
    num_labels: usize,
    seed: u64,
) -> Vec<Pattern> {
    (0..count)
        .map(|i| random_cyclic(nq, eq, num_labels, seed.wrapping_add(i as u64)))
        .collect()
}

/// Generates `count` seeded DAG patterns with fixed size and depth.
pub fn dag_family(
    count: usize,
    nq: usize,
    eq: usize,
    depth: usize,
    num_labels: usize,
    seed: u64,
) -> Vec<Pattern> {
    (0..count)
        .map(|i| random_dag_with_depth(nq, eq, depth, num_labels, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{pattern_diameter, pattern_is_dag, pattern_longest_path};

    #[test]
    fn cyclic_pattern_is_cyclic_and_sized() {
        for seed in 0..20 {
            let q = random_cyclic(5, 10, 15, seed);
            assert_eq!(q.node_count(), 5);
            assert!(q.edge_count() >= 5 && q.edge_count() <= 10);
            assert!(!pattern_is_dag(&q), "seed {seed} produced a DAG");
        }
    }

    #[test]
    fn cyclic_pattern_deterministic() {
        assert_eq!(random_cyclic(6, 12, 15, 3), random_cyclic(6, 12, 15, 3));
    }

    #[test]
    fn dag_pattern_has_exact_depth() {
        for d in 2..=8 {
            let q = random_dag_with_depth(9, 13, d, 15, 100 + d as u64);
            assert_eq!(q.node_count(), 9);
            assert!(pattern_is_dag(&q), "depth {d} not a DAG");
            assert_eq!(
                pattern_longest_path(&q),
                Some(d as u32),
                "depth {d} wrong longest path"
            );
        }
    }

    #[test]
    fn dag_pattern_deterministic() {
        assert_eq!(
            random_dag_with_depth(9, 13, 4, 15, 5),
            random_dag_with_depth(9, 13, 4, 15, 5)
        );
    }

    #[test]
    fn path_pattern_shape() {
        let q = path_pattern(3, &[Label(0), Label(1)]);
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 3);
        assert_eq!(pattern_diameter(&q), 3);
        assert_eq!(q.label(QNodeId(0)), Label(0));
        assert_eq!(q.label(QNodeId(1)), Label(1));
        assert_eq!(q.label(QNodeId(2)), Label(0));
    }

    #[test]
    fn families_have_distinct_members() {
        let fam = cyclic_family(20, 5, 10, 15, 7);
        assert_eq!(fam.len(), 20);
        assert!(fam.windows(2).any(|w| w[0] != w[1]));
        let dfam = dag_family(5, 9, 13, 4, 15, 9);
        assert_eq!(dfam.len(), 5);
        for q in &dfam {
            assert_eq!(pattern_longest_path(q), Some(4));
        }
    }
}
