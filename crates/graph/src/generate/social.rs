//! The paper's Fig. 1 running example and scalable social graphs.
//!
//! [`fig1`] reconstructs the exact 13-node social graph, 4-node pattern
//! and 3-site fragmentation of Fig. 1, validated against Examples 2,
//! 4, 5, 6 and 7 of the paper (the expected match relation, crossing
//! edges, in-node sets and Boolean equations). It is used by the
//! quickstart example and as a golden test across the whole workspace.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::{Label, LabelInterner};
use crate::pattern::{Pattern, PatternBuilder, QNodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Fig. 1 workload: graph, pattern, site assignment and name maps.
pub struct Fig1 {
    /// The 13-node social graph `G`.
    pub graph: Graph,
    /// The 4-node pattern `Q` (YB, F, YF, SP with the recommendation
    /// cycle).
    pub pattern: Pattern,
    /// Site of each graph node (3 sites, matching `F1, F2, F3`).
    pub assignment: Vec<usize>,
    /// Human-readable node names (`"yb1"`, `"f3"`, ...), indexed by
    /// node id.
    pub node_names: Vec<&'static str>,
    /// Human-readable query-node names (`"YB"`, ...), indexed by query
    /// node id.
    pub query_names: Vec<&'static str>,
    /// The label alphabet (YB, F, YF, SP).
    pub labels: LabelInterner,
}

impl Fig1 {
    /// Node id of a named node.
    pub fn node(&self, name: &str) -> NodeId {
        let idx = self
            .node_names
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown fig1 node {name:?}"));
        NodeId(idx as u32)
    }

    /// Query node id of a named pattern node.
    pub fn qnode(&self, name: &str) -> QNodeId {
        let idx = self
            .query_names
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown fig1 query node {name:?}"));
        QNodeId(idx as u16)
    }

    /// The paper's expected maximum match (Example 2): YB ↦ {yb2, yb3},
    /// F ↦ {f2, f3, f4}, YF ↦ all yf, SP ↦ all sp.
    pub fn expected_matches(&self) -> Vec<(QNodeId, NodeId)> {
        let pairs = [
            ("YB", "yb2"),
            ("YB", "yb3"),
            ("F", "f2"),
            ("F", "f3"),
            ("F", "f4"),
            ("YF", "yf1"),
            ("YF", "yf2"),
            ("YF", "yf3"),
            ("SP", "sp1"),
            ("SP", "sp2"),
            ("SP", "sp3"),
        ];
        pairs
            .iter()
            .map(|&(q, v)| (self.qnode(q), self.node(v)))
            .collect()
    }
}

/// Builds the Fig. 1 workload.
pub fn fig1() -> Fig1 {
    let mut labels = LabelInterner::new();
    let yb_l = labels.intern("YB");
    let f_l = labels.intern("F");
    let yf_l = labels.intern("YF");
    let sp_l = labels.intern("SP");

    // Pattern Q: YB -> F, YB -> YF, plus the recommendation cycle
    // YF -> F -> SP -> YF (Example 6 names the query edges (YF, F) and
    // (SP, YF)).
    let mut qb = PatternBuilder::new();
    let q_yb = qb.add_node(yb_l);
    let q_f = qb.add_node(f_l);
    let q_yf = qb.add_node(yf_l);
    let q_sp = qb.add_node(sp_l);
    qb.add_edge(q_yb, q_f);
    qb.add_edge(q_yb, q_yf);
    qb.add_edge(q_yf, q_f);
    qb.add_edge(q_f, q_sp);
    qb.add_edge(q_sp, q_yf);
    let pattern = qb.build();

    // Graph nodes per fragment (Examples 4-7):
    //   F1: yb1, f1, yf1, sp1        (in-nodes yf1, sp1)
    //   F2: f2, yf2, f3, yb2, sp2    (in-nodes f2, yf2)
    //   F3: f4, sp3, yf3, yb3        (in-nodes f4, sp3, yf3)
    let names = [
        "yb1", "f1", "yf1", "sp1", // F1
        "f2", "yf2", "f3", "yb2", "sp2", // F2
        "f4", "sp3", "yf3", "yb3", // F3
    ];
    let node_label = |name: &str| -> Label {
        match &name[..name.len() - 1] {
            "yb" => yb_l,
            "f" => f_l,
            "yf" => yf_l,
            "sp" => sp_l,
            other => panic!("bad name prefix {other}"),
        }
    };
    let mut gb = GraphBuilder::new();
    for name in names {
        gb.add_node(node_label(name));
    }
    let id = |name: &str| NodeId(names.iter().position(|&n| n == name).unwrap() as u32);

    // Edges, annotated with provenance from the paper's examples.
    let edges: &[(&str, &str)] = &[
        // F1-local
        ("yb1", "yf1"), // yb1 has no F successor -> X(YB,yb1) = false
        ("sp1", "yf1"),
        // F1 crossing (Example 4): (f1,f4), (yf1,f2), (sp1,yf2), (sp1,f2)
        ("f1", "f4"), // f1 has no SP successor -> X(F,f1) = false (Example 2)
        ("yf1", "f2"),
        ("sp1", "yf2"),
        ("sp1", "f2"), // label-irrelevant for SP's query children
        // F2-local: the chain yf2 -> f3 -> sp2 behind Example 6's
        // reduction X(YF,yf2) = X(YF,yf3)
        ("yf2", "f3"),
        ("f3", "sp2"),
        ("yb2", "f3"),
        ("yb2", "yf2"),
        // F2 crossing
        ("f2", "sp1"),
        ("sp2", "yf3"),
        ("yb2", "sp3"), // makes sp3 an in-node annotated to S2 (Example 5)
        // F3-local
        ("f4", "sp3"),
        ("yf3", "f4"),
        ("yb3", "f4"),
        ("yb3", "yf3"),
        // F3 crossing
        ("sp3", "yf1"),
    ];
    for &(u, v) in edges {
        gb.add_edge(id(u), id(v));
    }
    let graph = gb.build();
    let assignment = vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2];

    Fig1 {
        graph,
        pattern,
        assignment,
        node_names: names.to_vec(),
        query_names: vec!["YB", "F", "YF", "SP"],
        labels,
    }
}

/// A scalable social-recommendation graph in the spirit of Fig. 1:
/// `n` nodes over `num_labels` interest labels, `m` background
/// recommendation edges (web-like), plus `implanted` guaranteed copies
/// of `pattern`. Returns the graph (the pattern is supplied by the
/// caller).
pub fn social_network(
    n: usize,
    m: usize,
    num_labels: usize,
    pattern: &Pattern,
    implanted: usize,
    seed: u64,
) -> Graph {
    assert!(n > 0, "need at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n + implanted * pattern.node_count(), m);
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    // Background edges with mild preferential attachment.
    let mut pool: Vec<u32> = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = if !pool.is_empty() && rng.gen_bool(0.5) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            rng.gen_range(0..n as u32)
        };
        b.add_edge(NodeId(u), NodeId(v));
        pool.push(v);
    }
    super::implant_pattern(&mut b, pattern, implanted, &mut rng);
    b.build()
}

/// A community-structured social-recommendation graph: like
/// [`social_network`], but nodes live in `k` communities (node `v` in
/// community `v % k` among the first `n` background nodes) and each
/// background edge stays inside its community with probability
/// `1 − cross_fraction`. Implanted pattern copies are appended after
/// the background nodes.
///
/// Geo-distributed social graphs have exactly this shape (users
/// cluster by region/data center, §1 of the paper), which is what
/// makes low-crossing fragmentations possible in practice.
#[allow(clippy::too_many_arguments)]
pub fn community_social_network(
    n: usize,
    m: usize,
    k: usize,
    cross_fraction: f64,
    num_labels: usize,
    pattern: &Pattern,
    implanted: usize,
    seed: u64,
) -> Graph {
    assert!(n >= k && k > 0, "need n >= k >= 1");
    assert!((0.0..=1.0).contains(&cross_fraction), "fraction in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n + implanted * pattern.node_count(), m);
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    let members_of = |c: usize| -> u32 { (n - c).div_ceil(k) as u32 };
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let c = u as usize % k;
        let v = if rng.gen_bool(cross_fraction) {
            rng.gen_range(0..n as u32)
        } else {
            (rng.gen_range(0..members_of(c)) as usize * k + c) as u32
        };
        b.add_edge(NodeId(u), NodeId(v));
    }
    super::implant_pattern(&mut b, pattern, implanted, &mut rng);
    b.build()
}

/// Site assignment for [`community_social_network`]: background node
/// `v` on site `v % k`; implanted nodes follow their anchor's
/// community round-robin by id.
pub fn community_social_assignment(total_nodes: usize, k: usize) -> Vec<usize> {
    (0..total_nodes).map(|v| v % k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let w = fig1();
        assert_eq!(w.graph.node_count(), 13);
        assert_eq!(w.pattern.node_count(), 4);
        assert_eq!(w.pattern.edge_count(), 5);
        assert_eq!(w.assignment.len(), 13);
        assert_eq!(w.labels.len(), 4);
    }

    #[test]
    fn fig1_crossing_edges_of_f1_match_example4() {
        let w = fig1();
        // Example 4: crossing edges of F1 are (f1,f4), (yf1,f2),
        // (sp1,yf2), (sp1,f2).
        let crossing: Vec<(&str, &str)> = w
            .graph
            .edges()
            .filter(|&(u, v)| w.assignment[u.index()] == 0 && w.assignment[v.index()] != 0)
            .map(|(u, v)| (w.node_names[u.index()], w.node_names[v.index()]))
            .collect();
        let mut expected = vec![("f1", "f4"), ("yf1", "f2"), ("sp1", "yf2"), ("sp1", "f2")];
        let mut got = crossing;
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn fig1_cycle_from_example4_exists() {
        // f3, sp2, yf3, f4, sp3, yf1, f2, sp1, yf2, back to f3.
        let w = fig1();
        let cycle = [
            "f3", "sp2", "yf3", "f4", "sp3", "yf1", "f2", "sp1", "yf2", "f3",
        ];
        for pair in cycle.windows(2) {
            assert!(
                w.graph.has_edge(w.node(pair[0]), w.node(pair[1])),
                "missing cycle edge {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn fig1_in_node_sets_match_example6() {
        let w = fig1();
        // An in-node of fragment i is a node of i with an incoming
        // crossing edge.
        let mut in_nodes: Vec<Vec<&str>> = vec![Vec::new(); 3];
        for v in w.graph.nodes() {
            let site = w.assignment[v.index()];
            let has_incoming_crossing = w
                .graph
                .predecessors(v)
                .iter()
                .any(|&p| w.assignment[p.index()] != site);
            if has_incoming_crossing {
                in_nodes[site].push(w.node_names[v.index()]);
            }
        }
        for l in &mut in_nodes {
            l.sort();
        }
        assert_eq!(in_nodes[0], vec!["sp1", "yf1"]);
        assert_eq!(in_nodes[1], vec!["f2", "yf2"]);
        assert_eq!(in_nodes[2], vec!["f4", "sp3", "yf3"]);
    }

    #[test]
    fn social_network_grows_with_implants() {
        let w = fig1();
        let g = social_network(100, 400, 8, &w.pattern, 5, 17);
        assert_eq!(g.node_count(), 100 + 5 * 4);
    }

    #[test]
    fn community_social_network_controls_crossing() {
        let w = fig1();
        let n = 2_000;
        let k = 4;
        let g = community_social_network(n, 8_000, k, 0.1, 8, &w.pattern, 3, 5);
        assert_eq!(g.node_count(), n + 3 * 4);
        let assign = community_social_assignment(g.node_count(), k);
        let crossing = g
            .edges()
            .filter(|&(u, v)| {
                u.index() < n && v.index() < n && assign[u.index()] != assign[v.index()]
            })
            .count();
        let background = g
            .edges()
            .filter(|&(u, v)| u.index() < n && v.index() < n)
            .count();
        let ratio = crossing as f64 / background as f64;
        let expected = 0.1 * (k as f64 - 1.0) / k as f64;
        assert!((ratio - expected).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn fig1_lookup_helpers() {
        let w = fig1();
        assert_eq!(w.node("yb1"), NodeId(0));
        assert_eq!(w.qnode("SP"), QNodeId(3));
        assert_eq!(w.expected_matches().len(), 11);
    }

    #[test]
    #[should_panic(expected = "unknown fig1 node")]
    fn unknown_node_panics() {
        fig1().node("nope");
    }
}
