//! Random labeled digraph generators.
//!
//! * [`uniform`] — each edge chosen uniformly at random (G(n, m)-style);
//! * [`web_like`] — heavy-tailed in/out degrees via preferential
//!   attachment, substituting for the Yahoo web graph of Exp-1 (|V|:|E|
//!   = 1:5, |Σ| = 15 by default in the bench harness).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_labels<R: Rng>(b: &mut GraphBuilder, n: usize, num_labels: usize, rng: &mut R) {
    assert!(num_labels > 0, "need at least one label");
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
}

/// A uniform random digraph with `n` nodes, about `m` edges (duplicates
/// are removed) and labels drawn uniformly from `0..num_labels`.
pub fn uniform(n: usize, m: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(n > 0, "need at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    random_labels(&mut b, n, num_labels, &mut rng);
    for _ in 0..m {
        let u = NodeId(rng.gen_range(0..n as u32));
        let v = NodeId(rng.gen_range(0..n as u32));
        b.add_edge(u, v);
    }
    b.build()
}

/// A scale-free-ish random digraph: edge targets (and, with lower
/// probability, sources) are chosen by preferential attachment, giving
/// heavy-tailed in-degrees like a web graph. Nodes keep uniform random
/// labels so that label selectivity matches the uniform generator.
pub fn web_like(n: usize, m: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(n > 0, "need at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    random_labels(&mut b, n, num_labels, &mut rng);

    // Endpoint pool for preferential attachment: picking a uniform
    // element of the pool selects nodes proportionally to their current
    // degree (plus the uniform seeding below).
    let mut pool: Vec<u32> = Vec::with_capacity(2 * m);
    for _ in 0..m {
        let u = if !pool.is_empty() && rng.gen_bool(0.25) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            rng.gen_range(0..n as u32)
        };
        let v = if !pool.is_empty() && rng.gen_bool(0.70) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            rng.gen_range(0..n as u32)
        };
        b.add_edge(NodeId(u), NodeId(v));
        pool.push(u);
        pool.push(v);
    }
    b.build()
}

/// A community-structured random digraph: `n` nodes split round-robin
/// into `k` communities; each edge stays inside its source's community
/// with probability `1 - cross_fraction` and goes to a uniform random
/// node otherwise.
///
/// Assigning community `i` to site `i` yields a fragmentation whose
/// `|Vf|/|V|` ratio is directly controlled by `cross_fraction`, which is
/// how the bench harness realizes the paper's `|Vf|` sweeps (25%–50%,
/// Fig. 6(e)/(f)/(k)/(l)) — the paper instead post-processes random
/// partitions with swap refinement \[27\], which `dgs-partition` also
/// implements.
pub fn community(
    n: usize,
    m: usize,
    k: usize,
    cross_fraction: f64,
    num_labels: usize,
    seed: u64,
) -> Graph {
    assert!(n > 0 && k > 0 && n >= k, "need n >= k >= 1");
    assert!((0.0..=1.0).contains(&cross_fraction), "fraction in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    random_labels(&mut b, n, num_labels, &mut rng);
    // Node v belongs to community v % k; community c = {c, c+k, ...}.
    let members_of = |c: usize| -> u32 { (n - c).div_ceil(k) as u32 };
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let c = u as usize % k;
        let v = if rng.gen_bool(cross_fraction) {
            rng.gen_range(0..n as u32)
        } else {
            (rng.gen_range(0..members_of(c)) as usize * k + c) as u32
        };
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// The canonical site assignment for [`community`] graphs: node `v` on
/// site `v % k`.
pub fn community_assignment(n: usize, k: usize) -> Vec<usize> {
    (0..n).map(|v| v % k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts() {
        let g = uniform(100, 400, 15, 42);
        assert_eq!(g.node_count(), 100);
        // Duplicates are removed, so at most m edges; with n^2 = 10000
        // slots and 400 draws nearly all should survive.
        assert!(g.edge_count() > 350 && g.edge_count() <= 400);
    }

    #[test]
    fn uniform_deterministic() {
        let g1 = uniform(50, 200, 5, 7);
        let g2 = uniform(50, 200, 5, 7);
        assert_eq!(g1, g2);
        let g3 = uniform(50, 200, 5, 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn labels_within_alphabet() {
        let g = uniform(200, 600, 15, 1);
        assert!(g.nodes().all(|v| g.label(v).index() < 15));
        assert!(g.label_bound() <= 15);
    }

    #[test]
    fn web_like_heavy_tail() {
        let g = web_like(2_000, 10_000, 15, 3);
        assert_eq!(g.node_count(), 2_000);
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.edge_count() as f64 / g.node_count() as f64;
        // Preferential attachment must concentrate in-degree well above
        // the mean (a uniform graph would have max ≈ 15 here).
        assert!(
            max_in as f64 > 8.0 * avg_in,
            "max in-degree {max_in} not heavy-tailed (avg {avg_in:.1})"
        );
    }

    #[test]
    fn web_like_deterministic() {
        assert_eq!(web_like(100, 500, 15, 9), web_like(100, 500, 15, 9));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_labels_rejected() {
        let _ = uniform(10, 10, 0, 0);
    }

    #[test]
    fn community_cross_fraction_controls_crossing_edges() {
        let n = 4_000;
        let k = 8;
        let assign = community_assignment(n, k);
        let crossing_ratio = |frac: f64| -> f64 {
            let g = community(n, 16_000, k, frac, 15, 5);
            let crossing = g
                .edges()
                .filter(|&(u, v)| assign[u.index()] != assign[v.index()])
                .count();
            crossing as f64 / g.edge_count() as f64
        };
        let lo = crossing_ratio(0.1);
        let hi = crossing_ratio(0.6);
        // cross_fraction f yields ~ f * (k-1)/k crossing edges.
        assert!((lo - 0.1 * 7.0 / 8.0).abs() < 0.03, "lo = {lo}");
        assert!((hi - 0.6 * 7.0 / 8.0).abs() < 0.03, "hi = {hi}");
        assert!(hi > 4.0 * lo);
    }

    #[test]
    fn community_assignment_round_robin() {
        assert_eq!(community_assignment(5, 2), vec![0, 1, 0, 1, 0]);
    }
}
