//! DAG generators, substituting for the Citation dataset of Exp-2.
//!
//! A citation network is acyclic because papers cite older papers. The
//! [`citation_like`] generator reproduces that: node ids are
//! publication order, and each edge goes from a newer node to a
//! strictly older node, with a recency bias (papers mostly cite recent
//! work) and a popularity bias (well-cited papers attract more
//! citations). [`layered`] gives finer control over depth for the
//! diameter sweeps of Fig. 6(g)/(h).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A citation-like DAG with `n` nodes and about `m` edges; labels
/// uniform from `0..num_labels`. Every edge `(u, v)` satisfies
/// `u > v` (newer cites older), so the graph is acyclic by
/// construction.
pub fn citation_like(n: usize, m: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(n > 1, "need at least two nodes");
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    // Popularity pool of already-cited targets.
    let mut pool: Vec<u32> = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(1..n as u32);
        // Recency bias: max of two uniforms over [0, u) skews recent.
        let v = if !pool.is_empty() && rng.gen_bool(0.3) {
            // Popularity: re-cite a popular target if it is older than u.
            let candidate = pool[rng.gen_range(0..pool.len())];
            if candidate < u {
                candidate
            } else {
                rng.gen_range(0..u).max(rng.gen_range(0..u))
            }
        } else {
            rng.gen_range(0..u).max(rng.gen_range(0..u))
        };
        b.add_edge(NodeId(u), NodeId(v));
        pool.push(v);
    }
    b.build()
}

/// A layered DAG: `n` nodes spread over `layers` layers; each edge goes
/// from a node in layer `k` to a node in a strictly smaller layer
/// (biased to `k - 1`), so the longest path is at most `layers - 1` and
/// with high probability exactly that.
pub fn layered(n: usize, m: usize, layers: usize, num_labels: usize, seed: u64) -> Graph {
    assert!(layers >= 1 && n >= layers, "need n >= layers >= 1");
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    // Node i belongs to layer i % layers; nodes of layer k are
    // { k, k + layers, k + 2*layers, ... }.
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    // A single layer admits no edges (every edge must descend a
    // layer): return the edgeless graph instead of searching forever
    // for a source above layer 0.
    if layers == 1 {
        return b.build();
    }
    let layer_of = |v: u32| (v as usize) % layers;
    let nodes_in_layer = |k: usize| -> u32 { (n - k).div_ceil(layers) as u32 };
    let pick_in_layer = |k: usize, rng: &mut SmallRng| -> u32 {
        let count = nodes_in_layer(k);
        (rng.gen_range(0..count) as usize * layers + k) as u32
    };
    for _ in 0..m {
        // Source in layer >= 1.
        let u = loop {
            let u = rng.gen_range(0..n as u32);
            if layer_of(u) >= 1 {
                break u;
            }
        };
        let ul = layer_of(u);
        // Target mostly in the adjacent layer below, sometimes deeper.
        let tl = if ul == 1 || rng.gen_bool(0.8) {
            ul - 1
        } else {
            rng.gen_range(0..ul - 1)
        };
        let v = pick_in_layer(tl, &mut rng);
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// A community-structured citation-like DAG: node `v` belongs to
/// community `v % k`; each citation stays inside its community with
/// probability `1 - cross_fraction`. Edges always point to strictly
/// older nodes, so the result is a DAG.
///
/// As with [`crate::generate::random::community`], assigning community
/// `i` to site `i` gives direct control over the `|Vf|/|V|` ratio —
/// how the bench harness realizes the `|Vf|` sweeps of Fig. 6(k)/(l).
pub fn citation_like_community(
    n: usize,
    m: usize,
    k: usize,
    cross_fraction: f64,
    num_labels: usize,
    seed: u64,
) -> Graph {
    assert!(n > k && k > 0, "need n > k >= 1");
    assert!((0.0..=1.0).contains(&cross_fraction), "fraction in [0,1]");
    assert!(num_labels > 0, "need at least one label");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    for _ in 0..m {
        let u = rng.gen_range(k as u32..n as u32); // old enough to have
                                                   // a same-community elder
        let c = u as usize % k;
        let v = if rng.gen_bool(cross_fraction) {
            rng.gen_range(0..u)
        } else {
            // Random same-community node older than u: members of c
            // below u are {c, c+k, ..., u-k}.
            let older = (u as usize - c) / k; // count of such members
            (rng.gen_range(0..older) * k + c) as u32
        };
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{graph_is_dag, graph_topo_ranks};

    #[test]
    fn citation_like_is_dag() {
        let g = citation_like(1_000, 2_200, 15, 11);
        assert!(graph_is_dag(&g));
        assert_eq!(g.node_count(), 1_000);
        assert!(g.edge_count() > 1_800);
    }

    #[test]
    fn citation_edges_point_backwards() {
        let g = citation_like(500, 1_500, 10, 5);
        for (u, v) in g.edges() {
            assert!(u.0 > v.0, "edge ({u:?},{v:?}) not backwards");
        }
    }

    #[test]
    fn citation_deterministic() {
        assert_eq!(citation_like(100, 300, 5, 2), citation_like(100, 300, 5, 2));
    }

    #[test]
    fn layered_is_dag_with_bounded_depth() {
        let layers = 6;
        let g = layered(600, 2_000, layers, 15, 3);
        assert!(graph_is_dag(&g));
        let ranks = graph_topo_ranks(&g).unwrap();
        let depth = ranks.into_iter().max().unwrap();
        assert!((depth as usize) < layers);
        // With 2000 edges biased to adjacent layers the full depth is
        // reached with overwhelming probability.
        assert_eq!(depth as usize, layers - 1);
    }

    #[test]
    fn layered_respects_layer_order() {
        let layers = 4;
        let g = layered(100, 300, layers, 5, 9);
        for (u, v) in g.edges() {
            assert!((u.0 as usize) % layers > (v.0 as usize) % layers);
        }
    }

    #[test]
    fn single_layer_graph_has_no_edges() {
        let g = layered(10, 50, 1, 3, 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn citation_community_is_dag_with_controlled_crossing() {
        let n = 4_000;
        let k = 8;
        let g = citation_like_community(n, 12_000, k, 0.2, 15, 7);
        assert!(graph_is_dag(&g));
        for (u, v) in g.edges() {
            assert!(u.0 > v.0);
        }
        let crossing = g
            .edges()
            .filter(|&(u, v)| u.index() % k != v.index() % k)
            .count();
        let ratio = crossing as f64 / g.edge_count() as f64;
        let expected = 0.2 * (k as f64 - 1.0) / k as f64;
        assert!(
            (ratio - expected).abs() < 0.04,
            "crossing ratio {ratio} vs expected {expected}"
        );
    }
}
