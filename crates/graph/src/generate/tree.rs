//! Random rooted trees for the `dGPMt` experiments (Corollary 4).
//!
//! Edges are directed parent → child, matching distributed XML
//! document trees (the paper extends the XPath bounds of \[10\] to graph
//! simulation on trees). Node 0 is always the root.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random recursive tree: node `i > 0` attaches to a uniform random
/// parent among `0..i`. Expected depth is `O(log n)`.
pub fn random_tree(n: usize, num_labels: usize, seed: u64) -> Graph {
    random_tree_with_chain_bias(n, num_labels, 0.0, seed)
}

/// A random tree where node `i` attaches to node `i - 1` with
/// probability `chain_bias` (producing deeper trees) and to a uniform
/// random earlier node otherwise. `chain_bias = 1.0` yields a path.
pub fn random_tree_with_chain_bias(
    n: usize,
    num_labels: usize,
    chain_bias: f64,
    seed: u64,
) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(num_labels > 0, "need at least one label");
    assert!((0.0..=1.0).contains(&chain_bias), "bias must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels) as u16));
    }
    for i in 1..n as u32 {
        let parent = if i == 1 || rng.gen_bool(chain_bias) {
            i - 1
        } else {
            rng.gen_range(0..i)
        };
        b.add_edge(NodeId(parent), NodeId(i));
    }
    b.build()
}

/// Checks the tree invariant: node 0 has in-degree 0 and every other
/// node has in-degree exactly 1.
pub fn is_rooted_tree(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return false;
    }
    if g.in_degree(NodeId(0)) != 0 {
        return false;
    }
    (1..g.node_count() as u32).all(|v| g.in_degree(NodeId(v)) == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::graph_is_dag;

    #[test]
    fn tree_invariants() {
        let g = random_tree(500, 15, 21);
        assert_eq!(g.node_count(), 500);
        assert_eq!(g.edge_count(), 499);
        assert!(is_rooted_tree(&g));
        assert!(graph_is_dag(&g));
    }

    #[test]
    fn chain_bias_one_is_a_path() {
        let g = random_tree_with_chain_bias(50, 3, 1.0, 0);
        for v in 0..49u32 {
            assert_eq!(g.successors(NodeId(v)), &[NodeId(v + 1)]);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_tree(100, 5, 4), random_tree(100, 5, 4));
    }

    #[test]
    fn single_node_tree() {
        let g = random_tree(1, 2, 0);
        assert!(is_rooted_tree(&g));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn is_rooted_tree_rejects_non_trees() {
        use crate::graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2)); // two parents
        assert!(!is_rooted_tree(&b.build()));

        let mut b = GraphBuilder::new();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(1), NodeId(0)); // root has a parent
        assert!(!is_rooted_tree(&b.build()));
    }
}
