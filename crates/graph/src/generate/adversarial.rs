//! The adversarial families of the impossibility theorem (Fig. 2).
//!
//! Theorem 1 is proved on the pattern `Q0` (the 2-cycle A ⇄ B) and the
//! graph `G0`: a ring `A1 → B1 → A2 → B2 → ... → An → Bn → A1` where
//! fragment `Gi` holds the single edge `(Ai, Bi)` plus the virtual node
//! `A(i+1)`. Deciding whether `G0` matches `Q0` requires information to
//! travel around the whole ring, so no algorithm can answer in time (or
//! shipment) independent of `n` even though `|Q0|` and every `|Fi|` are
//! constants.
//!
//! * [`q0`] — the 2-cycle pattern;
//! * [`cycle_graph`] — the intact ring (`Q0(G0) = true`, every node
//!   matches);
//! * [`broken_cycle_graph`] — the ring with the closing edge removed
//!   (`Q0(G) = false`; falsification must propagate around the whole
//!   ring, which is what the response-time experiment measures);
//! * [`per_pair_assignment`] — one `(Ai, Bi)` pair per site (constant
//!   `|Fm|`, `|F| = n`, the Theorem 1(1) setup);
//! * [`bipartite_assignment`] — all A nodes on site 0, all B nodes on
//!   site 1 (constant `|F| = 2`, the Theorem 1(2) setup where shipment
//!   must grow with `n`).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use crate::pattern::{Pattern, PatternBuilder};

/// Label of the A nodes.
pub const LABEL_A: Label = Label(0);
/// Label of the B nodes.
pub const LABEL_B: Label = Label(1);

/// The Boolean pattern `Q0`: `A → B` and `B → A`.
pub fn q0() -> Pattern {
    let mut b = PatternBuilder::new();
    let a = b.add_node(LABEL_A);
    let bb = b.add_node(LABEL_B);
    b.add_edge(a, bb);
    b.add_edge(bb, a);
    b.build()
}

/// Node id of `Ai` (1-based `i`) in the ring graphs.
pub fn a_node(i: usize) -> NodeId {
    NodeId((2 * (i - 1)) as u32)
}

/// Node id of `Bi` (1-based `i`) in the ring graphs.
pub fn b_node(i: usize) -> NodeId {
    NodeId((2 * (i - 1) + 1) as u32)
}

fn ring(n: usize, close: bool) -> Graph {
    assert!(n >= 1, "need at least one pair");
    let mut gb = GraphBuilder::with_capacity(2 * n, 2 * n);
    for _ in 0..n {
        gb.add_node(LABEL_A);
        gb.add_node(LABEL_B);
    }
    for i in 1..=n {
        gb.add_edge(a_node(i), b_node(i));
        if i < n {
            gb.add_edge(b_node(i), a_node(i + 1));
        }
    }
    if close {
        gb.add_edge(b_node(n), a_node(1));
    }
    gb.build()
}

/// The intact ring `G0` with `n` A/B pairs; matches `Q0` everywhere.
pub fn cycle_graph(n: usize) -> Graph {
    ring(n, true)
}

/// The ring with the closing edge `(Bn, A1)` removed; `Q0` has no
/// match, and the falsification starting at `Bn` must propagate
/// through all `2n` nodes.
pub fn broken_cycle_graph(n: usize) -> Graph {
    ring(n, false)
}

/// Site assignment placing pair `(Ai, Bi)` on site `i - 1`
/// (`|F| = n`, `|Fm|` constant — the Theorem 1(1) fragmentation).
pub fn per_pair_assignment(n: usize) -> Vec<usize> {
    (0..n).flat_map(|i| [i, i]).collect()
}

/// Site assignment placing every A node on site 0 and every B node on
/// site 1 (`|F| = 2` — the Theorem 1(2) fragmentation where every ring
/// edge crosses sites).
pub fn bipartite_assignment(n: usize) -> Vec<usize> {
    (0..n).flat_map(|_| [0, 1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q0_shape() {
        let q = q0();
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 2);
        assert!(!crate::algo::pattern_is_dag(&q));
    }

    #[test]
    fn cycle_graph_shape() {
        let g = cycle_graph(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
        // Ring: every node has out-degree and in-degree 1.
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
        assert!(g.has_edge(b_node(4), a_node(1)));
    }

    #[test]
    fn broken_cycle_misses_closing_edge() {
        let g = broken_cycle_graph(4);
        assert_eq!(g.edge_count(), 7);
        assert!(!g.has_edge(b_node(4), a_node(1)));
        assert_eq!(g.out_degree(b_node(4)), 0);
    }

    #[test]
    fn labels_alternate() {
        let g = cycle_graph(3);
        for i in 1..=3 {
            assert_eq!(g.label(a_node(i)), LABEL_A);
            assert_eq!(g.label(b_node(i)), LABEL_B);
        }
    }

    #[test]
    fn assignments() {
        assert_eq!(per_pair_assignment(3), vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(bipartite_assignment(3), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn single_pair_ring_is_two_cycle() {
        let g = cycle_graph(1);
        assert!(g.has_edge(a_node(1), b_node(1)));
        assert!(g.has_edge(b_node(1), a_node(1)));
    }
}
