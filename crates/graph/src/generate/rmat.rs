//! R-MAT (recursive matrix) graph generator.
//!
//! The standard synthetic model for power-law graphs in the systems
//! literature (Chakrabarti, Zhan & Faloutsos, SDM 2004; the Graph500
//! generator): each edge picks its endpoints by recursively descending
//! into one of the four quadrants of the adjacency matrix with
//! probabilities `(a, b, c, d)`. Skewed probabilities produce heavy
//! hubs and community-like self-similarity — a second scale-free
//! family next to [`super::random::web_like`]'s preferential
//! attachment, useful for checking that the measured trends are not an
//! artifact of one generator.
//!
//! Duplicate edges and self-loops produced by the recursion are kept
//! for [`rmat_multi`] statistics but removed by [`Graph`]'s builder,
//! so the final edge count can land slightly below the request (as in
//! Graph500).

use crate::graph::{Graph, GraphBuilder};
use crate::label::Label;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the R-MAT recursion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left (source-low, target-low).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters `(0.57, 0.19, 0.19)`.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// A flat `(0.25, 0.25, 0.25)` setting — degenerates to a uniform
    /// random graph (useful as a control).
    pub fn uniform() -> Self {
        RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        }
    }

    /// The implied bottom-right probability `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(
            self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && self.d() > 0.0,
            "R-MAT quadrant probabilities must be positive and sum below 1: {self:?}"
        );
    }
}

/// One R-MAT endpoint pair over a `2^scale × 2^scale` matrix.
fn sample_edge(scale: u32, p: &RmatParams, rng: &mut SmallRng) -> (u64, u64) {
    let mut src = 0u64;
    let mut dst = 0u64;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: both bits 0
        } else if r < p.a + p.b {
            dst |= 1;
        } else if r < p.a + p.b + p.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// Generates an R-MAT graph with `2^scale` vertex slots, `m` sampled
/// edges and labels drawn uniformly from `num_labels`. Vertex ids are
/// *not* compacted (isolated slots keep the degree distribution
/// faithful to the model, as in Graph500).
pub fn rmat(scale: u32, m: usize, num_labels: usize, params: RmatParams, seed: u64) -> Graph {
    params.validate();
    assert!(scale <= 30, "R-MAT scale {scale} too large");
    assert!(num_labels > 0, "need at least one label");
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(Label(rng.gen_range(0..num_labels as u16)));
    }
    for _ in 0..m {
        let (src, dst) = sample_edge(scale, &params, &mut rng);
        b.add_edge(
            crate::graph::NodeId(src as u32),
            crate::graph::NodeId(dst as u32),
        );
    }
    b.build()
}

/// Like [`rmat`], but also reports how many of the `m` samples were
/// duplicates or repeats removed by deduplication —
/// `(graph, duplicates_removed)`.
pub fn rmat_multi(
    scale: u32,
    m: usize,
    num_labels: usize,
    params: RmatParams,
    seed: u64,
) -> (Graph, usize) {
    let g = rmat(scale, m, num_labels, params, seed);
    let dups = m - g.edge_count();
    (g, dups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_and_sized() {
        let g1 = rmat(10, 5_000, 8, RmatParams::graph500(), 7);
        let g2 = rmat(10, 5_000, 8, RmatParams::graph500(), 7);
        assert_eq!(g1, g2);
        assert_eq!(g1.node_count(), 1 << 10);
        assert!(g1.edge_count() <= 5_000);
        assert!(g1.edge_count() > 4_000, "{} edges", g1.edge_count());
        let g3 = rmat(10, 5_000, 8, RmatParams::graph500(), 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn graph500_params_skew_degrees() {
        let skewed = rmat(11, 16_000, 4, RmatParams::graph500(), 3);
        let flat = rmat(11, 16_000, 4, RmatParams::uniform(), 3);
        let s_skew = GraphStats::top1pct_edge_share(&skewed);
        let s_flat = GraphStats::top1pct_edge_share(&flat);
        assert!(
            s_skew > 2.0 * s_flat,
            "graph500 share {s_skew:.3} vs uniform {s_flat:.3}"
        );
    }

    #[test]
    fn uniform_params_balance_endpoints() {
        let g = rmat(10, 8_000, 4, RmatParams::uniform(), 5);
        // Low and high halves of the id space should carry comparable
        // out-degree mass.
        let n = g.node_count();
        let low: usize = g.nodes().take(n / 2).map(|v| g.out_degree(v)).sum();
        let high: usize = g.edge_count() - low;
        let ratio = low as f64 / high.max(1) as f64;
        assert!((0.8..1.25).contains(&ratio), "low/high = {ratio:.3}");
    }

    #[test]
    fn dedup_counted() {
        let (g, dups) = rmat_multi(8, 10_000, 4, RmatParams::graph500(), 1);
        assert_eq!(g.edge_count() + dups, 10_000);
        assert!(dups > 0, "10K samples into a 256-node matrix must collide");
    }

    #[test]
    fn labels_cover_alphabet() {
        let g = rmat(10, 2_000, 5, RmatParams::graph500(), 2);
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.labels, 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn degenerate_params_rejected() {
        let _ = rmat(
            5,
            10,
            2,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.2,
            },
            0,
        );
    }

    #[test]
    fn simulation_runs_on_rmat_workloads() {
        // The generator plugs into the whole stack: distributed
        // engines agree with the oracle on R-MAT inputs too.
        let g = rmat(9, 2_000, 4, RmatParams::graph500(), 11);
        let q = crate::generate::patterns::random_cyclic(4, 7, 4, 11);
        // Only a structural sanity check lives here (dgs-sim depends
        // on dgs-graph, not vice versa); the cross-stack agreement is
        // covered by the workspace integration tests.
        assert!(g
            .edges()
            .all(|(u, v)| u.index() < g.node_count() && v.index() < g.node_count()));
        assert_eq!(q.node_count(), 4);
    }
}
