//! Descriptive statistics of data graphs — the numbers a workload
//! section reports (degree distribution, label histogram, structure
//! class) and the `dgsq stats` command prints.

use crate::algo::{graph_is_dag, strongly_connected_components};
use crate::generate::tree::is_rooted_tree;
use crate::graph::{Graph, NodeId};
use std::fmt;

/// Summary statistics of a [`Graph`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Distinct labels in use.
    pub labels: usize,
    /// Per-label node counts, indexed by label id (dense up to the
    /// label bound).
    pub label_histogram: Vec<usize>,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Nodes with no out-edges.
    pub sinks: usize,
    /// Nodes with no in-edges.
    pub sources: usize,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// Size of the largest strongly connected component.
    pub largest_scc: usize,
    /// Whether the graph is a DAG (every SCC trivial and no
    /// self-loops).
    pub is_dag: bool,
    /// Whether the graph is a rooted tree.
    pub is_tree: bool,
}

impl GraphStats {
    /// Computes all statistics in `O(|V| + |E|)` (one Tarjan pass plus
    /// degree scans).
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let mut label_histogram = vec![0usize; g.label_bound()];
        let mut max_out = 0;
        let mut max_in = 0;
        let mut sinks = 0;
        let mut sources = 0;
        for v in g.nodes() {
            label_histogram[g.label(v).index()] += 1;
            let (o, i) = (g.out_degree(v), g.in_degree(v));
            max_out = max_out.max(o);
            max_in = max_in.max(i);
            sinks += usize::from(o == 0);
            sources += usize::from(i == 0);
        }
        let (comp_of, scc_count) = strongly_connected_components(g);
        let mut comp_sizes = vec![0usize; scc_count];
        for &c in &comp_of {
            comp_sizes[c as usize] += 1;
        }
        GraphStats {
            nodes: n,
            edges: g.edge_count(),
            labels: label_histogram.iter().filter(|&&c| c > 0).count(),
            label_histogram,
            max_out_degree: max_out,
            max_in_degree: max_in,
            sinks,
            sources,
            scc_count,
            largest_scc: comp_sizes.iter().copied().max().unwrap_or(0),
            is_dag: graph_is_dag(g),
            is_tree: is_rooted_tree(g),
        }
    }

    /// Mean out-degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.nodes.max(1) as f64
    }

    /// The out-degree distribution as `(degree, node count)` pairs,
    /// ascending, skipping empty buckets.
    pub fn out_degree_distribution(g: &Graph) -> Vec<(usize, usize)> {
        let mut buckets = std::collections::BTreeMap::new();
        for v in g.nodes() {
            *buckets.entry(g.out_degree(v)).or_insert(0usize) += 1;
        }
        buckets.into_iter().collect()
    }

    /// A skew measure for degree distributions: the fraction of all
    /// edges carried by the top 1% highest-out-degree nodes (≈1% for
    /// uniform graphs, far higher for power-law graphs).
    pub fn top1pct_edge_share(g: &Graph) -> f64 {
        if g.edge_count() == 0 {
            return 0.0;
        }
        let mut degrees: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = (degrees.len() / 100).max(1);
        degrees[..top].iter().sum::<usize>() as f64 / g.edge_count() as f64
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "|V| = {}  |E| = {}  |G| = {}",
            self.nodes,
            self.edges,
            self.nodes + self.edges
        )?;
        writeln!(
            f,
            "avg out-degree = {:.2}  max out = {}  max in = {}  sources = {}  sinks = {}",
            self.avg_degree(),
            self.max_out_degree,
            self.max_in_degree,
            self.sources,
            self.sinks
        )?;
        writeln!(
            f,
            "SCCs = {} (largest {})  DAG = {}  tree = {}",
            self.scc_count, self.largest_scc, self.is_dag, self.is_tree
        )?;
        let hist: Vec<String> = self
            .label_histogram
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, c)| format!("{l}:{c}"))
            .collect();
        write!(f, "labels ({}): {}", self.labels, hist.join(" "))
    }
}

/// Reachability sample: the mean number of nodes reachable from
/// `samples` seeded-random start nodes (a cheap proxy for how far
/// simulation falsifications can cascade).
pub fn mean_reachable(g: &Graph, samples: usize, seed: u64) -> f64 {
    if g.node_count() == 0 || samples == 0 {
        return 0.0;
    }
    let mut total = 0usize;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for _ in 0..samples {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let start = NodeId((state % g.node_count() as u64) as u32);
        total += crate::algo::bfs_distances(g, start)
            .iter()
            .filter(|&&d| d != u32::MAX)
            .count();
    }
    total as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{dag, random, tree};
    use crate::graph::GraphBuilder;
    use crate::label::Label;

    #[test]
    fn diamond_stats() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(1));
        let n2 = b.add_node(Label(1));
        let n3 = b.add_node(Label(2));
        b.add_edge(n0, n1);
        b.add_edge(n0, n2);
        b.add_edge(n1, n3);
        b.add_edge(n2, n3);
        let s = GraphStats::compute(&b.build());
        assert_eq!((s.nodes, s.edges, s.labels), (4, 4, 3));
        assert_eq!(s.label_histogram, vec![1, 2, 1]);
        assert_eq!((s.sources, s.sinks), (1, 1));
        assert_eq!((s.max_out_degree, s.max_in_degree), (2, 2));
        assert_eq!((s.scc_count, s.largest_scc), (4, 1));
        assert!(s.is_dag && !s.is_tree);
        assert!((s.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classifies_families() {
        let t = tree::random_tree(200, 4, 1);
        let st = GraphStats::compute(&t);
        assert!(st.is_tree && st.is_dag);
        assert_eq!(st.edges, 199);

        let d = dag::citation_like(300, 800, 5, 1);
        let sd = GraphStats::compute(&d);
        assert!(sd.is_dag && !sd.is_tree);
        assert_eq!(sd.scc_count, sd.nodes);

        let c = random::community(300, 1_500, 4, 0.1, 5, 1);
        let sc = GraphStats::compute(&c);
        assert!(!sc.is_dag, "dense random graphs have cycles");
        assert!(sc.largest_scc > 1);
    }

    #[test]
    fn degree_distribution_sums_to_nodes_and_edges() {
        let g = random::web_like(500, 2_500, 5, 2);
        let dist = GraphStats::out_degree_distribution(&g);
        assert_eq!(dist.iter().map(|&(_, c)| c).sum::<usize>(), 500);
        assert_eq!(
            dist.iter().map(|&(d, c)| d * c).sum::<usize>(),
            g.edge_count()
        );
    }

    #[test]
    fn power_law_skews_harder_than_uniform() {
        let uniform = random::uniform(2_000, 10_000, 5, 3);
        let web = random::web_like(2_000, 10_000, 5, 3);
        let su = GraphStats::top1pct_edge_share(&uniform);
        let sw = GraphStats::top1pct_edge_share(&web);
        // web_like's preferential attachment is mildly skewed (~1.7×
        // the uniform share); the heavy-tail generator is R-MAT, which
        // asserts a stronger margin in its own tests.
        assert!(sw > 1.4 * su, "web {sw:.3} should out-skew uniform {su:.3}");
    }

    #[test]
    fn reachability_sample_bounds() {
        let g = random::uniform(200, 800, 4, 4);
        let r = mean_reachable(&g, 8, 9);
        assert!((1.0..=200.0).contains(&r));
        // A path: reachable set from a random node averages about half
        // the path, never more than n.
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..50).map(|_| b.add_node(Label(0))).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let path = b.build();
        let rp = mean_reachable(&path, 16, 1);
        assert!((1.0..=50.0).contains(&rp));
    }

    #[test]
    fn display_is_complete() {
        let g = random::uniform(50, 150, 3, 5);
        let s = GraphStats::compute(&g);
        let text = s.to_string();
        assert!(text.contains("|V| = 50"));
        assert!(text.contains("SCCs"));
        assert!(text.contains("labels (3)"));
    }

    #[test]
    fn empty_graph() {
        let s = GraphStats::compute(&GraphBuilder::new().build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.scc_count, 0);
        assert_eq!(
            GraphStats::top1pct_edge_share(&GraphBuilder::new().build()),
            0.0
        );
    }
}
