//! Node labels and label interning.
//!
//! Data-graph nodes and pattern nodes carry labels from a finite
//! alphabet `Σ` (§2.1 of the paper: "L(·) specifies e.g., interests,
//! social roles, ratings"). Labels are interned to dense `u16` ids so
//! that label-equality checks — the hottest comparison in simulation —
//! are a single integer compare, and per-label candidate indexes can be
//! dense arrays.

use std::collections::HashMap;
use std::fmt;

/// An interned node label.
///
/// `Label` is a dense id into a [`LabelInterner`]; two labels are equal
/// iff their underlying strings are equal (within one interner).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u16);

impl Label {
    /// The raw dense index of this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A string ↔ dense-id interner for node labels.
///
/// ```
/// use dgs_graph::label::LabelInterner;
/// let mut li = LabelInterner::new();
/// let beer = li.intern("beer");
/// let soccer = li.intern("soccer");
/// assert_ne!(beer, soccer);
/// assert_eq!(li.intern("beer"), beer);
/// assert_eq!(li.name(beer), "beer");
/// assert_eq!(li.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    names: Vec<String>,
    by_name: HashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner pre-populated with `n` anonymous labels
    /// named `"l0" .. "l{n-1}"` — convenient for synthetic alphabets
    /// (the paper's synthetic generator uses `|Σ| = 15`).
    pub fn with_anonymous(n: usize) -> Self {
        let mut li = Self::new();
        for i in 0..n {
            li.intern(&format!("l{i}"));
        }
        li
    }

    /// Interns `name`, returning the existing label if already present.
    ///
    /// # Panics
    /// Panics if more than `u16::MAX` distinct labels are interned.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let id = u16::try_from(self.names.len()).expect("label alphabet overflow (> 65535 labels)");
        let l = Label(id);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), l);
        l
    }

    /// Looks up a label by name without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// The string name of `label`.
    ///
    /// # Panics
    /// Panics if `label` was not produced by this interner.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all labels in dense-id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Label(i as u16), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut li = LabelInterner::new();
        let a = li.intern("a");
        let b = li.intern("b");
        assert_eq!(li.intern("a"), a);
        assert_eq!(li.intern("b"), b);
        assert_eq!(li.len(), 2);
    }

    #[test]
    fn anonymous_alphabet() {
        let li = LabelInterner::with_anonymous(15);
        assert_eq!(li.len(), 15);
        assert_eq!(li.get("l0"), Some(Label(0)));
        assert_eq!(li.get("l14"), Some(Label(14)));
        assert_eq!(li.get("l15"), None);
    }

    #[test]
    fn name_roundtrip() {
        let mut li = LabelInterner::new();
        let x = li.intern("soccer");
        assert_eq!(li.name(x), "soccer");
        assert_eq!(li.get("soccer"), Some(x));
    }

    #[test]
    fn iter_in_dense_order() {
        let mut li = LabelInterner::new();
        li.intern("x");
        li.intern("y");
        let collected: Vec<_> = li.iter().map(|(l, s)| (l.0, s.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn label_index_and_display() {
        let l = Label(7);
        assert_eq!(l.index(), 7);
        assert_eq!(format!("{l}"), "7");
        assert_eq!(format!("{l:?}"), "L7");
    }
}
