//! Plain-text graph and pattern serialization.
//!
//! A deliberately simple line-oriented format (no external
//! serialization crates needed):
//!
//! ```text
//! # optional comments
//! graph <node_count> <edge_count>
//! n <node_id> <label>
//! e <src> <dst>
//! ```
//!
//! Patterns use the header `pattern` instead of `graph`. The format is
//! used by the examples and by the bench harness to snapshot generated
//! workloads.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use crate::pattern::{Pattern, PatternBuilder, QNodeId};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors produced by the text readers.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the input, with a line number.
    Malformed { line: usize, message: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "malformed input at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Writes `g` in the text format.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "graph {} {}", g.node_count(), g.edge_count()).unwrap();
    for v in g.nodes() {
        writeln!(buf, "n {} {}", v.0, g.label(v).0).unwrap();
    }
    for (u, v) in g.edges() {
        writeln!(buf, "e {} {}", u.0, v.0).unwrap();
    }
    w.write_all(buf.as_bytes())
}

/// Writes `q` in the text format.
pub fn write_pattern<W: Write>(q: &Pattern, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "pattern {} {}", q.node_count(), q.edge_count()).unwrap();
    for u in q.nodes() {
        writeln!(buf, "n {} {}", u.0, q.label(u).0).unwrap();
    }
    for (u, c) in q.edges() {
        writeln!(buf, "e {} {}", u.0, c.0).unwrap();
    }
    w.write_all(buf.as_bytes())
}

struct Parsed {
    header: String,
    nodes: Vec<(u32, u16)>,
    edges: Vec<(u32, u32)>,
    declared_nodes: usize,
    declared_edges: usize,
}

fn parse<R: Read>(r: R) -> Result<Parsed, ParseError> {
    let reader = BufReader::new(r);
    let mut header: Option<(String, usize, usize)> = None;
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().unwrap();
        match tag {
            "graph" | "pattern" => {
                if header.is_some() {
                    return Err(malformed(lineno, "duplicate header"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad node count"))?;
                let m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge count"))?;
                header = Some((tag.to_owned(), n, m));
            }
            "n" => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad node id"))?;
                let label: u16 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad label"))?;
                nodes.push((id, label));
            }
            "e" => {
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge source"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge target"))?;
                edges.push((u, v));
            }
            other => return Err(malformed(lineno, format!("unknown tag {other:?}"))),
        }
    }
    let (header, declared_nodes, declared_edges) =
        header.ok_or_else(|| malformed(0, "missing header line"))?;
    if nodes.len() != declared_nodes {
        return Err(malformed(
            0,
            format!("declared {declared_nodes} nodes, found {}", nodes.len()),
        ));
    }
    Ok(Parsed {
        header,
        nodes,
        edges,
        declared_nodes,
        declared_edges,
    })
}

/// Reads a graph written by [`write_graph`].
pub fn read_graph<R: Read>(r: R) -> Result<Graph, ParseError> {
    let p = parse(r)?;
    if p.header != "graph" {
        return Err(malformed(
            1,
            format!("expected graph header, got {:?}", p.header),
        ));
    }
    let mut labels = vec![Label(0); p.declared_nodes];
    let mut seen = vec![false; p.declared_nodes];
    for (id, l) in p.nodes {
        let idx = id as usize;
        if idx >= p.declared_nodes {
            return Err(malformed(0, format!("node id {id} out of range")));
        }
        labels[idx] = Label(l);
        seen[idx] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(malformed(0, "not all node ids declared"));
    }
    let mut b = GraphBuilder::with_capacity(p.declared_nodes, p.declared_edges);
    for l in labels {
        b.add_node(l);
    }
    for (u, v) in p.edges {
        if u as usize >= p.declared_nodes || v as usize >= p.declared_nodes {
            return Err(malformed(0, format!("edge ({u}, {v}) out of range")));
        }
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok(b.build())
}

/// Reads a pattern written by [`write_pattern`].
pub fn read_pattern<R: Read>(r: R) -> Result<Pattern, ParseError> {
    let p = parse(r)?;
    if p.header != "pattern" {
        return Err(malformed(
            1,
            format!("expected pattern header, got {:?}", p.header),
        ));
    }
    let mut labels = vec![Label(0); p.declared_nodes];
    let mut seen = vec![false; p.declared_nodes];
    for (id, l) in p.nodes {
        let idx = id as usize;
        if idx >= p.declared_nodes {
            return Err(malformed(0, format!("node id {id} out of range")));
        }
        labels[idx] = Label(l);
        seen[idx] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(malformed(0, "not all node ids declared"));
    }
    let mut b = PatternBuilder::new();
    for l in labels {
        b.add_node(l);
    }
    for (u, v) in p.edges {
        if u as usize >= p.declared_nodes || v as usize >= p.declared_nodes {
            return Err(malformed(0, format!("edge ({u}, {v}) out of range")));
        }
        b.add_edge(QNodeId(u as u16), QNodeId(v as u16));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::pattern::PatternBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Label(3));
        let c = b.add_node(Label(7));
        let d = b.add_node(Label(3));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(d, a);
        b.build()
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn pattern_roundtrip() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        b.add_edge(c, a);
        let q = b.build();
        let mut buf = Vec::new();
        write_pattern(&q, &mut buf).unwrap();
        let q2 = read_pattern(&buf[..]).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ngraph 2 1\nn 0 5\nn 1 6\n# mid comment\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.label(NodeId(0)), Label(5));
        assert_eq!(g.successors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(read_graph("n 0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn wrong_header_rejected() {
        assert!(read_graph("pattern 1 0\nn 0 0\n".as_bytes()).is_err());
        assert!(read_pattern("graph 1 0\nn 0 0\n".as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let text = "graph 1 1\nn 0 0\ne 0 5\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn undeclared_node_rejected() {
        let text = "graph 2 0\nn 0 0\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = "graph 1 0\nn 0 0\nz 1 2\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }
}
