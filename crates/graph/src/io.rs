//! Graph and pattern serialization: a line-oriented text format and a
//! compact binary format.
//!
//! The **text** format is deliberately simple (no external
//! serialization crates needed):
//!
//! ```text
//! # optional comments
//! graph <node_count> <edge_count>
//! n <node_id> <label>
//! e <src> <dst>
//! ```
//!
//! Patterns use the header `pattern` instead of `graph`. The format is
//! used by the examples and by the bench harness to snapshot generated
//! workloads.
//!
//! The **binary** format ([`write_graph_binary`] /
//! [`read_graph_binary`] and the pattern twins) is what the serving
//! daemon cold-loads large graphs from — an RMAT graph parses an order
//! of magnitude faster than from text. Layout (all integers LEB128
//! varints unless noted):
//!
//! ```text
//! magic "DGSB" | version u8 = 1 | kind u8 ('G' graph, 'Q' pattern)
//! node_count | edge_count
//! label × node_count
//! per node v in id order: out_degree(v), then its sorted successors
//!     as a first absolute id followed by gaps to the previous id
//! ```
//!
//! [`read_graph_auto`] / [`read_pattern_auto`] sniff the magic and
//! accept either format. Corrupt or truncated binary input yields a
//! typed [`ParseError`], never a panic.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use crate::pattern::{Pattern, PatternBuilder, QNodeId};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Magic prefix of the binary graph/pattern format.
pub const BINARY_MAGIC: [u8; 4] = *b"DGSB";
/// Current version byte of the binary format.
pub const BINARY_VERSION: u8 = 1;
const KIND_GRAPH: u8 = b'G';
const KIND_PATTERN: u8 = b'Q';

/// Errors produced by the text and binary readers.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with text input, with a line number.
    Malformed { line: usize, message: String },
    /// Structural problem with binary input (bad magic, unsupported
    /// version, truncation, out-of-range ids, overflowing counts).
    Corrupt { message: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "malformed input at line {line}: {message}")
            }
            ParseError::Corrupt { message } => {
                write!(f, "corrupt binary input: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Writes `g` in the text format.
pub fn write_graph<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "graph {} {}", g.node_count(), g.edge_count()).unwrap();
    for v in g.nodes() {
        writeln!(buf, "n {} {}", v.0, g.label(v).0).unwrap();
    }
    for (u, v) in g.edges() {
        writeln!(buf, "e {} {}", u.0, v.0).unwrap();
    }
    w.write_all(buf.as_bytes())
}

/// Writes `q` in the text format.
pub fn write_pattern<W: Write>(q: &Pattern, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "pattern {} {}", q.node_count(), q.edge_count()).unwrap();
    for u in q.nodes() {
        writeln!(buf, "n {} {}", u.0, q.label(u).0).unwrap();
    }
    for (u, c) in q.edges() {
        writeln!(buf, "e {} {}", u.0, c.0).unwrap();
    }
    w.write_all(buf.as_bytes())
}

struct Parsed {
    header: String,
    nodes: Vec<(u32, u16)>,
    edges: Vec<(u32, u32)>,
    declared_nodes: usize,
    declared_edges: usize,
}

fn parse<R: Read>(r: R) -> Result<Parsed, ParseError> {
    let reader = BufReader::new(r);
    let mut header: Option<(String, usize, usize)> = None;
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().unwrap();
        match tag {
            "graph" | "pattern" => {
                if header.is_some() {
                    return Err(malformed(lineno, "duplicate header"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad node count"))?;
                let m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge count"))?;
                header = Some((tag.to_owned(), n, m));
            }
            "n" => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad node id"))?;
                let label: u16 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad label"))?;
                nodes.push((id, label));
            }
            "e" => {
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge source"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge target"))?;
                edges.push((u, v));
            }
            other => return Err(malformed(lineno, format!("unknown tag {other:?}"))),
        }
    }
    let (header, declared_nodes, declared_edges) =
        header.ok_or_else(|| malformed(0, "missing header line"))?;
    if nodes.len() != declared_nodes {
        return Err(malformed(
            0,
            format!("declared {declared_nodes} nodes, found {}", nodes.len()),
        ));
    }
    Ok(Parsed {
        header,
        nodes,
        edges,
        declared_nodes,
        declared_edges,
    })
}

/// Reads a graph written by [`write_graph`].
pub fn read_graph<R: Read>(r: R) -> Result<Graph, ParseError> {
    let p = parse(r)?;
    if p.header != "graph" {
        return Err(malformed(
            1,
            format!("expected graph header, got {:?}", p.header),
        ));
    }
    let mut labels = vec![Label(0); p.declared_nodes];
    let mut seen = vec![false; p.declared_nodes];
    for (id, l) in p.nodes {
        let idx = id as usize;
        if idx >= p.declared_nodes {
            return Err(malformed(0, format!("node id {id} out of range")));
        }
        labels[idx] = Label(l);
        seen[idx] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(malformed(0, "not all node ids declared"));
    }
    let mut b = GraphBuilder::with_capacity(p.declared_nodes, p.declared_edges);
    for l in labels {
        b.add_node(l);
    }
    for (u, v) in p.edges {
        if u as usize >= p.declared_nodes || v as usize >= p.declared_nodes {
            return Err(malformed(0, format!("edge ({u}, {v}) out of range")));
        }
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok(b.build())
}

/// Reads a pattern written by [`write_pattern`].
pub fn read_pattern<R: Read>(r: R) -> Result<Pattern, ParseError> {
    let p = parse(r)?;
    if p.header != "pattern" {
        return Err(malformed(
            1,
            format!("expected pattern header, got {:?}", p.header),
        ));
    }
    let mut labels = vec![Label(0); p.declared_nodes];
    let mut seen = vec![false; p.declared_nodes];
    for (id, l) in p.nodes {
        let idx = id as usize;
        if idx >= p.declared_nodes {
            return Err(malformed(0, format!("node id {id} out of range")));
        }
        labels[idx] = Label(l);
        seen[idx] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(malformed(0, "not all node ids declared"));
    }
    let mut b = PatternBuilder::new();
    for l in labels {
        b.add_node(l);
    }
    for (u, v) in p.edges {
        if u as usize >= p.declared_nodes || v as usize >= p.declared_nodes {
            return Err(malformed(0, format!("edge ({u}, {v}) out of range")));
        }
        b.add_edge(QNodeId(u as u16), QNodeId(v as u16));
    }
    Ok(b.build())
}

fn corrupt(message: impl Into<String>) -> ParseError {
    ParseError::Corrupt {
        message: message.into(),
    }
}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_byte<R: Read>(r: &mut R, what: &str) -> Result<u8, ParseError> {
    let mut b = [0u8; 1];
    match r.read_exact(&mut b) {
        Ok(()) => Ok(b[0]),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(corrupt(format!("truncated while reading {what}")))
        }
        Err(e) => Err(ParseError::Io(e)),
    }
}

fn read_varint<R: Read>(r: &mut R, what: &str) -> Result<u64, ParseError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(r, what)?;
        if shift == 63 && byte > 1 {
            return Err(corrupt(format!("varint overflow in {what}")));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt(format!("varint too long in {what}")));
        }
    }
}

/// Serializes node labels plus the grouped-by-source, gap-encoded
/// successor lists shared by the graph and pattern binary writers.
fn encode_binary(
    kind: u8,
    node_count: usize,
    edge_count: usize,
    labels: impl Iterator<Item = u16>,
    successors: impl Fn(usize) -> Vec<u32>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + node_count * 2 + edge_count * 2);
    buf.extend_from_slice(&BINARY_MAGIC);
    buf.push(BINARY_VERSION);
    buf.push(kind);
    write_varint(&mut buf, node_count as u64);
    write_varint(&mut buf, edge_count as u64);
    for l in labels {
        write_varint(&mut buf, u64::from(l));
    }
    for v in 0..node_count {
        let mut succ = successors(v);
        succ.sort_unstable();
        write_varint(&mut buf, succ.len() as u64);
        let mut prev = 0u32;
        for (i, &t) in succ.iter().enumerate() {
            if i == 0 {
                write_varint(&mut buf, u64::from(t));
            } else {
                write_varint(&mut buf, u64::from(t - prev));
            }
            prev = t;
        }
    }
    buf
}

/// Parsed header + payload of one binary object.
struct BinaryParsed {
    kind: u8,
    labels: Vec<u16>,
    /// Per-source successor lists (sorted; gaps already undone).
    succ: Vec<Vec<u32>>,
    edge_count: usize,
}

/// Reads a binary object after validating magic, version and kind.
/// `max_label` bounds label values (`u16` for both graphs and
/// patterns today, but patterns additionally bound node ids).
fn decode_binary<R: Read>(r: &mut R, want_kind: u8) -> Result<BinaryParsed, ParseError> {
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = read_byte(r, "magic")?;
    }
    if magic != BINARY_MAGIC {
        return Err(corrupt(format!(
            "bad magic {magic:?} (expected {BINARY_MAGIC:?})"
        )));
    }
    let version = read_byte(r, "version")?;
    if version != BINARY_VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (this reader understands {BINARY_VERSION})"
        )));
    }
    let kind = read_byte(r, "kind")?;
    if kind != want_kind {
        let name = |k| match k {
            KIND_GRAPH => "graph",
            KIND_PATTERN => "pattern",
            _ => "unknown object",
        };
        return Err(corrupt(format!(
            "expected a {}, found a {}",
            name(want_kind),
            name(kind)
        )));
    }
    let node_count = read_varint(r, "node count")?;
    let declared_edges = read_varint(r, "edge count")?;
    // Bound the counts before allocating: a corrupt header must not
    // drive an enormous allocation.
    if node_count > u64::from(u32::MAX) {
        return Err(corrupt(format!("node count {node_count} exceeds u32 ids")));
    }
    let n = node_count as usize;
    if declared_edges > node_count.saturating_mul(node_count) {
        return Err(corrupt(format!(
            "edge count {declared_edges} impossible for {n} nodes"
        )));
    }
    let mut labels = Vec::with_capacity(n.min(1 << 20));
    for v in 0..n {
        let l = read_varint(r, "label")?;
        let l = u16::try_from(l).map_err(|_| corrupt(format!("label {l} of node {v} > u16")))?;
        labels.push(l);
    }
    let mut succ = Vec::with_capacity(n.min(1 << 20));
    let mut edge_count = 0usize;
    for v in 0..n {
        let deg = read_varint(r, "out-degree")? as usize;
        if deg > n {
            return Err(corrupt(format!("node {v} declares out-degree {deg} > {n}")));
        }
        let mut targets = Vec::with_capacity(deg);
        let mut prev = 0u64;
        for i in 0..deg {
            let raw = read_varint(r, "edge target")?;
            let t = if i == 0 {
                raw
            } else {
                prev.checked_add(raw)
                    .ok_or_else(|| corrupt("edge-target gap overflows"))?
            };
            if t >= node_count {
                return Err(corrupt(format!("edge ({v}, {t}) out of range")));
            }
            prev = t;
            targets.push(t as u32);
        }
        edge_count += deg;
        succ.push(targets);
    }
    if edge_count != declared_edges as usize {
        return Err(corrupt(format!(
            "declared {declared_edges} edges, found {edge_count}"
        )));
    }
    Ok(BinaryParsed {
        kind,
        labels,
        succ,
        edge_count,
    })
}

/// Writes `g` in the binary format.
pub fn write_graph_binary<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    let buf = encode_binary(
        KIND_GRAPH,
        g.node_count(),
        g.edge_count(),
        g.labels().iter().map(|l| l.0),
        |v| g.successors(NodeId(v as u32)).iter().map(|t| t.0).collect(),
    );
    w.write_all(&buf)
}

/// Writes `q` in the binary format.
pub fn write_pattern_binary<W: Write>(q: &Pattern, mut w: W) -> io::Result<()> {
    let buf = encode_binary(
        KIND_PATTERN,
        q.node_count(),
        q.edge_count(),
        q.labels().iter().map(|l| l.0),
        |u| {
            q.children(QNodeId(u as u16))
                .iter()
                .map(|c| u32::from(c.0))
                .collect()
        },
    );
    w.write_all(&buf)
}

/// Reads a graph written by [`write_graph_binary`].
pub fn read_graph_binary<R: Read>(mut r: R) -> Result<Graph, ParseError> {
    let p = decode_binary(&mut r, KIND_GRAPH)?;
    debug_assert_eq!(p.kind, KIND_GRAPH);
    let mut b = GraphBuilder::with_capacity(p.labels.len(), p.edge_count);
    for l in &p.labels {
        b.add_node(Label(*l));
    }
    for (v, targets) in p.succ.iter().enumerate() {
        for &t in targets {
            b.add_edge(NodeId(v as u32), NodeId(t));
        }
    }
    Ok(b.build())
}

/// Reads a pattern written by [`write_pattern_binary`].
pub fn read_pattern_binary<R: Read>(mut r: R) -> Result<Pattern, ParseError> {
    let p = decode_binary(&mut r, KIND_PATTERN)?;
    debug_assert_eq!(p.kind, KIND_PATTERN);
    if p.labels.len() > usize::from(u16::MAX) {
        return Err(corrupt(format!(
            "pattern with {} nodes exceeds u16 ids",
            p.labels.len()
        )));
    }
    let mut b = PatternBuilder::new();
    for l in &p.labels {
        b.add_node(Label(*l));
    }
    for (u, targets) in p.succ.iter().enumerate() {
        for &t in targets {
            b.add_edge(QNodeId(u as u16), QNodeId(t as u16));
        }
    }
    Ok(b.build())
}

/// True when `prefix` starts a binary graph/pattern file.
pub fn looks_binary(prefix: &[u8]) -> bool {
    prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC
}

/// Reads a graph in either format, sniffing the binary magic.
pub fn read_graph_auto<R: BufRead>(mut r: R) -> Result<Graph, ParseError> {
    if looks_binary(r.fill_buf()?) {
        read_graph_binary(r)
    } else {
        read_graph(r)
    }
}

/// Reads a pattern in either format, sniffing the binary magic.
pub fn read_pattern_auto<R: BufRead>(mut r: R) -> Result<Pattern, ParseError> {
    if looks_binary(r.fill_buf()?) {
        read_pattern_binary(r)
    } else {
        read_pattern(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::pattern::PatternBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Label(3));
        let c = b.add_node(Label(7));
        let d = b.add_node(Label(3));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(d, a);
        b.build()
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn pattern_roundtrip() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        b.add_edge(c, a);
        let q = b.build();
        let mut buf = Vec::new();
        write_pattern(&q, &mut buf).unwrap();
        let q2 = read_pattern(&buf[..]).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ngraph 2 1\nn 0 5\nn 1 6\n# mid comment\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.label(NodeId(0)), Label(5));
        assert_eq!(g.successors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(read_graph("n 0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn wrong_header_rejected() {
        assert!(read_graph("pattern 1 0\nn 0 0\n".as_bytes()).is_err());
        assert!(read_pattern("graph 1 0\nn 0 0\n".as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let text = "graph 1 1\nn 0 0\ne 0 5\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn undeclared_node_rejected() {
        let text = "graph 2 0\nn 0 0\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = "graph 1 0\nn 0 0\nz 1 2\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn binary_graph_roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        assert!(looks_binary(&buf));
        let g2 = read_graph_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_pattern_roundtrip() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(9));
        let d = b.add_node(Label(4));
        b.add_edge(a, c);
        b.add_edge(c, a);
        b.add_edge(a, d);
        let q = b.build();
        let mut buf = Vec::new();
        write_pattern_binary(&q, &mut buf).unwrap();
        let q2 = read_pattern_binary(&buf[..]).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn auto_reader_accepts_both_formats() {
        let g = sample_graph();
        let mut bin = Vec::new();
        write_graph_binary(&g, &mut bin).unwrap();
        let mut text = Vec::new();
        write_graph(&g, &mut text).unwrap();
        assert_eq!(read_graph_auto(&bin[..]).unwrap(), g);
        assert_eq!(read_graph_auto(&text[..]).unwrap(), g);
    }

    #[test]
    fn binary_truncation_is_typed_error_at_every_length() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        for len in 0..buf.len() {
            let err = read_graph_binary(&buf[..len]).unwrap_err();
            assert!(
                matches!(err, ParseError::Corrupt { .. }),
                "prefix of {len} bytes: expected Corrupt, got {err:?}"
            );
        }
    }

    #[test]
    fn binary_bad_magic_version_kind_rejected() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_graph_binary(&bad[..])
            .unwrap_err()
            .to_string()
            .contains("magic"));

        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(read_graph_binary(&bad[..])
            .unwrap_err()
            .to_string()
            .contains("version"));

        // A pattern reader refuses a graph payload and vice versa.
        assert!(matches!(
            read_pattern_binary(&buf[..]).unwrap_err(),
            ParseError::Corrupt { .. }
        ));
    }

    #[test]
    fn binary_corrupt_counts_rejected_without_huge_alloc() {
        // Header declaring u64::MAX nodes must fail fast.
        let mut buf = Vec::new();
        buf.extend_from_slice(&BINARY_MAGIC);
        buf.push(BINARY_VERSION);
        buf.push(b'G');
        buf.extend_from_slice(&[0xff; 9]);
        buf.push(0x01); // node_count = huge varint
        buf.push(0x00); // edge_count = 0
        assert!(matches!(
            read_graph_binary(&buf[..]).unwrap_err(),
            ParseError::Corrupt { .. }
        ));
    }

    #[test]
    fn binary_out_of_range_edge_rejected() {
        // graph with 1 node, 1 edge pointing at node 7.
        let mut buf = Vec::new();
        buf.extend_from_slice(&BINARY_MAGIC);
        buf.push(BINARY_VERSION);
        buf.push(b'G');
        buf.push(1); // nodes
        buf.push(1); // edges
        buf.push(0); // label of node 0
        buf.push(1); // out-degree
        buf.push(7); // target 7: out of range
        let err = read_graph_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn binary_is_smaller_than_text_on_generated_graphs() {
        let g = crate::generate::random::uniform(500, 2_000, 8, 7);
        let (mut text, mut bin) = (Vec::new(), Vec::new());
        write_graph(&g, &mut text).unwrap();
        write_graph_binary(&g, &mut bin).unwrap();
        assert!(
            bin.len() * 2 < text.len(),
            "binary {} B should be well under half of text {} B",
            bin.len(),
            text.len()
        );
        assert_eq!(read_graph_binary(&bin[..]).unwrap(), g);
    }
}
