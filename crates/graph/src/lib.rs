//! # dgs-graph
//!
//! Node-labeled directed graphs, pattern queries, generators and graph
//! algorithms — the data substrate for the distributed graph simulation
//! system of Fan et al. (VLDB 2014).
//!
//! The central types are:
//!
//! * [`Graph`] — a node-labeled directed data graph `G = (V, E, L)`
//!   stored in compressed sparse row (CSR) form, with forward and
//!   reverse adjacency;
//! * [`Pattern`] — a pattern query `Q = (Vq, Eq, fv)`;
//! * [`Label`] / [`LabelInterner`] — interned node labels drawn from a
//!   finite alphabet `Σ`;
//! * [`generate`] — synthetic workload generators (web-like graphs,
//!   citation-like DAGs, random trees, social graphs, and the
//!   adversarial families of the paper's impossibility theorem);
//! * [`algo`] — Tarjan SCC, topological ranks, BFS and pattern
//!   diameter, used by the DAG algorithm `dGPMd`.

pub mod algo;
pub mod generate;
pub mod graph;
pub mod io;
pub mod label;
pub mod pattern;
pub mod stats;
pub mod transform;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use label::{Label, LabelInterner};
pub use pattern::{Pattern, PatternBuilder, QNodeId};
pub use stats::GraphStats;
