//! Topological ranks for DAGs.
//!
//! §5.1 of the paper: "The rank `r(u)` of a node `u` in a DAG `Q` is
//! defined as follows: (a) `r(u) = 0` if `u` has no child; (b)
//! otherwise `r(u) = max(r(u')) + 1` for each child `u'` of `u`."
//!
//! `dGPMd` ships Boolean variables in batches ordered by the rank of
//! their query node; rank `r(u)` variables depend only on ranks `< r`,
//! so `max_rank + 1` synchronized rounds suffice.

use crate::algo::tarjan::{PatternView, SccView};
use crate::graph::Graph;
use crate::pattern::Pattern;

/// Computes ranks by reverse-topological dynamic programming using
/// Kahn's algorithm on *out*-degrees (sinks first).
///
/// Returns `None` if the structure contains a cycle.
fn topo_ranks<V: SccView>(view: &V) -> Option<Vec<u32>> {
    let n = view.n();
    // out_deg[v] = number of children not yet ranked.
    let mut out_deg = vec![0u32; n];
    // Reverse adjacency built on the fly (we only have succ()).
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, deg) in out_deg.iter_mut().enumerate() {
        let succs = view.succ(v);
        *deg = succs.len() as u32;
        for &w in succs {
            rev[V::idx(w)].push(v as u32);
        }
    }
    let mut rank = vec![0u32; n];
    let mut queue: Vec<usize> = (0..n).filter(|&v| out_deg[v] == 0).collect();
    let mut processed = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        processed += 1;
        for &p in &rev[v] {
            let p = p as usize;
            rank[p] = rank[p].max(rank[v] + 1);
            out_deg[p] -= 1;
            if out_deg[p] == 0 {
                queue.push(p);
            }
        }
    }
    (processed == n).then_some(rank)
}

/// Ranks of all pattern nodes; `None` if `Q` is cyclic.
pub fn pattern_topo_ranks(q: &Pattern) -> Option<Vec<u32>> {
    topo_ranks(&PatternView(q))
}

/// Ranks of all data-graph nodes; `None` if `G` is cyclic.
pub fn graph_topo_ranks(g: &Graph) -> Option<Vec<u32>> {
    topo_ranks(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, NodeId};
    use crate::label::Label;
    use crate::pattern::PatternBuilder;

    #[test]
    fn path_ranks() {
        // 0 -> 1 -> 2: r(2)=0, r(1)=1, r(0)=2.
        let mut b = PatternBuilder::new();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(0));
        let n2 = b.add_node(Label(0));
        b.add_edge(n0, n1);
        b.add_edge(n1, n2);
        let ranks = pattern_topo_ranks(&b.build()).unwrap();
        assert_eq!(ranks, vec![2, 1, 0]);
    }

    #[test]
    fn paper_example9_ranks() {
        // Q'' of Example 9: YB1 -> {YF, F}; YF -> SP; F -> SP;
        // SP -> YB2; YB2 -> FB. Ranks: FB=0, YB2=1, SP=2, YF=F=3, YB1=4.
        let mut b = PatternBuilder::new();
        let yb1 = b.add_node(Label(0));
        let yf = b.add_node(Label(1));
        let f = b.add_node(Label(2));
        let sp = b.add_node(Label(3));
        let yb2 = b.add_node(Label(0));
        let fb = b.add_node(Label(4));
        b.add_edge(yb1, yf);
        b.add_edge(yb1, f);
        b.add_edge(yf, sp);
        b.add_edge(f, sp);
        b.add_edge(sp, yb2);
        b.add_edge(yb2, fb);
        let ranks = pattern_topo_ranks(&b.build()).unwrap();
        assert_eq!(ranks[fb.index()], 0);
        assert_eq!(ranks[yb2.index()], 1);
        assert_eq!(ranks[sp.index()], 2);
        assert_eq!(ranks[yf.index()], 3);
        assert_eq!(ranks[f.index()], 3);
        assert_eq!(ranks[yb1.index()], 4);
    }

    #[test]
    fn cyclic_pattern_returns_none() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        b.add_edge(c, a);
        assert!(pattern_topo_ranks(&b.build()).is_none());
    }

    #[test]
    fn diamond_graph_ranks() {
        let mut b = GraphBuilder::new();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(3));
        b.add_edge(NodeId(2), NodeId(3));
        let ranks = graph_topo_ranks(&b.build()).unwrap();
        assert_eq!(ranks, vec![2, 1, 1, 0]);
    }

    #[test]
    fn rank_dominates_all_children() {
        // Rank must be max over children + 1, not just any child.
        // 0 -> 1 -> 2 -> 3 and 0 -> 3.
        let mut b = GraphBuilder::new();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        b.add_edge(NodeId(0), NodeId(3));
        let ranks = graph_topo_ranks(&b.build()).unwrap();
        assert_eq!(ranks, vec![3, 2, 1, 0]);
    }

    #[test]
    fn isolated_nodes_rank_zero() {
        let mut b = GraphBuilder::new();
        b.add_nodes(3, Label(0));
        let ranks = graph_topo_ranks(&b.build()).unwrap();
        assert_eq!(ranks, vec![0, 0, 0]);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut b = GraphBuilder::new();
        b.add_nodes(1, Label(0));
        b.add_edge(NodeId(0), NodeId(0));
        assert!(graph_topo_ranks(&b.build()).is_none());
    }
}
