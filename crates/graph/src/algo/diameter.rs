//! Pattern diameter.
//!
//! §5.1 of the paper defines the diameter `d` of a pattern `Q` as "the
//! length of the longest shortest path between two nodes in `Q`", and
//! notes `d ≤ |Eq|`. For DAG patterns, the maximum topological rank is
//! the length of the longest *directed* path; `dGPMd` performs one rank
//! round per level, so both quantities are exposed:
//!
//! * [`pattern_diameter`] — the longest *shortest* directed path
//!   (all-pairs BFS; patterns are tiny so O(|Vq|·|Q|) is fine);
//! * [`pattern_longest_path`] — the longest directed path of a DAG
//!   pattern (equals `max_u r(u)`), which is what bounds the number of
//!   rank batches of `dGPMd`.

use crate::algo::bfs::{bfs_distances_pattern, UNREACHED};
use crate::algo::topo::pattern_topo_ranks;
use crate::pattern::Pattern;

/// The longest finite shortest-path length between any ordered pair of
/// pattern nodes (0 for edgeless patterns).
pub fn pattern_diameter(q: &Pattern) -> u32 {
    let mut best = 0;
    for u in q.nodes() {
        for &d in &bfs_distances_pattern(q, u) {
            if d != UNREACHED {
                best = best.max(d);
            }
        }
    }
    best
}

/// The longest directed path of a DAG pattern (`max_u r(u)`);
/// `None` if the pattern is cyclic.
pub fn pattern_longest_path(q: &Pattern) -> Option<u32> {
    pattern_topo_ranks(q).map(|ranks| ranks.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::pattern::PatternBuilder;

    #[test]
    fn path_pattern() {
        let mut b = PatternBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(Label(0))).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let q = b.build();
        assert_eq!(pattern_diameter(&q), 4);
        assert_eq!(pattern_longest_path(&q), Some(4));
    }

    #[test]
    fn diamond_diameter_vs_longest_path() {
        // 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 3: the shortest path
        // 0..3 has length 1, so the diameter is 3 (via 0 -> 1 -> 2 -> 3?
        // no — shortest 0->3 is 1; longest *shortest* is 1->3 = 2 ...
        // enumerate: d(0,1)=1 d(0,2)=2 d(0,3)=1 d(1,2)=1 d(1,3)=2
        // d(2,3)=1 → diameter 2; longest path 3.
        let mut b = PatternBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(Label(0))).collect();
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.add_edge(n[2], n[3]);
        b.add_edge(n[0], n[3]);
        let q = b.build();
        assert_eq!(pattern_diameter(&q), 2);
        assert_eq!(pattern_longest_path(&q), Some(3));
    }

    #[test]
    fn cyclic_pattern() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        b.add_edge(c, a);
        let q = b.build();
        assert_eq!(pattern_longest_path(&q), None);
        assert_eq!(pattern_diameter(&q), 1);
    }

    #[test]
    fn edgeless_pattern() {
        let mut b = PatternBuilder::new();
        b.add_node(Label(0));
        b.add_node(Label(1));
        let q = b.build();
        assert_eq!(pattern_diameter(&q), 0);
        assert_eq!(pattern_longest_path(&q), Some(0));
    }
}
