//! Graph algorithms used by the simulation engines.
//!
//! * [`tarjan`] — strongly connected components and DAG detection
//!   (`dGPMd` must check whether `Q`/`G` is a DAG, §5.1);
//! * [`topo`] — topological ranks `r(u)` that drive `dGPMd`'s message
//!   scheduling;
//! * [`bfs`] — breadth-first distances;
//! * [`diameter`] — the pattern diameter `d` (longest shortest path),
//!   which bounds the number of rank rounds of `dGPMd`.

pub mod bfs;
pub mod diameter;
pub mod tarjan;
pub mod topo;

pub use bfs::{bfs_distances, bfs_distances_pattern};
pub use diameter::{pattern_diameter, pattern_longest_path};
pub use tarjan::{
    graph_is_dag, pattern_is_dag, strongly_connected_components, PatternView, SccView,
};
pub use topo::{graph_topo_ranks, pattern_topo_ranks};
