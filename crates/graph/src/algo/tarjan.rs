//! Tarjan's strongly-connected-components algorithm (iterative).
//!
//! The paper's `dGPMd` applies whenever the pattern or the data graph
//! is a DAG; Tarjan gives the linear-time acyclicity check (§5.1 cites
//! [Tarjan '72]). The implementation is iterative (explicit stack) so
//! that multi-million-node graphs do not overflow the call stack.

use crate::graph::{Graph, NodeId};
use crate::pattern::{Pattern, QNodeId};

/// Adapter trait so Tarjan runs over both [`Graph`] and [`Pattern`].
pub trait SccView {
    /// Number of nodes.
    fn n(&self) -> usize;
    /// Successor indices of node `v`.
    fn succ(&self, v: usize) -> &[Self::Node]
    where
        Self: Sized;
    /// Node handle type (only its index is used).
    type Node: Copy;
    /// Dense index of a node handle.
    fn idx(node: Self::Node) -> usize;
}

impl SccView for Graph {
    type Node = NodeId;
    fn n(&self) -> usize {
        self.node_count()
    }
    fn succ(&self, v: usize) -> &[NodeId] {
        self.successors(NodeId(v as u32))
    }
    fn idx(node: NodeId) -> usize {
        node.index()
    }
}

/// Adapter over [`Pattern`] for SCC computation.
pub struct PatternView<'a>(pub &'a Pattern);

impl SccView for PatternView<'_> {
    type Node = QNodeId;
    fn n(&self) -> usize {
        self.0.node_count()
    }
    fn succ(&self, v: usize) -> &[QNodeId] {
        self.0.children(QNodeId(v as u16))
    }
    fn idx(node: QNodeId) -> usize {
        node.index()
    }
}

/// Computes strongly connected components; returns `(component_of,
/// component_count)` where components are numbered in *reverse
/// topological order* of the condensation (Tarjan's output order:
/// a component's successors always have smaller component ids).
pub fn strongly_connected_components<V: SccView>(view: &V) -> (Vec<u32>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let n = view.n();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0usize;

    // Explicit DFS frame: (node, next successor position).
    let mut dfs: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        dfs.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            let succs = view.succ(v);
            if *pos < succs.len() {
                let w = V::idx(succs[*pos]);
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v is the root of an SCC; pop it off the stack.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = comp_count as u32;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

/// True iff the component containing `v` is trivial (size 1, no
/// self-loop) for every node, i.e. the structure is a DAG.
fn is_dag<V: SccView>(view: &V) -> bool {
    let n = view.n();
    let (comp, count) = strongly_connected_components(view);
    if count != n {
        return false;
    }
    // Every SCC trivial; still need to reject self-loops.
    let _ = comp;
    for v in 0..n {
        if view.succ(v).iter().any(|&w| V::idx(w) == v) {
            return false;
        }
    }
    true
}

/// True iff the data graph is acyclic.
pub fn graph_is_dag(g: &Graph) -> bool {
    is_dag(g)
}

/// True iff the pattern is acyclic.
pub fn pattern_is_dag(q: &Pattern) -> bool {
    is_dag(&PatternView(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::label::Label;
    use crate::pattern::PatternBuilder;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_nodes(n, Label(0));
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    #[test]
    fn dag_detected() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(graph_is_dag(&g));
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn cycle_detected() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!graph_is_dag(&g));
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn self_loop_is_not_dag() {
        let g = graph_from_edges(2, &[(0, 0), (0, 1)]);
        assert!(!graph_is_dag(&g));
    }

    #[test]
    fn two_sccs_plus_bridge() {
        // SCC {0,1}, SCC {2,3}, bridge 1 -> 2.
        let g = graph_from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        // Reverse topological numbering: successor SCC gets the smaller id.
        assert!(comp[2] < comp[0]);
    }

    #[test]
    fn pattern_acyclicity() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        assert!(pattern_is_dag(&b.clone().build()));
        b.add_edge(c, a);
        assert!(!pattern_is_dag(&b.build()));
    }

    #[test]
    fn disconnected_components() {
        let g = graph_from_edges(5, &[(0, 1), (2, 3), (3, 2)]);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 4); // {0}, {1}, {2,3}, {4}
        assert!(!graph_is_dag(&g));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 200k-node chain: a recursive Tarjan would overflow here.
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(n as usize, &edges);
        assert!(graph_is_dag(&g));
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(0, &[]);
        assert!(graph_is_dag(&g));
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 0);
        assert!(comp.is_empty());
    }
}
