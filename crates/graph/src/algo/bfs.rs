//! Breadth-first distances over graphs and patterns.

use crate::graph::{Graph, NodeId};
use crate::pattern::{Pattern, QNodeId};

/// Unreached marker in distance vectors.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distances from `source` following out-edges; unreachable nodes
/// get [`UNREACHED`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &w in g.successors(v) {
            if dist[w.index()] == UNREACHED {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS distances from `source` in a pattern, following query edges.
pub fn bfs_distances_pattern(q: &Pattern, source: QNodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; q.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &c in q.children(u) {
            if dist[c.index()] == UNREACHED {
                dist[c.index()] = d + 1;
                queue.push_back(c);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::label::Label;
    use crate::pattern::PatternBuilder;

    #[test]
    fn chain_distances() {
        let mut b = GraphBuilder::new();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = GraphBuilder::new();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn directed_only() {
        // 1 -> 0: node 1 is not reachable *from* 0.
        let mut b = GraphBuilder::new();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(1), NodeId(0));
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d, vec![0, UNREACHED]);
    }

    #[test]
    fn shortest_of_two_paths() {
        // 0 -> 1 -> 2, 0 -> 2.
        let mut b = GraphBuilder::new();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d[2], 1);
    }

    #[test]
    fn pattern_bfs() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        let e = b.add_node(Label(2));
        b.add_edge(a, c);
        b.add_edge(c, e);
        let d = bfs_distances_pattern(&b.build(), a);
        assert_eq!(d, vec![0, 1, 2]);
    }
}
