//! The data graph `G = (V, E, L)`.
//!
//! A [`Graph`] is a node-labeled directed graph stored in compressed
//! sparse row (CSR) form with both forward (out-edge) and reverse
//! (in-edge) adjacency. Nodes are dense `u32` ids ([`NodeId`]);
//! parallel edges are deduplicated and self-loops are allowed (graph
//! simulation is well-defined on them).
//!
//! Graphs are constructed through [`GraphBuilder`], which accepts edges
//! in any order and finalizes into CSR.

use crate::label::Label;
use std::fmt;

/// A node of a data graph: a dense index in `0..graph.node_count()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A node-labeled directed data graph in CSR form.
///
/// ```
/// use dgs_graph::{GraphBuilder, Label, NodeId};
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(Label(0));
/// let c = b.add_node(Label(1));
/// b.add_edge(a, c);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.successors(a), &[c]);
/// assert_eq!(g.predecessors(c), &[a]);
/// assert_eq!(g.label(a), Label(0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    labels: Vec<Label>,
    /// CSR offsets for out-edges; length `node_count + 1`.
    out_offsets: Vec<u32>,
    /// Concatenated successor lists, sorted within each node.
    out_targets: Vec<NodeId>,
    /// CSR offsets for in-edges; length `node_count + 1`.
    in_offsets: Vec<u32>,
    /// Concatenated predecessor lists, sorted within each node.
    in_sources: Vec<NodeId>,
}

impl Graph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of (deduplicated) edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// The paper's size measure `|G| = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The label `L(v)`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// All node labels, indexed by `NodeId`.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Successors of `v` (targets of out-edges), sorted ascending.
    #[inline]
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Predecessors of `v` (sources of in-edges), sorted ascending.
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.successors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.predecessors(v).len()
    }

    /// True iff edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Iterates all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates all edges `(source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// The largest label index in use plus one (alphabet size bound).
    pub fn label_bound(&self) -> usize {
        self.labels.iter().map(|l| l.index() + 1).max().unwrap_or(0)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

/// Incremental builder for [`Graph`].
///
/// Accepts nodes and edges in any order; duplicate edges are removed at
/// [`GraphBuilder::build`] time.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with `label`, returning its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = u32::try_from(self.labels.len()).expect("graph node overflow");
        self.labels.push(label);
        NodeId(id)
    }

    /// Adds `n` nodes all carrying `label`; returns the first id.
    pub fn add_nodes(&mut self, n: usize, label: Label) -> NodeId {
        let first = NodeId(self.labels.len() as u32);
        self.labels.resize(self.labels.len() + n, label);
        first
    }

    /// Adds a directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics (at `build`) if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR [`Graph`]; deduplicates edges and sorts
    /// adjacency lists.
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut edges = self.edges;
        for &(u, v) in &edges {
            assert!(
                u.index() < n && v.index() < n,
                "edge ({u:?}, {v:?}) out of range for {n} nodes"
            );
        }
        edges.sort_unstable();
        edges.dedup();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        // Reverse CSR: counting sort by target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); edges.len()];
        for &(u, v) in &edges {
            let slot = cursor[v.index()] as usize;
            in_sources[slot] = u;
            cursor[v.index()] += 1;
        }
        // Sources arrive in ascending order because `edges` is sorted by
        // (u, v), so each predecessor list is already sorted.

        Graph {
            labels: self.labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Label(0));
        let n1 = b.add_node(Label(1));
        let n2 = b.add_node(Label(1));
        let n3 = b.add_node(Label(2));
        b.add_edge(n0, n1);
        b.add_edge(n0, n2);
        b.add_edge(n1, n3);
        b.add_edge(n2, n3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        assert_eq!(g.successors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.successors(NodeId(3)), &[]);
        assert_eq!(g.predecessors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.predecessors(NodeId(0)), &[]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn duplicate_edges_removed() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(0));
        b.add_edge(a, c);
        b.add_edge(a, c);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(a), &[c]);
    }

    #[test]
    fn self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Label(0));
        b.add_edge(a, a);
        let g = b.build();
        assert_eq!(g.successors(a), &[a]);
        assert_eq!(g.predecessors(a), &[a]);
    }

    #[test]
    fn edges_iterator_matches_adjacency() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(5, Label(3));
        assert_eq!(first, NodeId(0));
        assert_eq!(b.node_count(), 5);
        let g = b.build();
        assert!(g.nodes().all(|v| g.label(v) == Label(3)));
    }

    #[test]
    fn label_bound() {
        let g = diamond();
        assert_eq!(g.label_bound(), 3);
        let empty = GraphBuilder::new().build();
        assert_eq!(empty.label_bound(), 0);
        assert_eq!(empty.node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Label(0));
        b.add_edge(a, NodeId(10));
        let _ = b.build();
    }

    #[test]
    fn predecessor_lists_sorted() {
        // Insert edges in scrambled order; reverse adjacency must come
        // out sorted.
        let mut b = GraphBuilder::new();
        for _ in 0..6 {
            b.add_node(Label(0));
        }
        b.add_edge(NodeId(5), NodeId(0));
        b.add_edge(NodeId(3), NodeId(0));
        b.add_edge(NodeId(1), NodeId(0));
        let g = b.build();
        assert_eq!(
            g.predecessors(NodeId(0)),
            &[NodeId(1), NodeId(3), NodeId(5)]
        );
    }
}
