//! Edge-labeled graphs via the paper's reduction.
//!
//! §2.1: "our techniques can be readily adapted for edge labels: for
//! each labeled edge `e`, we can insert a 'dummy' node to represent
//! `e`, carrying `e`'s label." This module implements that reduction
//! for both data graphs and patterns, so edge-labeled matching runs on
//! the plain node-labeled engines unchanged.
//!
//! An edge `(u, v)` with label `ℓ` becomes `u → x_ℓ → v` where `x_ℓ`
//! is a fresh node labeled `ℓ`; unlabeled edges (label `None`) are
//! kept as direct edges. Labels for dummy nodes must come from a
//! *disjoint* part of the alphabet (the caller's responsibility;
//! [`EdgeLabeledBuilder`] enforces it with an offset).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::label::Label;
use crate::pattern::{Pattern, PatternBuilder, QNodeId};

/// Mapping from each labeled input edge to its dummy node.
pub type EdgeDummies = Vec<((NodeId, NodeId), NodeId)>;
/// Mapping from each labeled query edge to its dummy query node.
pub type QEdgeDummies = Vec<((QNodeId, QNodeId), QNodeId)>;

/// Builder for an edge-labeled data graph; finalizes into a plain
/// [`Graph`] via the dummy-node reduction.
#[derive(Clone, Debug)]
pub struct EdgeLabeledBuilder {
    node_labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId, Option<u16>)>,
    /// Edge label `l` becomes node label `edge_label_base + l`.
    edge_label_base: u16,
}

impl EdgeLabeledBuilder {
    /// Creates a builder whose edge labels map to node labels starting
    /// at `edge_label_base` (choose it above every node label in use).
    pub fn new(edge_label_base: u16) -> Self {
        EdgeLabeledBuilder {
            node_labels: Vec::new(),
            edges: Vec::new(),
            edge_label_base,
        }
    }

    /// Adds a node with a *node* label.
    ///
    /// # Panics
    /// Panics if `label` is at or above the edge-label base (the two
    /// alphabets must stay disjoint).
    pub fn add_node(&mut self, label: Label) -> NodeId {
        assert!(
            label.0 < self.edge_label_base,
            "node label {label:?} collides with the edge-label range"
        );
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.push(label);
        id
    }

    /// Adds an edge, optionally labeled.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: Option<u16>) {
        self.edges.push((u, v, label));
    }

    /// Applies the reduction. Returns the plain graph plus the mapping
    /// from each labeled input edge to its dummy node.
    pub fn build(self) -> (Graph, EdgeDummies) {
        let mut b = GraphBuilder::with_capacity(
            self.node_labels.len() + self.edges.len(),
            2 * self.edges.len(),
        );
        for l in &self.node_labels {
            b.add_node(*l);
        }
        let mut dummies = Vec::new();
        for (u, v, label) in self.edges {
            match label {
                None => b.add_edge(u, v),
                Some(l) => {
                    let dummy = b.add_node(Label(self.edge_label_base + l));
                    b.add_edge(u, dummy);
                    b.add_edge(dummy, v);
                    dummies.push(((u, v), dummy));
                }
            }
        }
        (b.build(), dummies)
    }
}

/// Builder for an edge-labeled pattern; finalizes into a plain
/// [`Pattern`] with the same reduction (and the same label base, so a
/// reduced pattern matches a reduced graph).
#[derive(Clone, Debug)]
pub struct EdgeLabeledPatternBuilder {
    node_labels: Vec<Label>,
    edges: Vec<(QNodeId, QNodeId, Option<u16>)>,
    edge_label_base: u16,
}

impl EdgeLabeledPatternBuilder {
    /// Creates a builder with the given edge-label base.
    pub fn new(edge_label_base: u16) -> Self {
        EdgeLabeledPatternBuilder {
            node_labels: Vec::new(),
            edges: Vec::new(),
            edge_label_base,
        }
    }

    /// Adds a query node with a node label.
    pub fn add_node(&mut self, label: Label) -> QNodeId {
        assert!(
            label.0 < self.edge_label_base,
            "node label {label:?} collides with the edge-label range"
        );
        let id = QNodeId(self.node_labels.len() as u16);
        self.node_labels.push(label);
        id
    }

    /// Adds a query edge, optionally labeled.
    pub fn add_edge(&mut self, u: QNodeId, v: QNodeId, label: Option<u16>) {
        self.edges.push((u, v, label));
    }

    /// Applies the reduction; returns the plain pattern and the dummy
    /// query node of each labeled edge.
    pub fn build(self) -> (Pattern, QEdgeDummies) {
        let mut b = PatternBuilder::new();
        for l in &self.node_labels {
            b.add_node(*l);
        }
        let mut dummies = Vec::new();
        for (u, v, label) in self.edges {
            match label {
                None => b.add_edge(u, v),
                Some(l) => {
                    let dummy = b.add_node(Label(self.edge_label_base + l));
                    b.add_edge(u, dummy);
                    b.add_edge(dummy, v);
                    dummies.push(((u, v), dummy));
                }
            }
        }
        (b.build(), dummies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u16 = 100;

    #[test]
    fn labeled_edge_becomes_dummy_node() {
        let mut b = EdgeLabeledBuilder::new(BASE);
        let x = b.add_node(Label(0));
        let y = b.add_node(Label(1));
        b.add_edge(x, y, Some(7));
        let (g, dummies) = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let (_, dummy) = dummies[0];
        assert_eq!(g.label(dummy), Label(BASE + 7));
        assert!(g.has_edge(x, dummy));
        assert!(g.has_edge(dummy, y));
        assert!(!g.has_edge(x, y));
    }

    #[test]
    fn unlabeled_edges_stay_direct() {
        let mut b = EdgeLabeledBuilder::new(BASE);
        let x = b.add_node(Label(0));
        let y = b.add_node(Label(1));
        b.add_edge(x, y, None);
        let (g, dummies) = b.build();
        assert_eq!(g.node_count(), 2);
        assert!(g.has_edge(x, y));
        assert!(dummies.is_empty());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn node_label_in_edge_range_rejected() {
        let mut b = EdgeLabeledBuilder::new(BASE);
        b.add_node(Label(BASE));
    }

    #[test]
    fn pattern_reduction_shape() {
        let mut qb = EdgeLabeledPatternBuilder::new(BASE);
        let qa = qb.add_node(Label(0));
        let qb_node = qb.add_node(Label(1));
        qb.add_edge(qa, qb_node, Some(3));
        qb.add_edge(qb_node, qa, None);
        let (q, dummies) = qb.build();
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 3);
        let (_, dummy) = dummies[0];
        assert_eq!(q.label(dummy), Label(BASE + 3));
        assert!(q.has_edge(qa, dummy));
        assert!(q.has_edge(dummy, qb_node));
        assert!(q.has_edge(qb_node, qa));
    }

    // The end-to-end test (edge-labeled simulation distinguishing
    // edge labels) lives in the workspace integration suite
    // (`tests/extensions.rs`) to avoid a dev-dependency cycle with
    // dgs-sim.
}
