//! Pattern queries `Q = (Vq, Eq, fv)`.
//!
//! A [`Pattern`] is a small directed graph whose nodes carry labels
//! (`fv`). Patterns are orders of magnitude smaller than data graphs
//! (`|Q|` is "typically small", §4.1 of the paper), so they are stored
//! as plain adjacency vectors rather than CSR; both forward and reverse
//! adjacency are kept because the simulation algorithms traverse query
//! edges in both directions.

use crate::label::Label;
use std::fmt;

/// A node of a pattern query: a dense index in `0..pattern.node_count()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNodeId(pub u16);

impl QNodeId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A pattern query `Q = (Vq, Eq, fv)`.
///
/// ```
/// use dgs_graph::{PatternBuilder, Label};
/// let mut b = PatternBuilder::new();
/// let a = b.add_node(Label(0));
/// let c = b.add_node(Label(1));
/// b.add_edge(a, c);
/// b.add_edge(c, a); // patterns may be cyclic
/// let q = b.build();
/// assert_eq!(q.node_count(), 2);
/// assert_eq!(q.edge_count(), 2);
/// assert_eq!(q.children(a), &[c]);
/// assert_eq!(q.parents(a), &[c]);
/// assert_eq!(q.size(), 4); // |Q| = |Vq| + |Eq|
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Pattern {
    labels: Vec<Label>,
    children: Vec<Vec<QNodeId>>,
    parents: Vec<Vec<QNodeId>>,
    edge_count: usize,
}

impl Pattern {
    /// Number of query nodes `|Vq|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges `|Eq|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The paper's size measure `|Q| = |Vq| + |Eq|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The label `fv(u)`.
    #[inline]
    pub fn label(&self, u: QNodeId) -> Label {
        self.labels[u.index()]
    }

    /// All query-node labels, indexed by `QNodeId`.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Children of `u` (targets of query edges `(u, u')`), sorted.
    #[inline]
    pub fn children(&self, u: QNodeId) -> &[QNodeId] {
        &self.children[u.index()]
    }

    /// Parents of `u` (sources of query edges `(u', u)`), sorted.
    #[inline]
    pub fn parents(&self, u: QNodeId) -> &[QNodeId] {
        &self.parents[u.index()]
    }

    /// True iff `u` has no children — such nodes match any node with
    /// the right label (`v.rvec[u] := true`, procedure `lEval` line 5).
    #[inline]
    pub fn is_sink(&self, u: QNodeId) -> bool {
        self.children[u.index()].is_empty()
    }

    /// Iterates all query node ids.
    pub fn nodes(&self) -> impl Iterator<Item = QNodeId> + '_ {
        (0..self.node_count() as u16).map(QNodeId)
    }

    /// Iterates all query edges `(u, u')`.
    pub fn edges(&self) -> impl Iterator<Item = (QNodeId, QNodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.children(u).iter().map(move |&c| (u, c)))
    }

    /// True iff edge `(u, u')` exists.
    pub fn has_edge(&self, u: QNodeId, c: QNodeId) -> bool {
        self.children[u.index()].binary_search(&c).is_ok()
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pattern({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

/// Incremental builder for [`Pattern`].
#[derive(Clone, Debug, Default)]
pub struct PatternBuilder {
    labels: Vec<Label>,
    edges: Vec<(QNodeId, QNodeId)>,
}

impl PatternBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a query node with `label`, returning its id.
    pub fn add_node(&mut self, label: Label) -> QNodeId {
        let id = u16::try_from(self.labels.len()).expect("pattern node overflow");
        self.labels.push(label);
        QNodeId(id)
    }

    /// Adds a query edge `(u, c)`.
    pub fn add_edge(&mut self, u: QNodeId, c: QNodeId) {
        self.edges.push((u, c));
    }

    /// Number of query nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Finalizes into a [`Pattern`]; deduplicates and sorts edges.
    pub fn build(self) -> Pattern {
        let n = self.labels.len();
        let mut edges = self.edges;
        for &(u, c) in &edges {
            assert!(
                u.index() < n && c.index() < n,
                "query edge ({u:?}, {c:?}) out of range for {n} nodes"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for &(u, c) in &edges {
            children[u.index()].push(c);
            parents[c.index()].push(u);
        }
        for p in &mut parents {
            p.sort_unstable();
        }
        Pattern {
            labels: self.labels,
            children,
            parents,
            edge_count: edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 pattern: YB -> F, YB -> YF, and the cycle
    /// SP -> YF -> F -> SP. Labels: 0=YB, 1=F, 2=YF, 3=SP.
    pub(crate) fn fig1_pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let yb = b.add_node(Label(0));
        let f = b.add_node(Label(1));
        let yf = b.add_node(Label(2));
        let sp = b.add_node(Label(3));
        b.add_edge(yb, f);
        b.add_edge(yb, yf);
        b.add_edge(f, sp);
        b.add_edge(sp, yf);
        b.add_edge(yf, f);
        b.build()
    }

    #[test]
    fn counts_and_size() {
        let q = fig1_pattern();
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 5);
        assert_eq!(q.size(), 9);
    }

    #[test]
    fn adjacency_both_directions() {
        let q = fig1_pattern();
        let (yb, f, yf, sp) = (QNodeId(0), QNodeId(1), QNodeId(2), QNodeId(3));
        assert_eq!(q.children(yb), &[f, yf]);
        assert_eq!(q.parents(f), &[yb, yf]);
        assert_eq!(q.parents(yb), &[]);
        assert!(q.has_edge(sp, yf));
        assert!(!q.has_edge(yf, sp));
    }

    #[test]
    fn sink_detection() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        let q = b.build();
        assert!(!q.is_sink(a));
        assert!(q.is_sink(c));
    }

    #[test]
    fn dedup_edges() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        let c = b.add_node(Label(0));
        b.add_edge(a, c);
        b.add_edge(a, c);
        let q = b.build();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn edges_iterator() {
        let q = fig1_pattern();
        assert_eq!(q.edges().count(), 5);
        for (u, c) in q.edges() {
            assert!(q.has_edge(u, c));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(0));
        b.add_edge(a, QNodeId(9));
        let _ = b.build();
    }
}
