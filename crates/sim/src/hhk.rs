//! Efficient counter-based graph simulation.
//!
//! The `O((|Vq| + |V|)(|Eq| + |E|))` algorithm of [Henzinger, Henzinger
//! & Kopke, FOCS'95] as cited by the paper ([11, 18]): every candidate
//! pair `(u, v)` keeps, for each query edge `(u, u')`, a counter of the
//! successors of `v` that are still candidates of `u'`. A pair dies
//! when any counter hits zero; deaths propagate through reverse
//! adjacency with a worklist, touching each (graph edge × query edge)
//! combination at most once.
//!
//! The same counter scheme, restricted to a fragment with optimistic
//! virtual-node variables, is the local evaluation procedure `lEval`
//! of the distributed algorithms (`dgs-core::local_eval`).

use crate::match_relation::{MatchRelation, SimResult};
use crate::matchset::MatchSet;
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};

/// Computes the maximum simulation relation with the counter-based
/// worklist algorithm.
pub fn hhk_simulation(q: &Pattern, g: &Graph) -> SimResult {
    let nq = q.node_count();
    let n = g.node_count();
    let mut ops: u64 = 0;

    // Query edges, indexed densely; parents_edges[uc] lists the edge
    // indices (e, u) entering uc.
    let qedges: Vec<(QNodeId, QNodeId)> = q.edges().collect();
    let ne = qedges.len();
    let mut parent_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
    for (e, &(u, uc)) in qedges.iter().enumerate() {
        parent_edges[uc.index()].push((e, u));
    }

    // One bitset row of label-matched nodes per label, built in a
    // single pass over the graph; candidate rows are then word-at-a-
    // time copies instead of n per-pair label probes.
    let label_bound = q
        .labels()
        .iter()
        .map(|l| l.index() + 1)
        .max()
        .unwrap_or(0)
        .max(g.label_bound());
    let mut by_label = MatchSet::new(label_bound, n);
    for v in 0..n {
        ops += 1;
        by_label.set(g.label(NodeId(v as u32)).index(), v as u32);
    }

    // cand: one bitset row per pattern variable over the node arena.
    let mut cand = MatchSet::new(nq, n);
    for u in q.nodes() {
        ops += cand.words_per_row() as u64;
        cand.copy_row_from(u.index(), by_label.row(q.label(u).index()));
    }

    // cnt[e * n + v] = |{v' in succ(v) : cand(uc, v')}| for e = (u, uc).
    // Initial candidates of uc are exactly the label-matched nodes, so
    // seed counters from a per-node successor label tally; the
    // successor scan is a contiguous sorted-slice sweep.
    let mut cnt = vec![0u32; ne * n];
    let mut tally = vec![0u32; label_bound];
    for v in 0..n {
        let vid = NodeId(v as u32);
        let succs = g.successors(vid);
        for &w in succs {
            ops += 1;
            tally[g.label(w).index()] += 1;
        }
        for (e, &(_, uc)) in qedges.iter().enumerate() {
            ops += 1;
            cnt[e * n + v] = tally[q.label(uc).index()];
        }
        for &w in succs {
            tally[g.label(w).index()] = 0;
        }
    }

    // Seed the worklist with pairs that fail immediately.
    let mut worklist: Vec<(QNodeId, u32)> = Vec::new();
    for u in q.nodes() {
        if q.is_sink(u) {
            continue;
        }
        // Edge indices leaving u.
        let out_edges: Vec<usize> = qedges
            .iter()
            .enumerate()
            .filter_map(|(e, &(src, _))| (src == u).then_some(e))
            .collect();
        // Walk only the set bits of u's candidate row.
        let row = cand.row(u.index()).to_vec();
        for v in crate::matchset::SetBits::new(&row) {
            ops += 1;
            if out_edges.iter().any(|&e| cnt[e * n + v as usize] == 0) {
                cand.remove(u.index(), v);
                worklist.push((u, v));
            }
        }
    }

    // Propagate deaths.
    while let Some((uc, vc)) = worklist.pop() {
        for &(e, u) in &parent_edges[uc.index()] {
            for &vp in g.predecessors(NodeId(vc)) {
                ops += 1;
                let c = &mut cnt[e * n + vp.index()];
                debug_assert!(*c > 0, "counter underflow");
                *c -= 1;
                if *c == 0 && cand.remove(u.index(), vp.0) {
                    worklist.push((u, vp.0));
                }
            }
        }
    }

    let lists: Vec<Vec<NodeId>> = (0..nq)
        .map(|u| cand.iter_row(u).map(NodeId).collect())
        .collect();
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_simulation;
    use dgs_graph::generate::adversarial;
    use dgs_graph::generate::patterns::random_cyclic;
    use dgs_graph::generate::random::uniform;
    use dgs_graph::generate::social::fig1;

    #[test]
    fn fig1_matches_expected() {
        let w = fig1();
        let r = hhk_simulation(&w.pattern, &w.graph);
        assert!(r.matches());
        let mut got: Vec<_> = r.relation.iter().collect();
        let mut expected = w.expected_matches();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn agrees_with_naive_on_random_inputs() {
        for seed in 0..30 {
            let g = uniform(60, 180, 4, seed);
            let q = random_cyclic(4, 7, 4, seed * 31 + 1);
            let a = hhk_simulation(&q, &g);
            let b = naive_simulation(&q, &g);
            assert_eq!(a.relation, b.relation, "seed {seed}");
        }
    }

    #[test]
    fn adversarial_ring_matches() {
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(50);
        let r = hhk_simulation(&q, &g);
        assert!(r.matches());
        // Every A node matches A, every B node matches B.
        assert_eq!(r.relation.len(), 100);
    }

    #[test]
    fn adversarial_broken_ring_fails_entirely() {
        let q = adversarial::q0();
        let g = adversarial::broken_cycle_graph(50);
        let r = hhk_simulation(&q, &g);
        assert!(!r.matches());
        // The single missing edge kills *every* candidate: poor data
        // locality in action (Example 3 of the paper).
        assert_eq!(r.relation.len(), 0);
    }

    #[test]
    fn ops_scale_roughly_linearly() {
        let q = random_cyclic(5, 10, 15, 3);
        let small = hhk_simulation(&q, &uniform(1_000, 5_000, 15, 1)).ops;
        let large = hhk_simulation(&q, &uniform(4_000, 20_000, 15, 1)).ops;
        let ratio = large as f64 / small as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "ops not roughly linear: {small} -> {large}"
        );
    }

    #[test]
    fn empty_graph_never_matches_nonempty_pattern() {
        let q = random_cyclic(3, 4, 3, 0);
        let g = dgs_graph::GraphBuilder::new().build();
        let r = hhk_simulation(&q, &g);
        assert!(!r.matches());
        assert_eq!(r.relation.len(), 0);
    }
}
