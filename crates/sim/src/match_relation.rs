//! The simulation match relation `Q(G)`.

use dgs_graph::{NodeId, Pattern, QNodeId};
use std::fmt;

/// The maximum relation `R ⊆ Vq × V` satisfying the simulation child
/// condition, stored as one sorted match list per query node.
///
/// Note the paper's convention: if some query node has *no* match, `G`
/// does not match `Q` and the data-selecting answer `Q(G)` is the
/// empty set — use [`SimResult::answer`] for that semantics;
/// `MatchRelation` itself keeps the per-node maximum relation, which is
/// the more useful object for testing and for the distributed
/// algorithms' intermediate states.
#[derive(Clone, PartialEq, Eq)]
pub struct MatchRelation {
    matches: Vec<Vec<NodeId>>,
}

impl MatchRelation {
    /// Creates a relation from per-query-node match lists (sorted
    /// internally).
    pub fn from_lists(mut matches: Vec<Vec<NodeId>>) -> Self {
        for l in &mut matches {
            l.sort_unstable();
            l.dedup();
        }
        MatchRelation { matches }
    }

    /// An empty relation over `nq` query nodes.
    pub fn empty(nq: usize) -> Self {
        MatchRelation {
            matches: vec![Vec::new(); nq],
        }
    }

    /// Number of query nodes.
    pub fn query_nodes(&self) -> usize {
        self.matches.len()
    }

    /// The sorted matches of query node `u`.
    pub fn matches_of(&self, u: QNodeId) -> &[NodeId] {
        &self.matches[u.index()]
    }

    /// True iff `(u, v)` is in the relation.
    pub fn contains(&self, u: QNodeId, v: NodeId) -> bool {
        self.matches[u.index()].binary_search(&v).is_ok()
    }

    /// True iff every query node has at least one match, i.e. `G`
    /// matches `Q` (condition (1)).
    pub fn is_total(&self) -> bool {
        !self.matches.is_empty() && self.matches.iter().all(|l| !l.is_empty())
    }

    /// Total number of `(u, v)` pairs.
    pub fn len(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// True iff the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all pairs `(u, v)` in query-node order.
    pub fn iter(&self) -> impl Iterator<Item = (QNodeId, NodeId)> + '_ {
        self.matches
            .iter()
            .enumerate()
            .flat_map(|(u, l)| l.iter().map(move |&v| (QNodeId(u as u16), v)))
    }

    /// Checks that this relation is a valid simulation of `q` in the
    /// graph described by `succ` (label check is the caller's job):
    /// every pair must have all its query edges witnessed. Used by
    /// property tests for *soundness*.
    pub fn respects_child_condition(
        &self,
        q: &Pattern,
        succ: impl Fn(NodeId) -> Vec<NodeId>,
    ) -> bool {
        for (u, v) in self.iter() {
            for &uc in q.children(u) {
                let ok = succ(v).iter().any(|&vc| self.contains(uc, vc));
                if !ok {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for MatchRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatchRelation{{")?;
        for (u, l) in self.matches.iter().enumerate() {
            if u > 0 {
                write!(f, ", ")?;
            }
            write!(f, "u{u}: {} matches", l.len())?;
        }
        write!(f, "}}")
    }
}

/// Result of a (centralized or distributed) simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// The maximum relation under the child condition.
    pub relation: MatchRelation,
    /// Basic-operation count of the computation (for the virtual-time
    /// cost model; see `dgs-net::cost`).
    pub ops: u64,
}

impl SimResult {
    /// True iff `G` matches `Q` (Boolean query answer).
    pub fn matches(&self) -> bool {
        self.relation.is_total()
    }

    /// The data-selecting answer with the paper's convention:
    /// `Q(G)` if `G` matches `Q`, the empty relation otherwise.
    pub fn answer(&self) -> MatchRelation {
        if self.matches() {
            self.relation.clone()
        } else {
            MatchRelation::empty(self.relation.query_nodes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_sorts_and_dedups() {
        let r = MatchRelation::from_lists(vec![vec![NodeId(3), NodeId(1), NodeId(3)]]);
        assert_eq!(r.matches_of(QNodeId(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn totality() {
        let r = MatchRelation::from_lists(vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert!(r.is_total());
        let r2 = MatchRelation::from_lists(vec![vec![NodeId(0)], vec![]]);
        assert!(!r2.is_total());
        assert!(!MatchRelation::empty(0).is_total());
    }

    #[test]
    fn contains_and_iter() {
        let r = MatchRelation::from_lists(vec![vec![NodeId(5)], vec![NodeId(2), NodeId(7)]]);
        assert!(r.contains(QNodeId(0), NodeId(5)));
        assert!(!r.contains(QNodeId(0), NodeId(2)));
        let pairs: Vec<_> = r.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (QNodeId(0), NodeId(5)),
                (QNodeId(1), NodeId(2)),
                (QNodeId(1), NodeId(7)),
            ]
        );
    }

    #[test]
    fn answer_applies_empty_convention() {
        let total = SimResult {
            relation: MatchRelation::from_lists(vec![vec![NodeId(0)]]),
            ops: 0,
        };
        assert!(total.matches());
        assert_eq!(total.answer().len(), 1);

        let partial = SimResult {
            relation: MatchRelation::from_lists(vec![vec![NodeId(0)], vec![]]),
            ops: 0,
        };
        assert!(!partial.matches());
        assert_eq!(partial.answer().len(), 0);
        assert_eq!(partial.answer().query_nodes(), 2);
    }

    #[test]
    fn child_condition_checker() {
        use dgs_graph::{Label, PatternBuilder};
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        let q = qb.build();
        // Graph: 0 -> 1.
        let succ = |v: NodeId| {
            if v == NodeId(0) {
                vec![NodeId(1)]
            } else {
                vec![]
            }
        };
        let good = MatchRelation::from_lists(vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert!(good.respects_child_condition(&q, succ));
        let bad = MatchRelation::from_lists(vec![vec![NodeId(1)], vec![NodeId(1)]]);
        assert!(!bad.respects_child_condition(&q, succ));
    }
}
