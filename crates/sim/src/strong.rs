//! Strong simulation: dual simulation restricted to balls.
//!
//! §2.1 of the paper contrasts graph simulation with *strong
//! simulation* [Ma et al., PVLDB'11 — reference \[24\]]: `v` strongly
//! matches `u` iff `(u, v)` survives the maximum **dual** simulation
//! of `Q` inside the ball `B(v, d_Q)` of radius `d_Q` (the undirected
//! diameter of `Q`) around `v`. Strong simulation *has data locality*
//! — each match is decidable from a bounded neighbourhood — which is
//! exactly why it is easier to distribute, and also why it "may miss
//! potential matches, e.g., the node yb2 for YB in Fig. 1" (tested
//! below, golden against the paper's remark).
//!
//! This centralized implementation exists for comparison studies and
//! tests; it is deliberately simple (one dual-simulation run per
//! candidate ball) rather than optimized.

use crate::dual::dual_simulation;
use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::algo::bfs::UNREACHED;
use dgs_graph::{Graph, GraphBuilder, NodeId, Pattern, PatternBuilder, QNodeId};
use std::collections::VecDeque;

/// The undirected diameter of a pattern (ball radius of strong
/// simulation): the longest finite undirected shortest-path distance.
pub fn pattern_undirected_diameter(q: &Pattern) -> u32 {
    let n = q.node_count();
    let mut best = 0;
    for s in q.nodes() {
        let mut dist = vec![UNREACHED; n];
        let mut queue = VecDeque::new();
        dist[s.index()] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let d = dist[u.index()];
            for &w in q.children(u).iter().chain(q.parents(u)) {
                if dist[w.index()] == UNREACHED {
                    dist[w.index()] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        for &d in &dist {
            if d != UNREACHED {
                best = best.max(d);
            }
        }
    }
    best
}

/// Nodes within undirected distance `radius` of `center`.
fn ball(g: &Graph, center: NodeId, radius: u32) -> Vec<NodeId> {
    let mut dist = vec![UNREACHED; g.node_count()];
    let mut queue = VecDeque::new();
    dist[center.index()] = 0;
    queue.push_back(center);
    let mut members = vec![center];
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d == radius {
            continue;
        }
        for &w in g.successors(v).iter().chain(g.predecessors(v)) {
            if dist[w.index()] == UNREACHED {
                dist[w.index()] = d + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    members
}

/// Computes the strong simulation match relation: the union over all
/// candidate centers `v` of the pairs `(u, v)` surviving dual
/// simulation in `B(v, d_Q)`.
pub fn strong_simulation(q: &Pattern, g: &Graph) -> SimResult {
    let nq = q.node_count();
    let radius = pattern_undirected_diameter(q);
    let mut ops: u64 = 0;
    let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); nq];

    // Candidate centers: any node whose label occurs in Q.
    for v in g.nodes() {
        let center_qnodes: Vec<QNodeId> = q.nodes().filter(|&u| q.label(u) == g.label(v)).collect();
        if center_qnodes.is_empty() {
            continue;
        }
        let members = ball(g, v, radius);
        ops += members.len() as u64;
        // Induced subgraph of the ball, with dense local ids.
        let mut local = std::collections::HashMap::with_capacity(members.len());
        let mut b = GraphBuilder::with_capacity(members.len(), members.len() * 4);
        for (i, &m) in members.iter().enumerate() {
            local.insert(m, NodeId(i as u32));
            b.add_node(g.label(m));
        }
        for &m in &members {
            for &w in g.successors(m) {
                if let Some(&wl) = local.get(&w) {
                    b.add_edge(local[&m], wl);
                    ops += 1;
                }
            }
        }
        let ball_graph = b.build();
        let dual = dual_simulation(q, &ball_graph);
        ops += dual.ops;
        let v_local = local[&v];
        for u in center_qnodes {
            if dual.relation.contains(u, v_local) {
                lists[u.index()].push(v);
            }
        }
    }
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

/// Rebuilds a pattern (identity transform) — exposed for tests that
/// need a cheap deep copy through the public API.
pub fn clone_pattern(q: &Pattern) -> Pattern {
    let mut b = PatternBuilder::new();
    for u in q.nodes() {
        b.add_node(q.label(u));
    }
    for (u, c) in q.edges() {
        b.add_edge(u, c);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{adversarial, patterns, random};

    #[test]
    fn undirected_diameter_of_fig1_pattern() {
        let w = fig1();
        assert_eq!(pattern_undirected_diameter(&w.pattern), 2);
    }

    #[test]
    fn strong_refines_simulation() {
        for seed in 0..10 {
            let g = random::uniform(60, 200, 4, seed);
            let q = patterns::random_cyclic(3, 6, 4, seed + 2);
            let sim = hhk_simulation(&q, &g).relation;
            let strong = strong_simulation(&q, &g).relation;
            for (u, v) in strong.iter() {
                assert!(sim.contains(u, v), "strong ⊄ sim at seed {seed}");
            }
        }
    }

    /// The paper's §2.1 remark, verbatim: "The latter [strong
    /// simulation] may miss potential matches, e.g., the node yb2 for
    /// YB in Fig. 1."
    #[test]
    fn strong_simulation_misses_yb2() {
        let w = fig1();
        let sim = hhk_simulation(&w.pattern, &w.graph).relation;
        let strong = strong_simulation(&w.pattern, &w.graph).relation;
        assert!(sim.contains(w.qnode("YB"), w.node("yb2")));
        assert!(!strong.contains(w.qnode("YB"), w.node("yb2")));
    }

    /// Example 3's locality contrast on the ring family. Plain
    /// simulation matches `Q0` on the whole intact ring — a decision
    /// that provably needs information from `n` hops away. Strong
    /// simulation decides inside radius-1 balls, and inside such a
    /// ball the 2-cycle witness never exists: it rejects the long
    /// ring (intact or broken) *locally*, accepting only a genuine
    /// 2-cycle. That bounded-radius decision procedure is exactly
    /// the data locality (§2.1) that graph simulation lacks.
    #[test]
    fn strong_simulation_has_data_locality_on_ring() {
        let q = adversarial::q0();
        assert_eq!(pattern_undirected_diameter(&q), 1);
        let n = 12;
        // Plain simulation: total on the intact ring (a global
        // property), empty on the broken one.
        assert!(hhk_simulation(&q, &adversarial::cycle_graph(n))
            .relation
            .is_total());
        assert!(hhk_simulation(&q, &adversarial::broken_cycle_graph(n))
            .relation
            .is_empty());
        // Strong simulation: empty on both long rings — each ball
        // lacks the cycle witness — but total on the true 2-cycle.
        assert!(strong_simulation(&q, &adversarial::cycle_graph(n))
            .relation
            .is_empty());
        assert!(strong_simulation(&q, &adversarial::broken_cycle_graph(n))
            .relation
            .is_empty());
        assert!(strong_simulation(&q, &adversarial::cycle_graph(1))
            .relation
            .is_total());
    }

    #[test]
    fn strong_equals_sim_on_disconnected_pattern_copies() {
        // Implanted isomorphic copies are preserved by strong
        // simulation (the copy sits inside its own ball).
        use dgs_graph::GraphBuilder;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let q = patterns::random_dag_with_depth(4, 5, 2, 3, 9);
        let mut gb = GraphBuilder::new();
        let mut rng = SmallRng::seed_from_u64(3);
        dgs_graph::generate::implant_pattern(&mut gb, &q, 2, &mut rng);
        let g = gb.build();
        let strong = strong_simulation(&q, &g).relation;
        assert!(strong.is_total());
    }

    #[test]
    fn clone_pattern_roundtrip() {
        let q = patterns::random_cyclic(4, 8, 5, 1);
        assert_eq!(clone_pattern(&q), q);
    }
}
