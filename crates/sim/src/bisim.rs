//! Forward bisimulation partitioning and the bisimulation quotient.
//!
//! Two nodes are (forward-)bisimilar iff they carry the same label and
//! their successor sets are bisimilar class-for-class in both
//! directions. Bisimulation is *finer* than the simulation equivalence
//! of [`crate::preorder`] (bisimilar ⟹ mutually similar), so the
//! bisimulation quotient is a safe — if less aggressive — input to
//! query-preserving compression, and it is much cheaper to compute:
//! `O((|V| + |E|) · iterations)` with hashing, no `|V|²` table.
//!
//! This is the equivalence computed distributively by Blom & Orzan
//! \[6\] in the paper's related-work Table 1; here it doubles as
//! (a) a fast compression preprocessing and (b) a reference point for
//! how much more the coarser simulation equivalence merges.
//!
//! The algorithm is naive partition refinement by successor-class
//! signatures (Kanellakis–Smolka style): start from label classes,
//! repeatedly re-hash every node by `(class, sorted set of successor
//! classes)` until the class count stabilizes. Each iteration is a
//! full pass; the number of iterations is bounded by the bisimulation
//! depth of the graph (≤ `|V|`).

use dgs_graph::{Graph, GraphBuilder, NodeId};
use std::collections::HashMap;

/// A partition of the nodes of a graph into bisimulation classes.
#[derive(Clone, Debug)]
pub struct BisimPartition {
    /// Dense class id per node.
    pub class_of: Vec<u32>,
    /// Number of classes.
    pub class_count: usize,
    /// Refinement iterations until fixpoint (the bisimulation depth
    /// plus one).
    pub iterations: usize,
}

/// Computes the coarsest forward bisimulation partition of `g`
/// respecting node labels.
pub fn bisimulation_partition(g: &Graph) -> BisimPartition {
    let n = g.node_count();
    // Round 0: classes = labels (densified).
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut class_of: Vec<u32> = (0..n)
        .map(|v| {
            let l = u32::from(g.label(NodeId(v as u32)).0);
            let next = dense.len() as u32;
            *dense.entry(l).or_insert(next)
        })
        .collect();
    let mut class_count = dense.len();
    let mut iterations = 1;

    loop {
        // Signature: (own class, sorted deduped successor classes).
        let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut next_class_of = vec![0u32; n];
        for v in 0..n {
            let mut succ: Vec<u32> = g
                .successors(NodeId(v as u32))
                .iter()
                .map(|&w| class_of[w.index()])
                .collect();
            succ.sort_unstable();
            succ.dedup();
            let key = (class_of[v], succ);
            let fresh = sig_ids.len() as u32;
            next_class_of[v] = *sig_ids.entry(key).or_insert(fresh);
        }
        let next_count = sig_ids.len();
        debug_assert!(next_count >= class_count, "refinement never coarsens");
        let stable = next_count == class_count;
        class_of = next_class_of;
        class_count = next_count;
        if stable {
            break;
        }
        iterations += 1;
    }

    BisimPartition {
        class_of,
        class_count,
        iterations,
    }
}

impl BisimPartition {
    /// True iff `a` and `b` are bisimilar.
    pub fn bisimilar(&self, a: NodeId, b: NodeId) -> bool {
        self.class_of[a.index()] == self.class_of[b.index()]
    }

    /// Builds the quotient graph: one node per class (labeled by any
    /// member — labels are class-invariant), one edge per pair of
    /// classes with at least one member edge. Returns the quotient and
    /// the class-of mapping is available on `self`.
    pub fn quotient(&self, g: &Graph) -> Graph {
        let mut labels = vec![dgs_graph::Label(0); self.class_count];
        let mut inhabited = vec![false; self.class_count];
        for v in g.nodes() {
            let c = self.class_of[v.index()] as usize;
            labels[c] = g.label(v);
            inhabited[c] = true;
        }
        debug_assert!(inhabited.iter().all(|&s| s), "every class inhabited");
        let mut b = GraphBuilder::with_capacity(self.class_count, g.edge_count());
        for &l in &labels {
            b.add_node(l);
        }
        for (u, v) in g.edges() {
            b.add_edge(
                NodeId(self.class_of[u.index()]),
                NodeId(self.class_of[v.index()]),
            );
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use crate::preorder::SimPreorder;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::{GraphBuilder, Label};

    #[test]
    fn labels_start_the_partition() {
        let mut b = GraphBuilder::new();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(0));
        let g = b.build();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count, 2);
        assert!(p.bisimilar(NodeId(0), NodeId(2)));
        assert!(!p.bisimilar(NodeId(0), NodeId(1)));
    }

    #[test]
    fn chain_depth_separates() {
        // a0 -> a1 -> a2, same label: all three differ (different
        // remaining depth ⇒ not bisimilar).
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(Label(0));
        let a1 = b.add_node(Label(0));
        let a2 = b.add_node(Label(0));
        b.add_edge(a0, a1);
        b.add_edge(a1, a2);
        let g = b.build();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count, 3);
        assert!(p.iterations >= 2);
    }

    #[test]
    fn parallel_twins_merge() {
        // Two leaves with the same label under one root are bisimilar.
        let mut b = GraphBuilder::new();
        let r = b.add_node(Label(0));
        let x = b.add_node(Label(1));
        let y = b.add_node(Label(1));
        b.add_edge(r, x);
        b.add_edge(r, y);
        let g = b.build();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count, 2);
        assert!(p.bisimilar(x, y));
        let q = p.quotient(&g);
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn bisimilarity_refines_simulation_equivalence() {
        for seed in 0..6 {
            let g = random::uniform(50, 150, 3, seed);
            let bi = bisimulation_partition(&g);
            let pre = SimPreorder::compute(&g);
            let (_, sim_classes) = pre.equivalence_classes();
            assert!(
                bi.class_count >= sim_classes,
                "seed {seed}: bisim {} classes < simeq {sim_classes}",
                bi.class_count
            );
            for a in g.nodes() {
                for b in g.nodes() {
                    if bi.bisimilar(a, b) {
                        assert!(
                            pre.equivalent(a, b),
                            "seed {seed}: {a:?} ~ {b:?} bisimilar but not sim-equivalent"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quotient_preserves_simulation_answers() {
        // (u, v) ∈ Q(G) ⟺ (u, [v]) ∈ Q(G/≈): bisimilar nodes are
        // mutually similar, so this follows from the compression
        // theorem; checked directly here.
        for seed in 0..8 {
            let g = random::uniform(60, 200, 3, seed);
            let p = bisimulation_partition(&g);
            let gq = p.quotient(&g);
            let q = patterns::random_cyclic(3, 5, 3, seed + 40);
            let orig = hhk_simulation(&q, &g).relation;
            let quot = hhk_simulation(&q, &gq).relation;
            for u in q.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        orig.contains(u, v),
                        quot.contains(u, NodeId(p.class_of[v.index()])),
                        "seed {seed}: ({u:?}, {v:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_cycle_collapses_to_self_loop() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..6).map(|_| b.add_node(Label(2))).collect();
        for i in 0..6 {
            b.add_edge(nodes[i], nodes[(i + 1) % 6]);
        }
        let g = b.build();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count, 1);
        let gq = p.quotient(&g);
        assert_eq!(gq.node_count(), 1);
        assert!(gq.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let p = bisimulation_partition(&g);
        assert_eq!(p.class_count, 0);
        assert_eq!(p.quotient(&g).node_count(), 0);
    }
}
