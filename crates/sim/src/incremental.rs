//! Incremental graph simulation under edge deletions.
//!
//! The paper's incremental `lEval` (§4.2) "follow\[s\] the idea of
//! incremental pattern matching \[13\]" (Fan, Wang & Wu, TODS'13):
//! when the input shrinks, the maximum simulation relation can only
//! shrink, and the update cost is `O(|AFF|)` — proportional to the
//! *affected area*, the set of variables that actually change —
//! rather than to `|G|`.
//!
//! [`IncrementalSim`] maintains the counter state of the HHK
//! algorithm across streams of **edge deletions and insertions**.
//! Deletions only shrink the maximum simulation (each one is a local
//! counter decrement plus a falsification cascade); insertions only
//! *grow* it, and are repaired by a bounded re-refinement: the
//! affected area `AFF` is the backward closure (over predecessors, in
//! the post-insertion graph) of the inserted edges' source nodes —
//! every pair outside `AFF` keeps both its candidacy and its
//! counters, because its successors are also outside `AFF`. Inside
//! `AFF`, candidacy is optimistically reset to label compatibility,
//! counters are rebuilt, and the standard downward refinement runs
//! with the non-affected pairs frozen as a boundary. (A naive upward
//! cascade from the inserted edge is *not* sound for cyclic patterns:
//! two mutually-supporting pairs of a pattern 2-cycle must revive
//! together or not at all, which only a fixpoint from optimistic
//! truth decides correctly.) This is the centralized analogue of what
//! every `dGPM` site does when falsification / resurrection messages
//! arrive.

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};

/// Simulation state maintained across edge deletions.
pub struct IncrementalSim {
    q: Pattern,
    nq: usize,
    n: usize,
    /// Mutable adjacency (the graph shrinks over time).
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    qedges: Vec<(QNodeId, QNodeId)>,
    parent_edges: Vec<Vec<(usize, QNodeId)>>,
    cand: Vec<bool>,
    /// Label compatibility — the pre-refinement candidate matrix. An
    /// insertion may resurrect any label-compatible pair, so this is
    /// the optimistic starting point for re-refinement of `AFF`.
    label_ok: Vec<bool>,
    cnt: Vec<u32>,
    /// Operations performed by the **last** update — counter touches
    /// during the falsification cascade, a proxy for the paper's
    /// `|AFF|` (the affected area of §4.2). Reset to zero at the start
    /// of every [`Self::delete_edge`] call, so it always describes one
    /// update in isolation; sum across updates lives in
    /// [`Self::total_update_ops`]. The initial full fixpoint run by
    /// [`Self::new`] is *not* counted in either — it is construction
    /// cost, not maintenance cost.
    pub last_update_ops: u64,
    /// Cumulative [`Self::last_update_ops`] over every update applied
    /// since construction (excludes the initial fixpoint).
    pub total_update_ops: u64,
}

impl IncrementalSim {
    /// Builds the state by running full simulation once.
    pub fn new(q: &Pattern, g: &Graph) -> Self {
        let nq = q.node_count();
        let n = g.node_count();
        let qedges: Vec<(QNodeId, QNodeId)> = q.edges().collect();
        let ne = qedges.len();
        let mut parent_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            parent_edges[uc.index()].push((e, u));
        }
        let succ: Vec<Vec<NodeId>> = g.nodes().map(|v| g.successors(v).to_vec()).collect();
        let pred: Vec<Vec<NodeId>> = g.nodes().map(|v| g.predecessors(v).to_vec()).collect();

        let mut label_ok = vec![false; nq * n];
        for u in q.nodes() {
            for v in 0..n {
                label_ok[u.index() * n + v] = q.label(u) == g.label(NodeId(v as u32));
            }
        }
        let cand = label_ok.clone();
        let mut cnt = vec![0u32; ne * n];
        for v in 0..n {
            for (e, &(_, uc)) in qedges.iter().enumerate() {
                cnt[e * n + v] = succ[v]
                    .iter()
                    .filter(|&&w| cand[uc.index() * n + w.index()])
                    .count() as u32;
            }
        }
        let mut this = IncrementalSim {
            q: q.clone(),
            nq,
            n,
            succ,
            pred,
            qedges,
            parent_edges,
            cand,
            label_ok,
            cnt,
            last_update_ops: 0,
            total_update_ops: 0,
        };
        // Initial fixpoint.
        let mut worklist = Vec::new();
        for u in this.q.nodes() {
            if this.q.is_sink(u) {
                continue;
            }
            let out_edges: Vec<usize> = this
                .qedges
                .iter()
                .enumerate()
                .filter_map(|(e, &(s, _))| (s == u).then_some(e))
                .collect();
            for v in 0..n {
                if this.cand[u.index() * n + v]
                    && out_edges.iter().any(|&e| this.cnt[e * n + v] == 0)
                {
                    this.cand[u.index() * n + v] = false;
                    worklist.push((u, v as u32));
                }
            }
        }
        this.propagate(worklist);
        // The initial fixpoint is construction, not maintenance: both
        // counters start the update stream at zero.
        this.last_update_ops = 0;
        this.total_update_ops = 0;
        this
    }

    fn propagate(&mut self, mut worklist: Vec<(QNodeId, u32)>) -> Vec<(QNodeId, NodeId)> {
        let n = self.n;
        let mut removed = Vec::new();
        while let Some((uq, vq)) = worklist.pop() {
            removed.push((uq, NodeId(vq)));
            for &(e, u) in &self.parent_edges[uq.index()] {
                for i in 0..self.pred[vq as usize].len() {
                    let vp = self.pred[vq as usize][i];
                    self.last_update_ops += 1;
                    let c = &mut self.cnt[e * n + vp.index()];
                    debug_assert!(*c > 0, "counter underflow");
                    *c -= 1;
                    if *c == 0 && self.cand[u.index() * n + vp.index()] {
                        self.cand[u.index() * n + vp.index()] = false;
                        worklist.push((u, vp.0));
                    }
                }
            }
        }
        removed
    }

    /// Deletes edge `(u, v)` and incrementally repairs the relation.
    /// Returns the pairs that were falsified by this deletion.
    ///
    /// [`Self::last_update_ops`] is reset at entry and afterwards holds
    /// this update's cost alone (the `O(|AFF|)` proxy);
    /// [`Self::total_update_ops`] keeps the running sum.
    ///
    /// # Panics
    /// Panics if the edge does not exist (double deletion is a caller
    /// bug).
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Vec<(QNodeId, NodeId)> {
        self.last_update_ops = 0;
        let pos = self.succ[u.index()]
            .iter()
            .position(|&w| w == v)
            .expect("edge to delete must exist");
        self.succ[u.index()].swap_remove(pos);
        let ppos = self.pred[v.index()]
            .iter()
            .position(|&w| w == u)
            .expect("reverse edge must exist");
        self.pred[v.index()].swap_remove(ppos);

        // The deleted edge supported, for each query edge (uq, uc),
        // the pair (uq, u) iff (uc, v) is a candidate. Snapshot v's
        // candidacy row first: on a self-loop (u = v) an early
        // iteration can falsify a pair of v itself, and the support
        // the counters actually hold is the *pre-deletion* one — the
        // cascade for the falsified pair is handled by `propagate`,
        // which walks the already-shrunk predecessor list.
        let n = self.n;
        let vcand: Vec<bool> = (0..self.nq)
            .map(|uc| self.cand[uc * n + v.index()])
            .collect();
        let mut worklist = Vec::new();
        for (e, &(uq, uc)) in self.qedges.iter().enumerate() {
            self.last_update_ops += 1;
            if vcand[uc.index()] {
                let c = &mut self.cnt[e * n + u.index()];
                debug_assert!(*c > 0);
                *c -= 1;
                if *c == 0 && self.cand[uq.index() * n + u.index()] {
                    self.cand[uq.index() * n + u.index()] = false;
                    worklist.push((uq, u.0));
                }
            }
        }
        let removed = self.propagate(worklist);
        self.total_update_ops += self.last_update_ops;
        removed
    }

    /// Deletes a batch of edges, returning all falsified pairs.
    /// [`Self::last_update_ops`] afterwards covers the whole batch.
    ///
    /// # Panics
    /// Panics if any edge does not exist.
    pub fn delete_edges(&mut self, ops: &[(NodeId, NodeId)]) -> Vec<(QNodeId, NodeId)> {
        let mut removed = Vec::new();
        let mut batch_ops = 0;
        for &(u, v) in ops {
            removed.extend(self.delete_edge(u, v));
            batch_ops += self.last_update_ops;
        }
        self.last_update_ops = batch_ops;
        removed
    }

    /// Inserts edge `(u, v)` and incrementally repairs the relation.
    /// Returns the pairs *resurrected* by this insertion (pairs that
    /// were out of the relation before and are in it afterwards —
    /// insertions are upward-monotone, so no pair is ever falsified).
    ///
    /// # Panics
    /// Panics if the edge already exists (double insertion is a caller
    /// bug).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Vec<(QNodeId, NodeId)> {
        self.insert_edges(&[(u, v)])
    }

    /// Inserts a batch of edges and repairs the relation in one
    /// bounded re-refinement, returning all resurrected pairs.
    /// [`Self::last_update_ops`] afterwards covers the whole batch.
    ///
    /// The affected area is the backward closure (over predecessors,
    /// in the post-insertion graph) of the inserted edges' source
    /// nodes: candidacy of nodes outside it cannot change, and their
    /// counters only reference successors that are also outside it.
    /// Affected pairs are optimistically reset to label
    /// compatibility, their counters rebuilt, and the standard
    /// downward refinement re-run with non-affected candidacy frozen
    /// as the boundary.
    ///
    /// # Panics
    /// Panics if any edge already exists.
    pub fn insert_edges(&mut self, ops: &[(NodeId, NodeId)]) -> Vec<(QNodeId, NodeId)> {
        self.last_update_ops = 0;
        if ops.is_empty() {
            return Vec::new();
        }
        let n = self.n;
        for &(u, v) in ops {
            assert!(
                !self.succ[u.index()].contains(&v),
                "edge to insert must be absent"
            );
            self.succ[u.index()].push(v);
            self.pred[v.index()].push(u);
        }

        // AFF: backward closure of the insertion sources. Pred-closed
        // by construction, so every successor of a non-affected node
        // is non-affected and the refinement below stays inside AFF.
        let mut marked = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &(u, _) in ops {
            if !marked[u.index()] {
                marked[u.index()] = true;
                stack.push(u.index());
            }
        }
        while let Some(v) = stack.pop() {
            for i in 0..self.pred[v].len() {
                let p = self.pred[v][i].index();
                self.last_update_ops += 1;
                if !marked[p] {
                    marked[p] = true;
                    stack.push(p);
                }
            }
        }
        let aff: Vec<usize> = (0..n).filter(|&v| marked[v]).collect();

        // Snapshot, then optimistically revive every label-compatible
        // affected pair. (cand ⊆ label_ok always, so truth is kept.)
        let orig = self.cand.clone();
        for &v in &aff {
            for u in 0..self.nq {
                self.cand[u * n + v] = self.label_ok[u * n + v];
            }
        }
        // Rebuild affected counters against the revived candidacy.
        for &v in &aff {
            for (e, &(_, uc)) in self.qedges.iter().enumerate() {
                self.last_update_ops += 1;
                self.cnt[e * n + v] = self.succ[v]
                    .iter()
                    .filter(|&&w| self.cand[uc.index() * n + w.index()])
                    .count() as u32;
            }
        }
        // Seed the worklist from affected pairs that already lack
        // support, then run the usual cascade. It cannot escape AFF
        // (predecessors of affected nodes are affected), and it cannot
        // falsify a pair that was true before the batch (insertions
        // only grow the relation).
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); self.nq];
        for (e, &(s, _)) in self.qedges.iter().enumerate() {
            out_edges[s.index()].push(e);
        }
        let mut worklist = Vec::new();
        for &v in &aff {
            for (u, u_edges) in out_edges.iter().enumerate() {
                if self.cand[u * n + v] && u_edges.iter().any(|&e| self.cnt[e * n + v] == 0) {
                    self.cand[u * n + v] = false;
                    worklist.push((QNodeId(u as u16), v as u32));
                }
            }
        }
        let refuted = self.propagate(worklist);
        debug_assert!(
            refuted
                .iter()
                .all(|&(u, v)| !orig[u.index() * n + v.index()]),
            "insertion refinement falsified a previously-true pair"
        );

        let mut resurrected = Vec::new();
        for &v in &aff {
            for u in 0..self.nq {
                if self.cand[u * n + v] && !orig[u * n + v] {
                    resurrected.push((QNodeId(u as u16), NodeId(v as u32)));
                }
            }
        }
        self.total_update_ops += self.last_update_ops;
        resurrected
    }

    /// The current maximum simulation relation.
    pub fn relation(&self) -> MatchRelation {
        let lists: Vec<Vec<NodeId>> = (0..self.nq)
            .map(|u| {
                (0..self.n)
                    .filter_map(|v| self.cand[u * self.n + v].then_some(NodeId(v as u32)))
                    .collect()
            })
            .collect();
        MatchRelation::from_lists(lists)
    }

    /// The current relation packaged as a [`SimResult`]; `ops` is the
    /// **last** update's cost ([`Self::last_update_ops`]), not the
    /// cumulative total.
    pub fn result(&self) -> SimResult {
        SimResult {
            relation: self.relation(),
            ops: self.last_update_ops,
        }
    }

    /// Is `(u, v)` currently in the relation?
    pub fn contains(&self, u: QNodeId, v: NodeId) -> bool {
        self.cand[u.index() * self.n + v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::{adversarial, patterns, random};
    use dgs_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Rebuilds the graph minus a set of deleted edges.
    fn graph_without(g: &Graph, deleted: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deleted.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn initial_state_matches_hhk() {
        for seed in 0..10 {
            let g = random::uniform(80, 300, 4, seed);
            let q = patterns::random_cyclic(4, 7, 4, seed + 3);
            let inc = IncrementalSim::new(&q, &g);
            assert_eq!(inc.relation(), hhk_simulation(&q, &g).relation);
        }
    }

    #[test]
    fn deletion_stream_matches_recompute() {
        for seed in 0..8 {
            let g = random::uniform(60, 240, 4, seed + 100);
            let q = patterns::random_cyclic(4, 7, 4, seed + 101);
            let mut inc = IncrementalSim::new(&q, &g);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
            let mut deleted = Vec::new();
            for _ in 0..30.min(edges.len()) {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                inc.delete_edge(u, v);
                deleted.push((u, v));
                let expect = hhk_simulation(&q, &graph_without(&g, &deleted)).relation;
                assert_eq!(inc.relation(), expect, "seed {seed} after {deleted:?}");
            }
        }
    }

    #[test]
    fn ring_break_cascades_through_aff() {
        // Deleting the closing edge of the adversarial ring falsifies
        // everything — AFF is the whole graph, and the update reports
        // every pair.
        let n = 20;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        let mut inc = IncrementalSim::new(&q, &g);
        assert!(inc.relation().is_total());
        let removed = inc.delete_edge(adversarial::b_node(n), adversarial::a_node(1));
        assert_eq!(removed.len(), 2 * n);
        assert!(inc.relation().is_empty());
    }

    #[test]
    fn unaffected_deletion_costs_little() {
        // Deleting an edge that supports nothing relevant touches a
        // bounded area.
        let n = 200;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        // Add a detached genuine 2-cycle on the side.
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        let iso = b.add_node(dgs_graph::Label(0));
        let iso2 = b.add_node(dgs_graph::Label(1));
        b.add_edge(iso, iso2);
        b.add_edge(iso2, iso);
        let g = b.build();
        let mut inc = IncrementalSim::new(&q, &g);
        assert!(inc.contains(dgs_graph::QNodeId(0), iso));
        // Breaking the side cycle kills exactly its two pairs.
        let removed = inc.delete_edge(iso, iso2);
        // Only the two isolated pairs die; the big ring is untouched.
        assert_eq!(removed.len(), 2);
        assert!(inc.last_update_ops < 20, "ops = {}", inc.last_update_ops);
        assert!(inc.contains(dgs_graph::QNodeId(0), adversarial::a_node(5)));
    }

    #[test]
    fn self_loop_deletion_removes_all_support() {
        // Regression: deleting a self-loop (v, v) can falsify a pair
        // of v itself mid-update; the support decrement for the other
        // query edges must still happen (the counters hold the
        // pre-deletion candidacy). With a stale read, v survives as a
        // candidate with phantom support.
        // Pattern: a 2-cycle plus extra edges, all one label, so every
        // query edge targets the same node row.
        use dgs_graph::{Label, PatternBuilder};
        let mut pb = PatternBuilder::new();
        let a = pb.add_node(Label(0));
        let b = pb.add_node(Label(0));
        let c = pb.add_node(Label(0));
        pb.add_edge(a, b);
        pb.add_edge(b, a);
        pb.add_edge(b, c);
        pb.add_edge(c, a);
        pb.add_edge(c, b);
        let q = pb.build();
        // Graph: a self-loop node plus a feeder.
        let mut gb = GraphBuilder::new();
        let s = gb.add_node(Label(0));
        let t = gb.add_node(Label(0));
        gb.add_edge(s, s);
        gb.add_edge(t, s);
        let g = gb.build();
        let mut inc = IncrementalSim::new(&q, &g);
        assert_eq!(inc.relation(), hhk_simulation(&q, &g).relation);
        inc.delete_edge(s, s);
        let expect = hhk_simulation(&q, &graph_without(&g, &[(s, s)])).relation;
        assert_eq!(inc.relation(), expect);
        assert!(inc.relation().is_empty());
    }

    #[test]
    fn per_update_ops_reset_and_cumulative_total() {
        let g = random::uniform(60, 240, 4, 900);
        let q = patterns::random_cyclic(4, 7, 4, 901);
        let mut inc = IncrementalSim::new(&q, &g);
        // Construction charges neither counter.
        assert_eq!(inc.last_update_ops, 0);
        assert_eq!(inc.total_update_ops, 0);
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let mut sum = 0;
        for &(u, v) in edges.iter().take(10) {
            inc.delete_edge(u, v);
            // last_update_ops describes exactly this update...
            assert!(inc.last_update_ops > 0);
            sum += inc.last_update_ops;
            // ...and the cumulative total keeps the running sum.
            assert_eq!(inc.total_update_ops, sum);
        }
    }

    #[test]
    fn batch_deletion_matches_streamed() {
        let g = random::uniform(50, 200, 4, 910);
        let q = patterns::random_cyclic(4, 6, 4, 911);
        let edges: Vec<(NodeId, NodeId)> = g.edges().take(8).collect();

        let mut streamed = IncrementalSim::new(&q, &g);
        let mut removed_s = Vec::new();
        for &(u, v) in &edges {
            removed_s.extend(streamed.delete_edge(u, v));
        }

        let mut batched = IncrementalSim::new(&q, &g);
        let mut removed_b = batched.delete_edges(&edges);
        assert_eq!(batched.relation(), streamed.relation());
        assert_eq!(batched.total_update_ops, streamed.total_update_ops);
        // The batch's last_update_ops covers the whole batch.
        assert_eq!(batched.last_update_ops, batched.total_update_ops);
        removed_s.sort();
        removed_b.sort();
        assert_eq!(removed_b, removed_s);
    }

    /// Rebuilds the graph plus a set of inserted edges.
    fn graph_with(g: &Graph, inserted: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        for &(u, v) in inserted {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Every edge absent from `g`, in a deterministic order.
    fn absent_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
        let present: std::collections::HashSet<(NodeId, NodeId)> = g.edges().collect();
        let mut out = Vec::new();
        for u in g.nodes() {
            for v in g.nodes() {
                if !present.contains(&(u, v)) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    #[test]
    fn insertion_stream_matches_recompute() {
        for seed in 0..8 {
            let g = random::uniform(40, 80, 4, seed + 200);
            let q = patterns::random_cyclic(4, 7, 4, seed + 201);
            let mut inc = IncrementalSim::new(&q, &g);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut pool = absent_edges(&g);
            let mut inserted = Vec::new();
            for _ in 0..25.min(pool.len()) {
                let i = rng.gen_range(0..pool.len());
                let (u, v) = pool.swap_remove(i);
                inc.insert_edge(u, v);
                inserted.push((u, v));
                let expect = hhk_simulation(&q, &graph_with(&g, &inserted)).relation;
                assert_eq!(inc.relation(), expect, "seed {seed} after {inserted:?}");
            }
        }
    }

    #[test]
    fn mixed_stream_matches_recompute() {
        for seed in 0..8 {
            let g = random::uniform(40, 120, 4, seed + 300);
            let q = patterns::random_cyclic(4, 7, 4, seed + 301);
            let mut inc = IncrementalSim::new(&q, &g);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut present: Vec<(NodeId, NodeId)> = g.edges().collect();
            let mut absent = absent_edges(&g);
            for step in 0..30 {
                if rng.gen_bool(0.5) && !absent.is_empty() {
                    let i = rng.gen_range(0..absent.len());
                    let (u, v) = absent.swap_remove(i);
                    inc.insert_edge(u, v);
                    present.push((u, v));
                } else if !present.is_empty() {
                    let i = rng.gen_range(0..present.len());
                    let (u, v) = present.swap_remove(i);
                    inc.delete_edge(u, v);
                    absent.push((u, v));
                }
                let mut b = GraphBuilder::new();
                for v in g.nodes() {
                    b.add_node(g.label(v));
                }
                for &(u, v) in &present {
                    b.add_edge(u, v);
                }
                let expect = hhk_simulation(&q, &b.build()).relation;
                assert_eq!(inc.relation(), expect, "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn ring_mend_resurrects_everything() {
        // The converse of `ring_break_cascades_through_aff`: breaking
        // the adversarial ring kills every pair, and re-inserting the
        // same edge must resurrect all of them. This is exactly the
        // case a naive upward cascade gets wrong — the revived pairs
        // support each other in a cycle, so only the optimistic
        // re-refinement over AFF finds the fixpoint from above.
        let n = 20;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        let mut inc = IncrementalSim::new(&q, &g);
        let removed = inc.delete_edge(adversarial::b_node(n), adversarial::a_node(1));
        assert_eq!(removed.len(), 2 * n);
        assert!(inc.relation().is_empty());
        let revived = inc.insert_edge(adversarial::b_node(n), adversarial::a_node(1));
        assert_eq!(revived.len(), 2 * n);
        assert!(inc.relation().is_total());
        assert_eq!(inc.relation(), hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn batch_insertion_matches_streamed() {
        let g = random::uniform(40, 80, 4, 920);
        let q = patterns::random_cyclic(4, 6, 4, 921);
        let edges: Vec<(NodeId, NodeId)> = absent_edges(&g).into_iter().take(8).collect();

        let mut streamed = IncrementalSim::new(&q, &g);
        let mut revived_s = Vec::new();
        for &(u, v) in &edges {
            revived_s.extend(streamed.insert_edge(u, v));
        }

        let mut batched = IncrementalSim::new(&q, &g);
        let mut revived_b = batched.insert_edges(&edges);
        assert_eq!(batched.relation(), streamed.relation());
        // Streamed resurrection can transiently revive and re-kill
        // nothing (monotone), so the sets agree exactly.
        revived_s.sort();
        revived_b.sort();
        assert_eq!(revived_b, revived_s);
        assert_eq!(
            batched.relation(),
            hhk_simulation(&q, &graph_with(&g, &edges)).relation
        );
    }

    #[test]
    fn insertion_charges_update_ops() {
        let g = random::uniform(40, 80, 4, 930);
        let q = patterns::random_cyclic(4, 6, 4, 931);
        let mut inc = IncrementalSim::new(&q, &g);
        let (u, v) = absent_edges(&g)[0];
        inc.insert_edge(u, v);
        assert!(inc.last_update_ops > 0);
        assert_eq!(inc.total_update_ops, inc.last_update_ops);
    }

    #[test]
    #[should_panic(expected = "edge to insert must be absent")]
    fn duplicate_insertion_panics() {
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(3);
        let mut inc = IncrementalSim::new(&q, &g);
        inc.insert_edge(adversarial::a_node(1), adversarial::b_node(1));
    }

    #[test]
    #[should_panic(expected = "edge to delete must exist")]
    fn double_deletion_panics() {
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(3);
        let mut inc = IncrementalSim::new(&q, &g);
        inc.delete_edge(adversarial::a_node(1), adversarial::b_node(1));
        inc.delete_edge(adversarial::a_node(1), adversarial::b_node(1));
    }
}
