//! Incremental graph simulation under edge deletions.
//!
//! The paper's incremental `lEval` (§4.2) "follow\[s\] the idea of
//! incremental pattern matching \[13\]" (Fan, Wang & Wu, TODS'13):
//! when the input shrinks, the maximum simulation relation can only
//! shrink, and the update cost is `O(|AFF|)` — proportional to the
//! *affected area*, the set of variables that actually change —
//! rather than to `|G|`.
//!
//! [`IncrementalSim`] maintains the counter state of the HHK
//! algorithm across a stream of **edge deletions** (the only
//! single-sided update under downward-monotone semantics: insertions
//! can revive candidates and require re-evaluation from above). This
//! is the centralized analogue of what every `dGPM` site does when a
//! falsification message arrives.

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};

/// Simulation state maintained across edge deletions.
pub struct IncrementalSim {
    q: Pattern,
    nq: usize,
    n: usize,
    /// Mutable adjacency (the graph shrinks over time).
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    qedges: Vec<(QNodeId, QNodeId)>,
    parent_edges: Vec<Vec<(usize, QNodeId)>>,
    cand: Vec<bool>,
    cnt: Vec<u32>,
    /// Operations performed by the last update (|AFF| proxy).
    pub last_update_ops: u64,
}

impl IncrementalSim {
    /// Builds the state by running full simulation once.
    pub fn new(q: &Pattern, g: &Graph) -> Self {
        let nq = q.node_count();
        let n = g.node_count();
        let qedges: Vec<(QNodeId, QNodeId)> = q.edges().collect();
        let ne = qedges.len();
        let mut parent_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            parent_edges[uc.index()].push((e, u));
        }
        let succ: Vec<Vec<NodeId>> = g.nodes().map(|v| g.successors(v).to_vec()).collect();
        let pred: Vec<Vec<NodeId>> = g.nodes().map(|v| g.predecessors(v).to_vec()).collect();

        let mut cand = vec![false; nq * n];
        for u in q.nodes() {
            for v in 0..n {
                cand[u.index() * n + v] = q.label(u) == g.label(NodeId(v as u32));
            }
        }
        let mut cnt = vec![0u32; ne * n];
        for v in 0..n {
            for (e, &(_, uc)) in qedges.iter().enumerate() {
                cnt[e * n + v] = succ[v]
                    .iter()
                    .filter(|&&w| cand[uc.index() * n + w.index()])
                    .count() as u32;
            }
        }
        let mut this = IncrementalSim {
            q: q.clone(),
            nq,
            n,
            succ,
            pred,
            qedges,
            parent_edges,
            cand,
            cnt,
            last_update_ops: 0,
        };
        // Initial fixpoint.
        let mut worklist = Vec::new();
        for u in this.q.nodes() {
            if this.q.is_sink(u) {
                continue;
            }
            let out_edges: Vec<usize> = this
                .qedges
                .iter()
                .enumerate()
                .filter_map(|(e, &(s, _))| (s == u).then_some(e))
                .collect();
            for v in 0..n {
                if this.cand[u.index() * n + v]
                    && out_edges.iter().any(|&e| this.cnt[e * n + v] == 0)
                {
                    this.cand[u.index() * n + v] = false;
                    worklist.push((u, v as u32));
                }
            }
        }
        this.propagate(worklist);
        this.last_update_ops = 0;
        this
    }

    fn propagate(&mut self, mut worklist: Vec<(QNodeId, u32)>) -> Vec<(QNodeId, NodeId)> {
        let n = self.n;
        let mut removed = Vec::new();
        while let Some((uq, vq)) = worklist.pop() {
            removed.push((uq, NodeId(vq)));
            for &(e, u) in &self.parent_edges[uq.index()].clone() {
                for i in 0..self.pred[vq as usize].len() {
                    let vp = self.pred[vq as usize][i];
                    self.last_update_ops += 1;
                    let c = &mut self.cnt[e * n + vp.index()];
                    debug_assert!(*c > 0, "counter underflow");
                    *c -= 1;
                    if *c == 0 && self.cand[u.index() * n + vp.index()] {
                        self.cand[u.index() * n + vp.index()] = false;
                        worklist.push((u, vp.0));
                    }
                }
            }
        }
        removed
    }

    /// Deletes edge `(u, v)` and incrementally repairs the relation.
    /// Returns the pairs that were falsified by this deletion.
    ///
    /// # Panics
    /// Panics if the edge does not exist (double deletion is a caller
    /// bug).
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Vec<(QNodeId, NodeId)> {
        self.last_update_ops = 0;
        let pos = self.succ[u.index()]
            .iter()
            .position(|&w| w == v)
            .expect("edge to delete must exist");
        self.succ[u.index()].swap_remove(pos);
        let ppos = self.pred[v.index()]
            .iter()
            .position(|&w| w == u)
            .expect("reverse edge must exist");
        self.pred[v.index()].swap_remove(ppos);

        // The deleted edge supported, for each query edge (uq, uc),
        // the pair (uq, u) iff (uc, v) is a candidate.
        let n = self.n;
        let mut worklist = Vec::new();
        for (e, &(uq, uc)) in self.qedges.clone().iter().enumerate() {
            self.last_update_ops += 1;
            if self.cand[uc.index() * n + v.index()] {
                let c = &mut self.cnt[e * n + u.index()];
                debug_assert!(*c > 0);
                *c -= 1;
                if *c == 0 && self.cand[uq.index() * n + u.index()] {
                    self.cand[uq.index() * n + u.index()] = false;
                    worklist.push((uq, u.0));
                }
            }
        }
        self.propagate(worklist)
    }

    /// The current maximum simulation relation.
    pub fn relation(&self) -> MatchRelation {
        let lists: Vec<Vec<NodeId>> = (0..self.nq)
            .map(|u| {
                (0..self.n)
                    .filter_map(|v| self.cand[u * self.n + v].then_some(NodeId(v as u32)))
                    .collect()
            })
            .collect();
        MatchRelation::from_lists(lists)
    }

    /// The current relation packaged as a [`SimResult`].
    pub fn result(&self) -> SimResult {
        SimResult {
            relation: self.relation(),
            ops: self.last_update_ops,
        }
    }

    /// Is `(u, v)` currently in the relation?
    pub fn contains(&self, u: QNodeId, v: NodeId) -> bool {
        self.cand[u.index() * self.n + v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::{adversarial, patterns, random};
    use dgs_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Rebuilds the graph minus a set of deleted edges.
    fn graph_without(g: &Graph, deleted: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deleted.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn initial_state_matches_hhk() {
        for seed in 0..10 {
            let g = random::uniform(80, 300, 4, seed);
            let q = patterns::random_cyclic(4, 7, 4, seed + 3);
            let inc = IncrementalSim::new(&q, &g);
            assert_eq!(inc.relation(), hhk_simulation(&q, &g).relation);
        }
    }

    #[test]
    fn deletion_stream_matches_recompute() {
        for seed in 0..8 {
            let g = random::uniform(60, 240, 4, seed + 100);
            let q = patterns::random_cyclic(4, 7, 4, seed + 101);
            let mut inc = IncrementalSim::new(&q, &g);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
            let mut deleted = Vec::new();
            for _ in 0..30.min(edges.len()) {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                inc.delete_edge(u, v);
                deleted.push((u, v));
                let expect = hhk_simulation(&q, &graph_without(&g, &deleted)).relation;
                assert_eq!(inc.relation(), expect, "seed {seed} after {deleted:?}");
            }
        }
    }

    #[test]
    fn ring_break_cascades_through_aff() {
        // Deleting the closing edge of the adversarial ring falsifies
        // everything — AFF is the whole graph, and the update reports
        // every pair.
        let n = 20;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        let mut inc = IncrementalSim::new(&q, &g);
        assert!(inc.relation().is_total());
        let removed = inc.delete_edge(adversarial::b_node(n), adversarial::a_node(1));
        assert_eq!(removed.len(), 2 * n);
        assert!(inc.relation().is_empty());
    }

    #[test]
    fn unaffected_deletion_costs_little() {
        // Deleting an edge that supports nothing relevant touches a
        // bounded area.
        let n = 200;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        // Add a detached genuine 2-cycle on the side.
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        let iso = b.add_node(dgs_graph::Label(0));
        let iso2 = b.add_node(dgs_graph::Label(1));
        b.add_edge(iso, iso2);
        b.add_edge(iso2, iso);
        let g = b.build();
        let mut inc = IncrementalSim::new(&q, &g);
        assert!(inc.contains(dgs_graph::QNodeId(0), iso));
        // Breaking the side cycle kills exactly its two pairs.
        let removed = inc.delete_edge(iso, iso2);
        // Only the two isolated pairs die; the big ring is untouched.
        assert_eq!(removed.len(), 2);
        assert!(inc.last_update_ops < 20, "ops = {}", inc.last_update_ops);
        assert!(inc.contains(dgs_graph::QNodeId(0), adversarial::a_node(5)));
    }

    #[test]
    #[should_panic(expected = "edge to delete must exist")]
    fn double_deletion_panics() {
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(3);
        let mut inc = IncrementalSim::new(&q, &g);
        inc.delete_edge(adversarial::a_node(1), adversarial::b_node(1));
        inc.delete_edge(adversarial::a_node(1), adversarial::b_node(1));
    }
}
