//! Flat bitset candidate sets for the simulation hot loops.
//!
//! A [`MatchSet`] stores one row per pattern variable, each row a
//! fixed-width run of `u64` words over a `u32` node arena (graph node
//! ids centrally, fragment indices inside a site).  The kernels in
//! `hhk.rs`, `dgs-core::local_eval` and the dGPM site logic all spend
//! their time asking "is `(u, v)` still a candidate?" and "kill
//! `(u, v)` exactly once" — as words, those become single-bit tests
//! plus word-at-a-time intersect/union/copy that the compiler can
//! autovectorize, replacing per-pair `HashSet` churn.
//!
//! Determinism contract: a `MatchSet` has no iteration-order freedom.
//! [`MatchSet::iter_row`] always yields columns in ascending order, so
//! every consumer that extracts match lists from rows produces
//! byte-identical output regardless of the insertion order that built
//! the set.  See `docs/MATCHSET.md`.

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// A dense `rows × cols` bit matrix: row = pattern variable, column =
/// node (or fragment index) in a `u32` arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchSet {
    rows: usize,
    cols: usize,
    /// Words per row — rows are contiguous, word-aligned runs.
    stride: usize,
    bits: Vec<u64>,
}

impl MatchSet {
    /// An all-zero set with `rows` rows over a `cols`-wide arena.
    pub fn new(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(WORD_BITS);
        MatchSet {
            rows,
            cols,
            stride,
            bits: vec![0u64; rows * stride],
        }
    }

    /// Number of rows (pattern variables).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Arena width in columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row; the unit in which bulk operations are charged.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.stride
    }

    #[inline]
    fn base(&self, row: usize) -> usize {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        row * self.stride
    }

    /// Tests bit `col` of `row`.
    #[inline]
    pub fn test(&self, row: usize, col: u32) -> bool {
        let col = col as usize;
        debug_assert!(col < self.cols, "col {col} out of {}", self.cols);
        let w = self.bits[self.base(row) + col / WORD_BITS];
        (w >> (col % WORD_BITS)) & 1 != 0
    }

    /// Sets bit `col` of `row`.
    #[inline]
    pub fn set(&mut self, row: usize, col: u32) {
        let col = col as usize;
        debug_assert!(col < self.cols, "col {col} out of {}", self.cols);
        let base = self.base(row);
        self.bits[base + col / WORD_BITS] |= 1u64 << (col % WORD_BITS);
    }

    /// Sets bit `col` of `row`, returning `true` iff it was newly set.
    #[inline]
    pub fn insert(&mut self, row: usize, col: u32) -> bool {
        let col = col as usize;
        debug_assert!(col < self.cols, "col {col} out of {}", self.cols);
        let base = self.base(row);
        let w = &mut self.bits[base + col / WORD_BITS];
        let mask = 1u64 << (col % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clears bit `col` of `row`, returning `true` iff it was set.
    #[inline]
    pub fn remove(&mut self, row: usize, col: u32) -> bool {
        let col = col as usize;
        debug_assert!(col < self.cols, "col {col} out of {}", self.cols);
        let base = self.base(row);
        let w = &mut self.bits[base + col / WORD_BITS];
        let mask = 1u64 << (col % WORD_BITS);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// The words of `row`.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        let base = self.base(row);
        &self.bits[base..base + self.stride]
    }

    /// Word-at-a-time copy of `src` into `row` (widths must agree).
    pub fn copy_row_from(&mut self, row: usize, src: &[u64]) {
        assert_eq!(src.len(), self.stride, "row width mismatch");
        let base = self.base(row);
        self.bits[base..base + self.stride].copy_from_slice(src);
    }

    /// Word-at-a-time `row &= mask`.
    pub fn intersect_row(&mut self, row: usize, mask: &[u64]) {
        assert_eq!(mask.len(), self.stride, "row width mismatch");
        let base = self.base(row);
        for (w, m) in self.bits[base..base + self.stride].iter_mut().zip(mask) {
            *w &= m;
        }
    }

    /// Word-at-a-time `row |= mask`.
    pub fn union_row(&mut self, row: usize, mask: &[u64]) {
        assert_eq!(mask.len(), self.stride, "row width mismatch");
        let base = self.base(row);
        for (w, m) in self.bits[base..base + self.stride].iter_mut().zip(mask) {
            *w |= m;
        }
    }

    /// `count_ones` over the whole row — the falsification-counter
    /// primitive (`|row|` in O(words)).
    pub fn count_row(&self, row: usize) -> u64 {
        self.row(row).iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether `row` has no set bits.
    pub fn row_is_empty(&self, row: usize) -> bool {
        self.row(row).iter().all(|&w| w == 0)
    }

    /// Zeroes every row.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Iterates the set columns of `row` in ascending order.
    #[inline]
    pub fn iter_row(&self, row: usize) -> SetBits<'_> {
        SetBits::new(self.row(row))
    }
}

/// Ascending iterator over the set bits of a row (`trailing_zeros`
/// walk, one word at a time).
pub struct SetBits<'a> {
    words: &'a [u64],
    /// Index of the word `current` was loaded from.
    word: usize,
    current: u64,
}

impl<'a> SetBits<'a> {
    /// Iterates the set bits of a raw word slice.
    pub fn new(words: &'a [u64]) -> Self {
        let current = words.first().copied().unwrap_or(0);
        SetBits {
            words,
            word: 0,
            current,
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word * WORD_BITS) as u32 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_remove_roundtrip() {
        let mut m = MatchSet::new(3, 130);
        assert!(!m.test(1, 129));
        m.set(1, 129);
        assert!(m.test(1, 129));
        assert!(!m.test(0, 129));
        assert!(!m.test(2, 129));
        assert!(m.remove(1, 129));
        assert!(!m.remove(1, 129));
        assert!(!m.test(1, 129));
    }

    #[test]
    fn insert_reports_freshness() {
        let mut m = MatchSet::new(1, 10);
        assert!(m.insert(0, 7));
        assert!(!m.insert(0, 7));
        assert!(m.test(0, 7));
    }

    #[test]
    fn iter_row_is_ascending_across_word_boundaries() {
        let mut m = MatchSet::new(2, 200);
        let cols = [0u32, 1, 63, 64, 65, 127, 128, 199];
        for &c in cols.iter().rev() {
            m.set(0, c);
        }
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), cols);
        assert_eq!(m.iter_row(1).count(), 0);
        assert_eq!(m.count_row(0), cols.len() as u64);
    }

    #[test]
    fn word_ops_match_per_bit_ops() {
        let mut a = MatchSet::new(1, 300);
        let mut b = MatchSet::new(1, 300);
        for c in (0..300).step_by(3) {
            a.set(0, c);
        }
        for c in (0..300).step_by(5) {
            b.set(0, c);
        }
        let mut inter = a.clone();
        inter.intersect_row(0, b.row(0));
        let mut uni = a.clone();
        uni.union_row(0, b.row(0));
        for c in 0..300u32 {
            assert_eq!(inter.test(0, c), a.test(0, c) && b.test(0, c));
            assert_eq!(uni.test(0, c), a.test(0, c) || b.test(0, c));
        }
        let mut copy = MatchSet::new(1, 300);
        copy.copy_row_from(0, b.row(0));
        assert_eq!(copy.row(0), b.row(0));
    }

    #[test]
    fn empty_and_zero_width_rows() {
        let m = MatchSet::new(2, 0);
        assert_eq!(m.words_per_row(), 0);
        assert!(m.row_is_empty(0));
        assert_eq!(m.iter_row(1).count(), 0);
        let mut n = MatchSet::new(1, 64);
        assert!(n.row_is_empty(0));
        n.set(0, 63);
        assert!(!n.row_is_empty(0));
        n.clear();
        assert!(n.row_is_empty(0));
    }
}
