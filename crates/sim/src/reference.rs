//! The pre-bitset reference kernel: counter-based simulation over
//! `HashSet`/`HashMap`-of-pairs storage.
//!
//! This is the representation the hot paths used before
//! [`crate::matchset`]: candidate pairs live in a `HashSet<(u16, u32)>`
//! and the per-(query-edge, node) support counters in a
//! `HashMap<(usize, u32), u32>`, so every test, kill and decrement pays
//! a hash probe.  The algorithm is the same HHK'95 worklist as
//! [`crate::hhk::hhk_simulation`] — only the data layout differs —
//! which makes this kernel double duty:
//!
//! * the **oracle** for proptest equivalence of the bitset kernels, and
//! * the **sequential HashSet baseline** that `dgs-bench --area
//!   executors` times the bitset path against (the ≥2× gate in
//!   `benchmarks/BENCH_executors.json`).

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};
use std::collections::{HashMap, HashSet};

/// Computes the maximum simulation relation with hash-table pair
/// storage (the old hot-path representation).
pub fn hashset_simulation(q: &Pattern, g: &Graph) -> SimResult {
    let nq = q.node_count();
    let n = g.node_count() as u32;
    let mut ops: u64 = 0;

    let qedges: Vec<(QNodeId, QNodeId)> = q.edges().collect();
    let mut parent_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
    for (e, &(u, uc)) in qedges.iter().enumerate() {
        parent_edges[uc.index()].push((e, u));
    }

    // Candidate pairs (u, v), label-matched.
    let mut cand: HashSet<(u16, u32)> = HashSet::new();
    for u in q.nodes() {
        let lu = q.label(u);
        for v in 0..n {
            ops += 1;
            if g.label(NodeId(v)) == lu {
                cand.insert((u.0, v));
            }
        }
    }

    // cnt[(e, v)] = |succ(v) ∩ cand(uc)| for e = (u, uc): a hash probe
    // per (successor × query edge) — the churn the bitset rows remove.
    let mut cnt: HashMap<(usize, u32), u32> = HashMap::new();
    for v in 0..n {
        let succs = g.successors(NodeId(v));
        for (e, &(_, uc)) in qedges.iter().enumerate() {
            let mut c = 0u32;
            for &w in succs {
                ops += 1;
                if cand.contains(&(uc.0, w.0)) {
                    c += 1;
                }
            }
            cnt.insert((e, v), c);
        }
    }

    // Seed the worklist with pairs that fail immediately.
    let mut worklist: Vec<(QNodeId, u32)> = Vec::new();
    for u in q.nodes() {
        if q.is_sink(u) {
            continue;
        }
        let out_edges: Vec<usize> = qedges
            .iter()
            .enumerate()
            .filter_map(|(e, &(src, _))| (src == u).then_some(e))
            .collect();
        for v in 0..n {
            if !cand.contains(&(u.0, v)) {
                continue;
            }
            ops += 1;
            if out_edges.iter().any(|&e| cnt[&(e, v)] == 0) {
                cand.remove(&(u.0, v));
                worklist.push((u, v));
            }
        }
    }

    // Propagate deaths.
    while let Some((uc, vc)) = worklist.pop() {
        for &(e, u) in &parent_edges[uc.index()] {
            for &vp in g.predecessors(NodeId(vc)) {
                ops += 1;
                let c = cnt.get_mut(&(e, vp.0)).expect("seeded counter");
                debug_assert!(*c > 0, "counter underflow");
                *c -= 1;
                if *c == 0 && cand.remove(&(u.0, vp.0)) {
                    worklist.push((u, vp.0));
                }
            }
        }
    }

    let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); nq];
    for &(u, v) in &cand {
        lists[u as usize].push(NodeId(v));
    }
    for l in &mut lists {
        l.sort_unstable();
    }
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use crate::naive::naive_simulation;
    use dgs_graph::generate::patterns::random_cyclic;
    use dgs_graph::generate::random::uniform;
    use dgs_graph::generate::social::fig1;

    #[test]
    fn fig1_matches_expected() {
        let w = fig1();
        let r = hashset_simulation(&w.pattern, &w.graph);
        assert!(r.matches());
        let mut got: Vec<_> = r.relation.iter().collect();
        let mut expected = w.expected_matches();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn agrees_with_both_kernels_on_random_inputs() {
        for seed in 0..20 {
            let g = uniform(60, 180, 4, seed);
            let q = random_cyclic(4, 7, 4, seed * 31 + 1);
            let hash = hashset_simulation(&q, &g);
            assert_eq!(
                hash.relation,
                hhk_simulation(&q, &g).relation,
                "seed {seed}"
            );
            assert_eq!(
                hash.relation,
                naive_simulation(&q, &g).relation,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph_never_matches() {
        let q = random_cyclic(3, 4, 3, 0);
        let g = dgs_graph::GraphBuilder::new().build();
        let r = hashset_simulation(&q, &g);
        assert!(!r.matches());
        assert_eq!(r.relation.len(), 0);
    }
}
