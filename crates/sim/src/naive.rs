//! Naive fixpoint graph simulation.
//!
//! The textbook downward iteration: start from the label-compatible
//! relation and repeatedly delete pairs whose child condition fails,
//! until nothing changes. Worst case `O(|Vq|·|V|·(|V| + |E|))` per
//! sweep times `O(|Vq|·|V|)` sweeps — fine for the small graphs in
//! tests, where it cross-checks the optimized [`crate::hhk`] algorithm
//! and the distributed engines.

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, NodeId, Pattern};

/// Computes the maximum simulation relation by naive iteration.
pub fn naive_simulation(q: &Pattern, g: &Graph) -> SimResult {
    let nq = q.node_count();
    let n = g.node_count();
    let mut ops: u64 = 0;

    // sim[u][v]: is (u, v) still a candidate?
    let mut sim: Vec<Vec<bool>> = (0..nq)
        .map(|u| {
            (0..n)
                .map(|v| {
                    ops += 1;
                    q.label(dgs_graph::QNodeId(u as u16)) == g.label(NodeId(v as u32))
                })
                .collect()
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        for u in q.nodes() {
            for v in 0..n {
                if !sim[u.index()][v] {
                    continue;
                }
                let vid = NodeId(v as u32);
                let ok = q.children(u).iter().all(|&uc| {
                    g.successors(vid).iter().any(|&vc| {
                        ops += 1;
                        sim[uc.index()][vc.index()]
                    })
                });
                if !ok {
                    sim[u.index()][v] = false;
                    changed = true;
                }
            }
        }
    }

    let lists: Vec<Vec<NodeId>> = sim
        .into_iter()
        .map(|row| {
            row.into_iter()
                .enumerate()
                .filter_map(|(v, keep)| keep.then_some(NodeId(v as u32)))
                .collect()
        })
        .collect();
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::{GraphBuilder, Label, PatternBuilder, QNodeId};

    #[test]
    fn single_edge_pattern() {
        // Q: A -> B. G: a0 -> b0, a1 (no successor).
        let mut qb = PatternBuilder::new();
        let qa = qb.add_node(Label(0));
        let qb_ = qb.add_node(Label(1));
        qb.add_edge(qa, qb_);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        let a0 = gb.add_node(Label(0));
        let b0 = gb.add_node(Label(1));
        let a1 = gb.add_node(Label(0));
        gb.add_edge(a0, b0);
        let g = gb.build();

        let r = naive_simulation(&q, &g);
        assert!(r.matches());
        assert!(r.relation.contains(qa, a0));
        assert!(!r.relation.contains(qa, a1));
        assert!(r.relation.contains(qb_, b0));
    }

    #[test]
    fn fig1_matches_expected() {
        let w = fig1();
        let r = naive_simulation(&w.pattern, &w.graph);
        assert!(r.matches());
        let mut got: Vec<_> = r.relation.iter().collect();
        let mut expected = w.expected_matches();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn cycle_query_on_dag_is_empty() {
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(0));
        qb.add_edge(a, b);
        qb.add_edge(b, a);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        let x = gb.add_node(Label(0));
        let y = gb.add_node(Label(0));
        gb.add_edge(x, y);
        let g = gb.build();

        let r = naive_simulation(&q, &g);
        assert!(!r.matches());
        assert!(r.answer().is_empty());
    }

    #[test]
    fn cycle_query_on_cycle_matches() {
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        qb.add_edge(b, a);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        let x = gb.add_node(Label(0));
        let y = gb.add_node(Label(1));
        gb.add_edge(x, y);
        gb.add_edge(y, x);
        let g = gb.build();

        let r = naive_simulation(&q, &g);
        assert!(r.matches());
        assert_eq!(r.relation.len(), 2);
    }

    #[test]
    fn sink_query_node_matches_all_label_nodes() {
        let mut qb = PatternBuilder::new();
        qb.add_node(Label(2));
        let q = qb.build();
        let mut gb = GraphBuilder::new();
        gb.add_node(Label(2));
        gb.add_node(Label(2));
        gb.add_node(Label(1));
        let g = gb.build();
        let r = naive_simulation(&q, &g);
        assert_eq!(r.relation.matches_of(QNodeId(0)).len(), 2);
    }

    #[test]
    fn simulation_is_many_to_many() {
        // Graph simulation allows one data node to match several query
        // nodes: Q: a1 -> b, a2 -> b with same labels.
        let mut qb = PatternBuilder::new();
        let a1 = qb.add_node(Label(0));
        let a2 = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a1, b);
        qb.add_edge(a2, b);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        let x = gb.add_node(Label(0));
        let y = gb.add_node(Label(1));
        gb.add_edge(x, y);
        let g = gb.build();

        let r = naive_simulation(&q, &g);
        assert!(r.relation.contains(a1, x));
        assert!(r.relation.contains(a2, x));
    }
}
