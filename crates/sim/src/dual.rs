//! Dual simulation: the child *and* parent conditions.
//!
//! Graph simulation (§2.1) only constrains successors. *Dual
//! simulation* [Ma et al., PVLDB'11 — the paper's reference \[24\]]
//! additionally requires every query *parent* edge to be witnessed:
//! for `(u, v) ∈ R` and every `(u', u) ∈ Eq` there is `(v', v) ∈ E`
//! with `(u', v') ∈ R`. It refines graph simulation (every dual match
//! is a simulation match) and is the inner loop of strong simulation
//! ([`crate::strong`]).

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};

/// Computes the maximum dual simulation relation with the same
/// counter-based scheme as [`crate::hhk`], one counter per query edge
/// *in each direction*.
pub fn dual_simulation(q: &Pattern, g: &Graph) -> SimResult {
    let nq = q.node_count();
    let n = g.node_count();
    let mut ops: u64 = 0;

    let qedges: Vec<(QNodeId, QNodeId)> = q.edges().collect();
    let ne = qedges.len();
    // Forward counters: cnt_f[e * n + v] = |{v' ∈ succ(v) : cand(uc, v')}|.
    // Backward counters: cnt_b[e * n + v] = |{v' ∈ pred(v) : cand(u, v')}|
    // for e = (u, uc), maintained for the pair (uc, v).
    let mut cand = vec![false; nq * n];
    for u in q.nodes() {
        let lu = q.label(u);
        for v in 0..n {
            ops += 1;
            cand[u.index() * n + v] = g.label(NodeId(v as u32)) == lu;
        }
    }

    let mut cnt_f = vec![0u32; ne * n];
    let mut cnt_b = vec![0u32; ne * n];
    for v in 0..n {
        let vid = NodeId(v as u32);
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            ops += 1;
            cnt_f[e * n + v] = g
                .successors(vid)
                .iter()
                .filter(|&&w| cand[uc.index() * n + w.index()])
                .count() as u32;
            cnt_b[e * n + v] = g
                .predecessors(vid)
                .iter()
                .filter(|&&w| cand[u.index() * n + w.index()])
                .count() as u32;
        }
    }

    // Initial worklist: any candidate with an unsupported edge in
    // either direction.
    let mut worklist: Vec<(QNodeId, u32)> = Vec::new();
    for u in q.nodes() {
        let out_edges: Vec<usize> = qedges
            .iter()
            .enumerate()
            .filter_map(|(e, &(s, _))| (s == u).then_some(e))
            .collect();
        let in_edges: Vec<usize> = qedges
            .iter()
            .enumerate()
            .filter_map(|(e, &(_, t))| (t == u).then_some(e))
            .collect();
        for v in 0..n {
            if !cand[u.index() * n + v] {
                continue;
            }
            ops += 1;
            let dead = out_edges.iter().any(|&e| cnt_f[e * n + v] == 0)
                || in_edges.iter().any(|&e| cnt_b[e * n + v] == 0);
            if dead {
                cand[u.index() * n + v] = false;
                worklist.push((u, v as u32));
            }
        }
    }

    let mut parent_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
    let mut child_edges: Vec<Vec<(usize, QNodeId)>> = vec![Vec::new(); nq];
    for (e, &(u, uc)) in qedges.iter().enumerate() {
        parent_edges[uc.index()].push((e, u));
        child_edges[u.index()].push((e, uc));
    }

    while let Some((uq, vq)) = worklist.pop() {
        // (uq, vq) died: decrement forward support of predecessors...
        for &(e, u) in &parent_edges[uq.index()] {
            for &vp in g.predecessors(NodeId(vq)) {
                ops += 1;
                let c = &mut cnt_f[e * n + vp.index()];
                *c -= 1;
                if *c == 0 && cand[u.index() * n + vp.index()] {
                    cand[u.index() * n + vp.index()] = false;
                    worklist.push((u, vp.0));
                }
            }
        }
        // ... and backward support of successors.
        for &(e, uc) in &child_edges[uq.index()] {
            for &vs in g.successors(NodeId(vq)) {
                ops += 1;
                let c = &mut cnt_b[e * n + vs.index()];
                *c -= 1;
                if *c == 0 && cand[uc.index() * n + vs.index()] {
                    cand[uc.index() * n + vs.index()] = false;
                    worklist.push((uc, vs.0));
                }
            }
        }
    }

    let lists: Vec<Vec<NodeId>> = (0..nq)
        .map(|u| {
            (0..n)
                .filter_map(|v| cand[u * n + v].then_some(NodeId(v as u32)))
                .collect()
        })
        .collect();
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::{GraphBuilder, Label, PatternBuilder};

    #[test]
    fn dual_refines_simulation() {
        for seed in 0..15 {
            let g = random::uniform(80, 280, 4, seed);
            let q = patterns::random_cyclic(4, 7, 4, seed + 5);
            let sim = hhk_simulation(&q, &g).relation;
            let dual = dual_simulation(&q, &g).relation;
            for (u, v) in dual.iter() {
                assert!(sim.contains(u, v), "dual ⊄ sim at seed {seed}");
            }
        }
    }

    #[test]
    fn parent_condition_prunes() {
        // Q: a -> b. G: a0 -> b0, b1 (no in-edge).
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        let q = qb.build();
        let mut gb = GraphBuilder::new();
        let a0 = gb.add_node(Label(0));
        let b0 = gb.add_node(Label(1));
        let b1 = gb.add_node(Label(1));
        gb.add_edge(a0, b0);
        let g = gb.build();
        let sim = hhk_simulation(&q, &g).relation;
        let dual = dual_simulation(&q, &g).relation;
        // Plain simulation keeps b1 (sink query node matches by
        // label); dual simulation prunes it (no incoming a-edge).
        assert!(sim.contains(b, b1));
        assert!(!dual.contains(b, b1));
        assert!(dual.contains(a, a0));
        assert!(dual.contains(b, b0));
    }

    #[test]
    fn fig1_dual_collapses() {
        // The parent condition is brutal on Fig. 1: a dual F-match
        // needs an incoming YB edge, which f2 lacks; its death kills
        // yf1 (only F-successor gone), and the recommendation cycle
        // unravels entirely. This is the §2.1 point in its strongest
        // form: refinements of simulation miss the matches graph
        // simulation was chosen to find.
        let w = fig1();
        let dual = dual_simulation(&w.pattern, &w.graph).relation;
        assert!(dual.is_empty());
        // ... while plain simulation finds 11 matches.
        assert_eq!(hhk_simulation(&w.pattern, &w.graph).relation.len(), 11);
    }

    #[test]
    fn empty_pattern_edge_cases() {
        let mut qb = PatternBuilder::new();
        qb.add_node(Label(0));
        let q = qb.build();
        let mut gb = GraphBuilder::new();
        gb.add_node(Label(0));
        let g = gb.build();
        let r = dual_simulation(&q, &g);
        assert!(r.matches());
    }
}
