//! The simulation preorder `≤` of a graph over itself, and the
//! induced *simulation equivalence* `≡`.
//!
//! `a ≤ b` ("`b` simulates `a`") iff `L(a) = L(b)` and for every edge
//! `(a, a')` there is an edge `(b, b')` with `a' ≤ b'`. The maximum
//! such relation is a preorder; its kernel `a ≡ b ⟺ a ≤ b ∧ b ≤ a` is
//! *simulation equivalence*, the coarsest node equivalence that
//! query-preserving compression for simulation queries can merge
//! (see [`crate::compress`], after Fan et al., *Query Preserving Graph
//! Compression*, SIGMOD 2012 — the "graph compression" direction named
//! in §7 of the VLDB'14 paper).
//!
//! Two facts proved here as tests and relied on by [`crate::compress`]:
//!
//! 1. **Upward closure**: if `(u, v) ∈ Q(G)` and `v ≤ w` then
//!    `(u, w) ∈ Q(G)`. (The relation
//!    `R' = {(u, w) | ∃v: (u,v) ∈ Q(G), v ≤ w}` is itself a
//!    simulation: for a query edge `(u, u')`, a witness child `v'` of
//!    `v` with `(u', v') ∈ Q(G)` maps through `v ≤ w` to a child `w'`
//!    of `w` with `v' ≤ w'`.)
//! 2. `≤` is compatible with the quotient: classes inherit a preorder
//!    that is a self-simulation of the quotient graph.
//!
//! The algorithm is the counter-based HHK scheme instantiated with the
//! graph as its own pattern, using an `O(|V|²)` counter table
//! `cnt[a][b] = |succ(b) ∩ sim-candidates(a)|` — a pair `(a, b)` dies
//! when `cnt[a'][b] = 0` for some child `a'` of `a`. Time
//! `O(|V||E|)`, space `O(|V|²)`; intended for the moderate graph sizes
//! where compression itself is worthwhile per fragment.

use dgs_graph::{Graph, NodeId};

/// The maximum self-simulation relation of a graph, as a dense
/// boolean matrix (`a ≤ b` at `a * n + b`).
pub struct SimPreorder {
    n: usize,
    le: Vec<bool>,
    /// Basic operations charged while computing the preorder.
    pub ops: u64,
}

impl SimPreorder {
    /// Computes the maximum self-simulation of `g`.
    ///
    /// # Panics
    /// Panics if `|V|²` does not fit in memory practical terms are the
    /// caller's responsibility; intended for `|V|` up to a few
    /// thousand.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let mut ops: u64 = 0;

        // cand[a * n + b] = current candidacy of a ≤ b.
        let mut cand = vec![false; n * n];
        for a in 0..n {
            let la = g.label(NodeId(a as u32));
            for b in 0..n {
                ops += 1;
                cand[a * n + b] = g.label(NodeId(b as u32)) == la;
            }
        }

        // cnt[a * n + b] = |{b' ∈ succ(b) : cand[a][b']}|.
        // Initially cand[a][b'] is pure label equality, so seed from a
        // per-node successor-label histogram.
        let label_bound = g.label_bound();
        let mut succ_labels = vec![0u32; n * label_bound.max(1)];
        for b in 0..n {
            for &b2 in g.successors(NodeId(b as u32)) {
                ops += 1;
                succ_labels[b * label_bound + g.label(b2).index()] += 1;
            }
        }
        let mut cnt = vec![0u32; n * n];
        for a in 0..n {
            let la = g.label(NodeId(a as u32)).index();
            for b in 0..n {
                ops += 1;
                cnt[a * n + b] = succ_labels[b * label_bound + la];
            }
        }

        // Initial worklist: candidate pairs (a, b) where some child a'
        // of a has no label-matched successor at b.
        let mut worklist: Vec<(u32, u32)> = Vec::new();
        for a in 0..n {
            'pairs: for b in 0..n {
                if !cand[a * n + b] {
                    continue;
                }
                for &a2 in g.successors(NodeId(a as u32)) {
                    ops += 1;
                    if cnt[a2.index() * n + b] == 0 {
                        cand[a * n + b] = false;
                        worklist.push((a as u32, b as u32));
                        continue 'pairs;
                    }
                }
            }
        }

        // Falsification cascade: when (a, b) dies, each predecessor b0
        // of b loses one witness for a; if cnt[a][b0] hits zero, every
        // candidate (a0, b0) with a0 a predecessor of a dies.
        while let Some((a, b)) = worklist.pop() {
            for &b0 in g.predecessors(NodeId(b)) {
                ops += 1;
                let c = &mut cnt[a as usize * n + b0.index()];
                debug_assert!(*c > 0, "self-simulation counter underflow");
                *c -= 1;
                if *c == 0 {
                    for &a0 in g.predecessors(NodeId(a)) {
                        ops += 1;
                        let slot = a0.index() * n + b0.index();
                        if cand[slot] {
                            cand[slot] = false;
                            worklist.push((a0.0, b0.0));
                        }
                    }
                }
            }
        }

        SimPreorder { n, le: cand, ops }
    }

    /// Number of nodes of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// True iff `a ≤ b` (`b` simulates `a`).
    #[inline]
    pub fn le(&self, a: NodeId, b: NodeId) -> bool {
        self.le[a.index() * self.n + b.index()]
    }

    /// True iff `a ≡ b` (mutual simulation).
    #[inline]
    pub fn equivalent(&self, a: NodeId, b: NodeId) -> bool {
        self.le(a, b) && self.le(b, a)
    }

    /// Number of pairs in the preorder (including the diagonal).
    pub fn pair_count(&self) -> usize {
        self.le.iter().filter(|&&x| x).count()
    }

    /// Partitions the nodes into simulation-equivalence classes.
    /// Returns `(class_of, class_count)`; class ids are dense and
    /// ordered by their smallest member.
    pub fn equivalence_classes(&self) -> (Vec<u32>, usize) {
        let n = self.n;
        let mut class_of = vec![u32::MAX; n];
        let mut next = 0u32;
        for a in 0..n {
            if class_of[a] != u32::MAX {
                continue;
            }
            class_of[a] = next;
            for (b, cls) in class_of.iter_mut().enumerate().skip(a + 1) {
                if *cls == u32::MAX && self.equivalent(NodeId(a as u32), NodeId(b as u32)) {
                    *cls = next;
                }
            }
            next += 1;
        }
        (class_of, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::random;
    use dgs_graph::{GraphBuilder, Label, Pattern, PatternBuilder};

    /// Brute-force greatest fixpoint for cross-checking.
    fn naive_preorder(g: &Graph) -> Vec<bool> {
        let n = g.node_count();
        let mut le = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                le[a * n + b] = g.label(NodeId(a as u32)) == g.label(NodeId(b as u32));
            }
        }
        loop {
            let mut changed = false;
            for a in 0..n {
                for b in 0..n {
                    if !le[a * n + b] {
                        continue;
                    }
                    let ok = g.successors(NodeId(a as u32)).iter().all(|&a2| {
                        g.successors(NodeId(b as u32))
                            .iter()
                            .any(|&b2| le[a2.index() * n + b2.index()])
                    });
                    if !ok {
                        le[a * n + b] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                return le;
            }
        }
    }

    fn graph_as_pattern(g: &Graph) -> Pattern {
        let mut b = PatternBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            b.add_edge(
                dgs_graph::QNodeId(u.0 as u16),
                dgs_graph::QNodeId(v.0 as u16),
            );
        }
        b.build()
    }

    #[test]
    fn preorder_is_reflexive_and_transitive() {
        let g = random::uniform(60, 180, 4, 7);
        let p = SimPreorder::compute(&g);
        for a in g.nodes() {
            assert!(p.le(a, a), "reflexivity at {a:?}");
        }
        for a in g.nodes() {
            for b in g.nodes() {
                if !p.le(a, b) {
                    continue;
                }
                for c in g.nodes() {
                    if p.le(b, c) {
                        assert!(p.le(a, c), "transitivity {a:?} ≤ {b:?} ≤ {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_naive_fixpoint() {
        for seed in 0..8 {
            let g = random::uniform(40, 120, 3, seed);
            let p = SimPreorder::compute(&g);
            let naive = naive_preorder(&g);
            assert_eq!(p.le, naive, "seed {seed}");
        }
    }

    #[test]
    fn matches_hhk_with_graph_as_pattern() {
        // a ≤ b iff (a, b) is in the maximum simulation of pattern G
        // in graph G.
        let g = random::uniform(50, 150, 4, 11);
        let p = SimPreorder::compute(&g);
        let q = graph_as_pattern(&g);
        let rel = hhk_simulation(&q, &g).relation;
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(
                    p.le(a, b),
                    rel.contains(dgs_graph::QNodeId(a.0 as u16), b),
                    "({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn chain_orders_by_remaining_length() {
        // Path a0 -> a1 -> a2 (same label): a node simulates another
        // iff it can extend every onward walk, so a2 ≤ a1 ≤ a0 and not
        // conversely.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(Label(0));
        let a1 = b.add_node(Label(0));
        let a2 = b.add_node(Label(0));
        b.add_edge(a0, a1);
        b.add_edge(a1, a2);
        let g = b.build();
        let p = SimPreorder::compute(&g);
        assert!(p.le(a2, a1) && p.le(a1, a0) && p.le(a2, a0));
        assert!(!p.le(a0, a1) && !p.le(a1, a2));
        let (_, classes) = p.equivalence_classes();
        assert_eq!(classes, 3);
    }

    #[test]
    fn cycle_nodes_all_equivalent() {
        // A uniform-label cycle: every node simulates every other.
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..5).map(|_| b.add_node(Label(1))).collect();
        for i in 0..5 {
            b.add_edge(nodes[i], nodes[(i + 1) % 5]);
        }
        let g = b.build();
        let p = SimPreorder::compute(&g);
        let (class_of, classes) = p.equivalence_classes();
        assert_eq!(classes, 1, "{class_of:?}");
        assert_eq!(p.pair_count(), 25);
    }

    #[test]
    fn upward_closure_of_matches() {
        // Fact 1 of the module docs: match sets of any pattern are
        // upward-closed under ≤.
        use dgs_graph::generate::patterns;
        for seed in 0..6 {
            let g = random::uniform(50, 150, 3, seed);
            let p = SimPreorder::compute(&g);
            let q = patterns::random_cyclic(3, 5, 3, seed + 100);
            let rel = hhk_simulation(&q, &g).relation;
            for u in q.nodes() {
                for &v in rel.matches_of(u) {
                    for w in g.nodes() {
                        if p.le(v, w) {
                            assert!(
                                rel.contains(u, w),
                                "seed {seed}: ({u:?}, {v:?}) ∈ Q(G), {v:?} ≤ {w:?}, but ({u:?}, {w:?}) ∉ Q(G)"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn labels_separate_classes() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(Label(0));
        let y = b.add_node(Label(1));
        let g = b.build();
        let p = SimPreorder::compute(&g);
        assert!(!p.le(x, y) && !p.le(y, x));
        assert_eq!(p.equivalence_classes().1, 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let p = SimPreorder::compute(&g);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.pair_count(), 0);
        assert_eq!(p.equivalence_classes().1, 0);
    }
}
