//! Query-preserving graph compression for simulation queries.
//!
//! §7 of the VLDB'14 paper names "graph compression" as the companion
//! technique for querying real-life graphs; the construction here is
//! the simulation-query half of Fan, Li, Wang & Wu, *Query Preserving
//! Graph Compression* (SIGMOD 2012): merge the nodes of each
//! **simulation-equivalence** class ([`crate::preorder`]) into one
//! node of a compressed graph `Gc`, keep an edge `[v] → [w]` iff some
//! member edge exists, and answer any simulation pattern on `Gc`
//! instead of `G` — *exactly*, for every pattern, with no
//! decompression of `G` itself.
//!
//! **Theorem** (why this is exact). Write `v ≤ w` for the simulation
//! preorder of `G` and `[v]` for the class of `v`.
//!
//! 1. *Matches are upward-closed*: `(u, v) ∈ Q(G)` and `v ≤ w` imply
//!    `(u, w) ∈ Q(G)` — the relation `{(u, w) | ∃v ≤ w, (u,v) ∈ Q(G)}`
//!    satisfies the simulation conditions (a witness child `v'` of `v`
//!    maps along `v ≤ w` to a child `w'` of `w` with `v' ≤ w'`).
//! 2. *Projection*: `{(u, [v]) | (u, v) ∈ Q(G)}` is a simulation on
//!    `Gc` (class edges include all member edges), so
//!    `(u, v) ∈ Q(G) ⟹ (u, [v]) ∈ Q(Gc)`.
//! 3. *Lifting*: the class preorder `[a] ≤c [b] ⟺ a ≤ b` is itself a
//!    self-simulation of `Gc` (if `[a] → [a']` via member edge
//!    `(a1, a1')` with `a1 ≡ a ≤ b`, then `b` has a child `b'` with
//!    `a1' ≤ b'`, giving `[b] → [b']` and `[a'] ≤c [b']`). Hence
//!    `Q(Gc)` is upward-closed under `≤c` by fact 1 applied to `Gc`,
//!    and `{(u, v) | (u, [v]) ∈ Q(Gc)}` satisfies the simulation
//!    conditions on `G`: a class witness `[v] → [w]` with
//!    `(u', [w]) ∈ Q(Gc)` comes from a member edge `(v1, w1)`,
//!    `v1 ≤ v` yields a child `w2` of `v` with `w1 ≤ w2`, and upward
//!    closure moves the match from `[w1]` to `[w2]`. So
//!    `(u, [v]) ∈ Q(Gc) ⟹ (u, v) ∈ Q(G)`.
//!
//! Both inclusions together give `(u, v) ∈ Q(G) ⟺ (u, [v]) ∈ Q(Gc)`,
//! which is what [`CompressedGraph::query`] implements (answers are
//! reported over `Gc` classes and expanded to original node ids on
//! demand).
//!
//! The compression ratio depends on how much simulation-equivalent
//! redundancy the graph carries; label-sparse scale-free graphs
//! typically compress their sink-heavy periphery aggressively (every
//! same-label sink is equivalent). [`compress_bisim`] offers the
//! cheaper bisimulation-based variant ([`crate::bisim`]) that merges
//! less but runs in near-linear time, the practical preprocessing for
//! big fragments.

use crate::hhk::hhk_simulation;
use crate::match_relation::{MatchRelation, SimResult};
use crate::preorder::SimPreorder;
use dgs_graph::{Graph, GraphBuilder, NodeId, Pattern};

/// A graph compressed by a simulation-preserving node equivalence.
#[derive(Clone, Debug)]
pub struct CompressedGraph {
    /// The quotient graph `Gc`.
    pub graph: Graph,
    /// Class id of every original node.
    pub class_of: Vec<u32>,
    /// Original members of every class, sorted.
    pub members: Vec<Vec<NodeId>>,
}

impl CompressedGraph {
    /// Builds the quotient of `g` under the class assignment
    /// (`class_count` dense classes; every class must be inhabited and
    /// label-homogeneous).
    pub fn from_classes(g: &Graph, class_of: Vec<u32>, class_count: usize) -> Self {
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); class_count];
        let mut labels = vec![dgs_graph::Label(0); class_count];
        for v in g.nodes() {
            let c = class_of[v.index()] as usize;
            debug_assert!(
                members[c].is_empty() || labels[c] == g.label(v),
                "class {c} mixes labels"
            );
            labels[c] = g.label(v);
            members[c].push(v);
        }
        debug_assert!(members.iter().all(|m| !m.is_empty()), "empty class");
        let mut b = GraphBuilder::with_capacity(class_count, g.edge_count());
        for &l in &labels {
            b.add_node(l);
        }
        for (u, v) in g.edges() {
            b.add_edge(NodeId(class_of[u.index()]), NodeId(class_of[v.index()]));
        }
        CompressedGraph {
            graph: b.build(),
            class_of,
            members,
        }
    }

    /// Number of classes (nodes of `Gc`).
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// Compression ratio `|Gc| / |G|` in the paper's size measure
    /// (`|V| + |E|`), given the original graph size.
    pub fn ratio(&self, original_size: usize) -> f64 {
        self.graph.size() as f64 / original_size.max(1) as f64
    }

    /// Answers a simulation pattern on the compressed graph. The
    /// returned relation is over **class** node ids of `Gc`; use
    /// [`CompressedGraph::expand`] for original node ids.
    pub fn query(&self, q: &Pattern) -> SimResult {
        hhk_simulation(q, &self.graph)
    }

    /// Expands a class-level relation to original node ids.
    pub fn expand(&self, class_relation: &MatchRelation) -> MatchRelation {
        let lists = (0..class_relation.query_nodes())
            .map(|u| {
                class_relation
                    .matches_of(dgs_graph::QNodeId(u as u16))
                    .iter()
                    .flat_map(|&c| self.members[c.index()].iter().copied())
                    .collect()
            })
            .collect();
        MatchRelation::from_lists(lists)
    }

    /// Convenience: query and expand in one step, returning the
    /// original-node relation (equal to `hhk_simulation(q, g)` on the
    /// uncompressed graph, by the module-level theorem).
    pub fn query_expanded(&self, q: &Pattern) -> MatchRelation {
        self.expand(&self.query(q).relation)
    }
}

/// Compresses `g` by **simulation equivalence** (maximal merging;
/// `O(|V||E|)` time, `O(|V|²)` space — see [`crate::preorder`]).
pub fn compress_simeq(g: &Graph) -> CompressedGraph {
    let pre = SimPreorder::compute(g);
    let (class_of, count) = pre.equivalence_classes();
    CompressedGraph::from_classes(g, class_of, count)
}

/// Compresses `g` by **bisimulation** (near-linear time, merges a
/// subset of what [`compress_simeq`] merges — see [`crate::bisim`]).
pub fn compress_bisim(g: &Graph) -> CompressedGraph {
    let p = crate::bisim::bisimulation_partition(g);
    CompressedGraph::from_classes(g, p.class_of.clone(), p.class_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{dag, patterns, random};
    use dgs_graph::{Label, PatternBuilder};

    fn assert_exact(g: &Graph, c: &CompressedGraph, q: &Pattern, tag: &str) {
        let oracle = hhk_simulation(q, g).relation;
        let got = c.query_expanded(q);
        assert_eq!(got, oracle, "{tag}");
    }

    #[test]
    fn simeq_compression_is_exact_on_random_graphs() {
        for seed in 0..8 {
            let g = random::uniform(70, 220, 3, seed);
            let c = compress_simeq(&g);
            for qseed in 0..3 {
                let q = patterns::random_cyclic(3, 5, 3, seed * 10 + qseed);
                assert_exact(&g, &c, &q, &format!("seed {seed}/{qseed}"));
            }
        }
    }

    #[test]
    fn bisim_compression_is_exact_on_random_graphs() {
        for seed in 0..8 {
            let g = random::uniform(80, 260, 3, seed + 50);
            let c = compress_bisim(&g);
            let q = patterns::random_dag_with_depth(4, 6, 3, 3, seed);
            assert_exact(&g, &c, &q, &format!("seed {seed}"));
        }
    }

    #[test]
    fn simeq_never_coarser_than_exactness_allows_on_dags() {
        for seed in 0..5 {
            let g = dag::citation_like(150, 400, 4, seed);
            let c = compress_simeq(&g);
            let q = patterns::random_dag_with_depth(4, 6, 3, 4, seed + 7);
            assert_exact(&g, &c, &q, &format!("dag seed {seed}"));
        }
    }

    #[test]
    fn simeq_merges_at_least_as_much_as_bisim() {
        for seed in 0..6 {
            let g = random::uniform(90, 280, 3, seed);
            let s = compress_simeq(&g);
            let b = compress_bisim(&g);
            assert!(
                s.class_count() <= b.class_count(),
                "seed {seed}: simeq {} > bisim {}",
                s.class_count(),
                b.class_count()
            );
        }
    }

    #[test]
    fn sink_heavy_star_compresses_hard() {
        // One hub pointing at 50 same-label sinks: all sinks are
        // equivalent, so Gc is hub -> sink.
        let mut gb = GraphBuilder::new();
        let hub = gb.add_node(Label(0));
        for _ in 0..50 {
            let s = gb.add_node(Label(1));
            gb.add_edge(hub, s);
        }
        let g = gb.build();
        let c = compress_simeq(&g);
        assert_eq!(c.class_count(), 2);
        assert_eq!(c.graph.edge_count(), 1);
        assert!(c.ratio(g.size()) < 0.05);

        // Matches expand back to all 50 sinks.
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        let q = qb.build();
        let rel = c.query_expanded(&q);
        assert_eq!(rel.matches_of(dgs_graph::QNodeId(1)).len(), 50);
        assert_exact(&g, &c, &q, "star");
    }

    #[test]
    fn expand_preserves_emptiness_convention() {
        let g = random::uniform(40, 120, 3, 9);
        let c = compress_simeq(&g);
        let mut qb = PatternBuilder::new();
        qb.add_node(Label(14)); // absent label
        let q = qb.build();
        let res = c.query(&q);
        assert!(!res.matches());
        assert!(c.expand(&res.relation).is_empty());
    }

    #[test]
    fn members_partition_the_nodes() {
        let g = random::uniform(60, 180, 4, 3);
        let c = compress_simeq(&g);
        let mut seen = vec![false; g.node_count()];
        for (cls, members) in c.members.iter().enumerate() {
            for &v in members {
                assert!(!seen[v.index()], "{v:?} in two classes");
                seen[v.index()] = true;
                assert_eq!(c.class_of[v.index()] as usize, cls);
                assert_eq!(g.label(v), c.graph.label(NodeId(cls as u32)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn compressing_twice_is_idempotent() {
        let g = random::uniform(80, 240, 3, 21);
        let once = compress_simeq(&g);
        let twice = compress_simeq(&once.graph);
        assert_eq!(once.class_count(), twice.class_count());
    }
}
