//! # dgs-sim
//!
//! Centralized graph simulation — the reference implementation the
//! distributed algorithms are verified against, and the engine behind
//! the `Match` and `disHHK` baselines.
//!
//! Graph simulation (§2.1 of the paper, after [Henzinger, Henzinger &
//! Kopke, FOCS'95]): `G` matches `Q` iff there is a binary relation
//! `R ⊆ Vq × V` such that (1) every query node has a match and (2) for
//! every `(u, v) ∈ R`, `fv(u) = L(v)` and every query edge `(u, u')`
//! is witnessed by some edge `(v, v')` with `(u', v') ∈ R`. If `G`
//! matches `Q` there is a unique *maximum* such relation `Q(G)`,
//! computable in `O((|Vq| + |V|)(|Eq| + |E|))` time.
//!
//! * [`naive::naive_simulation`] — textbook fixpoint, quadratic, used
//!   as a cross-check in tests;
//! * [`hhk::hhk_simulation`] — counter-based worklist algorithm with
//!   the optimal bound;
//! * [`MatchRelation`] — the result type (maximum relation under
//!   condition (2); [`MatchRelation::is_total`] tells whether `G`
//!   matches `Q`, and [`SimResult::answer`] applies the paper's
//!   `Q(G) = ∅` convention when it does not).

//!
//! Two refinements of graph simulation are included for the §2.1
//! comparison studies: [`dual::dual_simulation`] (child + parent
//! conditions) and [`strong::strong_simulation`] (dual simulation in
//! `d_Q`-balls, which *has* data locality and misses matches that
//! graph simulation finds — e.g. `yb2` in Fig. 1). And
//! [`incremental::IncrementalSim`] maintains the relation across edge
//! deletions in `O(|AFF|)` per update — the centralized analogue of
//! the paper's incremental `lEval` (§4.2, following \[13\]).

//!
//! Beyond the paper's immediate needs, the crate carries the natural
//! extensions its §7 future work points at: [`preorder::SimPreorder`]
//! (the simulation preorder of `G` over itself),
//! [`bisim::bisimulation_partition`] (the \[6\] equivalence),
//! [`compress`] (query-preserving compression — answer any pattern on
//! the quotient graph, exactly), [`bounded::bounded_simulation`] (the
//! full bounded-path query class of \[11\]) and [`iso`] (subgraph
//! isomorphism, the §2.1 locality contrast).

pub mod bisim;
pub mod boolean;
pub mod bounded;
pub mod compress;
pub mod dual;
pub mod hhk;
pub mod incremental;
pub mod iso;
pub mod match_relation;
pub mod matchset;
pub mod naive;
pub mod preorder;
pub mod reference;
pub mod strong;

pub use bisim::{bisimulation_partition, BisimPartition};
pub use boolean::boolean_matches;
pub use bounded::{bounded_simulation, BoundedPattern, BoundedPatternBuilder, EdgeBound};
pub use compress::{compress_bisim, compress_simeq, CompressedGraph};
pub use dual::dual_simulation;
pub use hhk::hhk_simulation;
pub use incremental::IncrementalSim;
pub use iso::{embedding_relation, enumerate_embeddings, find_embedding};
pub use match_relation::{MatchRelation, SimResult};
pub use matchset::{MatchSet, SetBits};
pub use naive::naive_simulation;
pub use preorder::SimPreorder;
pub use reference::hashset_simulation;
pub use strong::strong_simulation;
