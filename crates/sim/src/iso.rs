//! Subgraph isomorphism — the "conventional" matching semantics the
//! paper contrasts with simulation (§1, §2.1, Example 3).
//!
//! An embedding of `Q` in `G` is an **injective** map `m: Vq → V`
//! with `fv(u) = L(m(u))` and `(m(u), m(u')) ∈ E` for every query edge
//! (plain, not induced, subgraph isomorphism — the variant cited from
//! Ullmann \[33\]). Finding one is NP-complete in general; patterns
//! here are tiny, so a backtracking search with label/degree pruning
//! and most-constrained-first ordering is exact and fast.
//!
//! Two contrasts matter for the paper and are pinned as tests:
//!
//! * every embedding is contained in the simulation relation
//!   (`{(u, m(u))}` witnesses every query edge by a real edge), so
//!   isomorphism finds *fewer* potential matches — the paper's
//!   motivation for simulation semantics in social analysis;
//! * isomorphism **has data locality** (Example 3: only the
//!   `d_Q`-ball around `v` matters) while simulation does not — on the
//!   Fig. 2 ring family `Q0` simulation-matches every node but embeds
//!   nowhere, the structural seed of the impossibility theorem.

use crate::match_relation::MatchRelation;
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};

/// Search order: query nodes sorted so each (after the first of its
/// connected component) touches an already-placed neighbour —
/// candidates then come from adjacency instead of a full scan.
fn search_order(q: &Pattern) -> Vec<QNodeId> {
    let nq = q.node_count();
    let mut order = Vec::with_capacity(nq);
    let mut placed = vec![false; nq];
    // Highest-degree first within each component.
    let degree = |u: QNodeId| q.children(u).len() + q.parents(u).len();
    while order.len() < nq {
        let next = q
            .nodes()
            .filter(|&u| !placed[u.index()])
            .max_by_key(|&u| {
                let attached = q
                    .children(u)
                    .iter()
                    .chain(q.parents(u))
                    .filter(|&&w| placed[w.index()])
                    .count();
                (attached, degree(u))
            })
            .expect("unplaced node exists");
        placed[next.index()] = true;
        order.push(next);
    }
    order
}

struct Search<'a> {
    q: &'a Pattern,
    g: &'a Graph,
    order: Vec<QNodeId>,
    mapping: Vec<Option<NodeId>>,
    used: Vec<bool>,
    found: Vec<Vec<NodeId>>,
    limit: usize,
}

impl Search<'_> {
    fn consistent(&self, u: QNodeId, v: NodeId) -> bool {
        if self.q.label(u) != self.g.label(v) || self.used[v.index()] {
            return false;
        }
        if self.g.out_degree(v) < self.q.children(u).len()
            || self.g.in_degree(v) < self.q.parents(u).len()
        {
            return false;
        }
        // Edges to already-placed neighbours must exist in G.
        for &uc in self.q.children(u) {
            if let Some(vc) = self.mapping[uc.index()] {
                if !self.g.has_edge(v, vc) {
                    return false;
                }
            }
        }
        for &up in self.q.parents(u) {
            if let Some(vp) = self.mapping[up.index()] {
                if !self.g.has_edge(vp, v) {
                    return false;
                }
            }
        }
        true
    }

    fn candidates(&self, u: QNodeId) -> Vec<NodeId> {
        // Prefer pivoting off a placed neighbour.
        for &uc in self.q.children(u) {
            if let Some(vc) = self.mapping[uc.index()] {
                return self.g.predecessors(vc).to_vec();
            }
        }
        for &up in self.q.parents(u) {
            if let Some(vp) = self.mapping[up.index()] {
                return self.g.successors(vp).to_vec();
            }
        }
        self.g.nodes().collect()
    }

    fn recurse(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            let m: Vec<NodeId> = self.mapping.iter().map(|o| o.unwrap()).collect();
            self.found.push(m);
            return self.found.len() >= self.limit;
        }
        let u = self.order[depth];
        for v in self.candidates(u) {
            if !self.consistent(u, v) {
                continue;
            }
            self.mapping[u.index()] = Some(v);
            self.used[v.index()] = true;
            if self.recurse(depth + 1) {
                return true;
            }
            self.mapping[u.index()] = None;
            self.used[v.index()] = false;
        }
        false
    }
}

/// Enumerates up to `limit` embeddings of `q` in `g`, each as a vector
/// indexed by query node.
pub fn enumerate_embeddings(q: &Pattern, g: &Graph, limit: usize) -> Vec<Vec<NodeId>> {
    if q.node_count() == 0 || limit == 0 {
        return Vec::new();
    }
    let mut s = Search {
        q,
        g,
        order: search_order(q),
        mapping: vec![None; q.node_count()],
        used: vec![false; g.node_count()],
        found: Vec::new(),
        limit,
    };
    s.recurse(0);
    s.found
}

/// Finds one embedding of `q` in `g`, if any.
pub fn find_embedding(q: &Pattern, g: &Graph) -> Option<Vec<NodeId>> {
    enumerate_embeddings(q, g, 1).into_iter().next()
}

/// The union of all embeddings as a relation — the isomorphism
/// analogue of `Q(G)`, capped at `limit` embeddings for safety.
pub fn embedding_relation(q: &Pattern, g: &Graph, limit: usize) -> MatchRelation {
    let embeddings = enumerate_embeddings(q, g, limit);
    let mut lists = vec![Vec::new(); q.node_count()];
    for m in &embeddings {
        for (u, &v) in m.iter().enumerate() {
            lists[u].push(v);
        }
    }
    MatchRelation::from_lists(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::{adversarial, patterns, random, social};
    use dgs_graph::{GraphBuilder, Label, PatternBuilder};

    #[test]
    fn triangle_embeds_in_triangle() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node(Label(0));
        let b = gb.add_node(Label(1));
        let c = gb.add_node(Label(2));
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        gb.add_edge(c, a);
        let g = gb.build();
        let mut qb = PatternBuilder::new();
        let qa = qb.add_node(Label(0));
        let qb_ = qb.add_node(Label(1));
        let qc = qb.add_node(Label(2));
        qb.add_edge(qa, qb_);
        qb.add_edge(qb_, qc);
        qb.add_edge(qc, qa);
        let q = qb.build();
        let m = find_embedding(&q, &g).expect("triangle embeds");
        assert_eq!(m, vec![a, b, c]);
        assert_eq!(enumerate_embeddings(&q, &g, 10).len(), 1);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern: two distinct A-children under one root; graph has
        // only one A child — simulation matches, isomorphism does not.
        let mut gb = GraphBuilder::new();
        let r = gb.add_node(Label(0));
        let x = gb.add_node(Label(1));
        gb.add_edge(r, x);
        let g = gb.build();
        let mut qb = PatternBuilder::new();
        let qr = qb.add_node(Label(0));
        let q1 = qb.add_node(Label(1));
        let q2 = qb.add_node(Label(1));
        qb.add_edge(qr, q1);
        qb.add_edge(qr, q2);
        let q = qb.build();
        assert!(find_embedding(&q, &g).is_none());
        assert!(hhk_simulation(&q, &g).matches());
    }

    #[test]
    fn embeddings_are_contained_in_simulation() {
        for seed in 0..10 {
            let g = random::uniform(60, 260, 2, seed);
            let q = patterns::random_dag_with_depth(3, 4, 2, 2, seed + 5);
            let rel = hhk_simulation(&q, &g).relation;
            for m in enumerate_embeddings(&q, &g, 50) {
                for (u, &v) in m.iter().enumerate() {
                    assert!(
                        rel.contains(QNodeId(u as u16), v),
                        "seed {seed}: embedding pair (u{u}, {v:?}) outside simulation"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_family_separates_iso_from_simulation() {
        // Example 3 / Fig. 2: Q0 (the A⇄B 2-cycle) simulation-matches
        // every node of the 2n-ring, but embeds nowhere (the ring has
        // no 2-cycle).
        let q0 = adversarial::q0();
        for n in [2usize, 5, 9] {
            let g = adversarial::cycle_graph(n);
            assert!(hhk_simulation(&q0, &g).matches(), "n={n}");
            assert!(find_embedding(&q0, &g).is_none(), "n={n}");
        }
        // ... while a genuine 2-cycle graph admits both.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node(Label(0));
        let b = gb.add_node(Label(1));
        gb.add_edge(a, b);
        gb.add_edge(b, a);
        let g2 = gb.build();
        assert!(find_embedding(&q0, &g2).is_some());
    }

    #[test]
    fn fig1_shows_iso_misses_what_simulation_finds() {
        // §1 of the paper: "conventional subgraph isomorphism often
        // fails to capture meaningful matches". Fig. 1's pattern asks
        // for a 3-cycle F → SP → YF → F; the graph realizes the
        // recommendation cycle as a 9-cycle (f3 sp2 yf3 f4 sp3 yf1 f2
        // sp1 yf2), so isomorphism finds nothing while simulation
        // matches 11 pairs.
        let w = social::fig1();
        assert!(find_embedding(&w.pattern, &w.graph).is_none());
        let sim = hhk_simulation(&w.pattern, &w.graph);
        assert!(sim.matches());
        assert_eq!(sim.relation.len(), 11);
    }

    #[test]
    fn embedding_relation_unions_embeddings() {
        // Two disjoint copies of an edge A -> B: 2 embeddings, and the
        // relation covers both.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node(Label(0));
        let b1 = gb.add_node(Label(1));
        let a2 = gb.add_node(Label(0));
        let b2 = gb.add_node(Label(1));
        gb.add_edge(a1, b1);
        gb.add_edge(a2, b2);
        let g = gb.build();
        let mut qb = PatternBuilder::new();
        let qa = qb.add_node(Label(0));
        let qb_ = qb.add_node(Label(1));
        qb.add_edge(qa, qb_);
        let q = qb.build();
        assert_eq!(enumerate_embeddings(&q, &g, 10).len(), 2);
        let rel = embedding_relation(&q, &g, 10);
        assert_eq!(rel.matches_of(QNodeId(0)), &[a1, a2]);
        assert_eq!(rel.matches_of(QNodeId(1)), &[b1, b2]);
    }

    #[test]
    fn limit_caps_enumeration() {
        let mut gb = GraphBuilder::new();
        let hub = gb.add_node(Label(0));
        for _ in 0..20 {
            let s = gb.add_node(Label(1));
            gb.add_edge(hub, s);
        }
        let g = gb.build();
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        let q = qb.build();
        assert_eq!(enumerate_embeddings(&q, &g, 7).len(), 7);
        assert_eq!(enumerate_embeddings(&q, &g, 0).len(), 0);
        assert_eq!(enumerate_embeddings(&q, &g, usize::MAX).len(), 20);
    }

    #[test]
    fn empty_pattern_has_no_embeddings() {
        let g = random::uniform(10, 20, 2, 0);
        let q = PatternBuilder::new().build();
        assert!(enumerate_embeddings(&q, &g, 5).is_empty());
    }
}
