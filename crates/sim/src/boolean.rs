//! Boolean pattern queries (§2.1): "a Boolean pattern `Q` returns true
//! on `G` if `G` matches `Q`, and false otherwise."

use crate::hhk::hhk_simulation;
use dgs_graph::{Graph, Pattern};

/// True iff `G` matches `Q` (every query node has at least one match
/// in the maximum simulation relation).
pub fn boolean_matches(q: &Pattern, g: &Graph) -> bool {
    hhk_simulation(q, g).matches()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::adversarial;
    use dgs_graph::generate::social::fig1;

    #[test]
    fn fig1_boolean_true() {
        let w = fig1();
        assert!(boolean_matches(&w.pattern, &w.graph));
    }

    #[test]
    fn ring_true_broken_ring_false() {
        let q = adversarial::q0();
        assert!(boolean_matches(&q, &adversarial::cycle_graph(10)));
        assert!(!boolean_matches(&q, &adversarial::broken_cycle_graph(10)));
    }
}
