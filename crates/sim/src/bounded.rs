//! Bounded simulation — pattern edges matched by bounded-length paths.
//!
//! The VLDB'14 paper computes plain graph simulation with the
//! algorithm of \[11\] (Fan et al., *Graph Pattern Matching: From
//! Intractable to Polynomial Time*, PVLDB 2010). That paper's actual
//! query class is richer: every pattern edge `(u, u')` carries a bound
//! `k` (or `*`), and a match of `u` must reach a match of `u'` by a
//! path of length `1..=k` (any positive length for `*`) rather than a
//! single edge. Plain simulation is the special case where every bound
//! is 1. This module implements that full query class centrally, as a
//! natural extension of the repository's simulation stack.
//!
//! The solver is a fixpoint over candidate sets: a pair `(u, v)` with
//! matching labels survives iff every bounded query edge `(u, u', k)`
//! finds a still-candidate `v'` of `u'` within `k` hops of `v`
//! (strictly downstream — distance ≥ 1). Witness checks are bounded
//! BFS truncated at the first hit; the fixpoint removes at most
//! `|Vq||V|` pairs, so the solver always terminates at the unique
//! maximum bounded-simulation relation (the same greatest-fixpoint
//! argument as plain simulation).

use crate::match_relation::{MatchRelation, SimResult};
use dgs_graph::{Graph, Label, NodeId, Pattern, PatternBuilder, QNodeId};
use std::collections::VecDeque;

/// Bound annotation of one pattern edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeBound {
    /// Match by a path of length `1..=k`. `Hop(1)` is an ordinary
    /// simulation edge.
    Hop(u32),
    /// Match by a path of any positive length (`*` of \[11\]).
    Unbounded,
}

impl EdgeBound {
    fn admits(self, dist: u32) -> bool {
        match self {
            EdgeBound::Hop(k) => dist >= 1 && dist <= k,
            EdgeBound::Unbounded => dist >= 1,
        }
    }

    fn horizon(self) -> Option<u32> {
        match self {
            EdgeBound::Hop(k) => Some(k),
            EdgeBound::Unbounded => None,
        }
    }
}

/// A pattern whose edges carry [`EdgeBound`]s.
#[derive(Clone, Debug)]
pub struct BoundedPattern {
    pattern: Pattern,
    /// Bounds aligned with `pattern.edges()` order.
    bounds: Vec<((QNodeId, QNodeId), EdgeBound)>,
}

impl BoundedPattern {
    /// The underlying (bound-free) pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Iterates `(u, u', bound)`.
    pub fn bounded_edges(&self) -> impl Iterator<Item = (QNodeId, QNodeId, EdgeBound)> + '_ {
        self.bounds.iter().map(|&((u, c), b)| (u, c, b))
    }

    /// Lifts a plain pattern: every edge gets bound `Hop(1)`, so
    /// bounded simulation coincides with plain simulation.
    pub fn from_plain(q: &Pattern) -> Self {
        let bounds = q.edges().map(|e| (e, EdgeBound::Hop(1))).collect();
        BoundedPattern {
            pattern: q.clone(),
            bounds,
        }
    }
}

/// Builder for [`BoundedPattern`].
#[derive(Clone, Debug, Default)]
pub struct BoundedPatternBuilder {
    inner: PatternBuilder,
    bounds: Vec<((QNodeId, QNodeId), EdgeBound)>,
}

impl BoundedPatternBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a query node.
    pub fn add_node(&mut self, label: Label) -> QNodeId {
        self.inner.add_node(label)
    }

    /// Adds a bounded query edge.
    ///
    /// # Panics
    /// Panics on a zero hop bound (a 0-length "path" cannot witness an
    /// edge).
    pub fn add_edge(&mut self, u: QNodeId, c: QNodeId, bound: EdgeBound) {
        if let EdgeBound::Hop(k) = bound {
            assert!(k >= 1, "hop bound must be at least 1");
        }
        self.inner.add_edge(u, c);
        self.bounds.push(((u, c), bound));
    }

    /// Finalizes the pattern.
    ///
    /// # Panics
    /// Panics if the same edge was added twice with different bounds.
    pub fn build(self) -> BoundedPattern {
        let pattern = self.inner.build();
        let mut bounds = self.bounds;
        bounds.sort_by_key(|&(e, _)| e);
        bounds.windows(2).for_each(|w| {
            assert!(
                w[0].0 != w[1].0 || w[0].1 == w[1].1,
                "edge {:?} has two different bounds",
                w[0].0
            );
        });
        bounds.dedup();
        debug_assert_eq!(bounds.len(), pattern.edge_count());
        BoundedPattern { pattern, bounds }
    }
}

/// True iff some still-candidate match of `uc` lies within `bound` of
/// `v` (BFS truncated at the first witness).
fn has_witness(
    g: &Graph,
    cand: &[bool],
    nq: usize,
    v: NodeId,
    uc: QNodeId,
    bound: EdgeBound,
    ops: &mut u64,
) -> bool {
    let horizon = bound.horizon();
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()];
        if let Some(h) = horizon {
            if dx >= h {
                continue;
            }
        }
        for &y in g.successors(x) {
            *ops += 1;
            // A walk back to the source is the one case the visited
            // check below would hide (dist[v] = 0 is not a positive
            // length): the first relaxation into `v` carries the
            // shortest cycle length through it.
            if y == v && bound.admits(dx + 1) && cand[v.index() * nq + uc.index()] {
                return true;
            }
            if dist[y.index()] != u32::MAX {
                continue;
            }
            dist[y.index()] = dx + 1;
            if bound.admits(dx + 1) && cand[y.index() * nq + uc.index()] {
                return true;
            }
            queue.push_back(y);
        }
    }
    false
}

/// Computes the maximum bounded-simulation relation of `bq` in `g`.
pub fn bounded_simulation(bq: &BoundedPattern, g: &Graph) -> SimResult {
    let q = bq.pattern();
    let nq = q.node_count();
    let n = g.node_count();
    let mut ops: u64 = 0;

    // cand[v * nq + u]
    let mut cand = vec![false; n * nq];
    for v in g.nodes() {
        for u in q.nodes() {
            ops += 1;
            cand[v.index() * nq + u.index()] = g.label(v) == q.label(u);
        }
    }

    // Fixpoint: re-check every surviving pair until stable. Bounded
    // witnesses are not locally decomposable (no per-edge counters
    // as in HHK), so iterate globally; each sweep kills at least one
    // pair or terminates.
    loop {
        let mut changed = false;
        for v in g.nodes() {
            for u in q.nodes() {
                if !cand[v.index() * nq + u.index()] {
                    continue;
                }
                ops += 1;
                let ok = bq
                    .bounded_edges()
                    .filter(|&(eu, _, _)| eu == u)
                    .all(|(_, uc, b)| has_witness(g, &cand, nq, v, uc, b, &mut ops));
                if !ok {
                    cand[v.index() * nq + u.index()] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let lists = (0..nq)
        .map(|u| {
            g.nodes()
                .filter(|v| cand[v.index() * nq + u])
                .collect::<Vec<_>>()
        })
        .collect();
    SimResult {
        relation: MatchRelation::from_lists(lists),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hhk::hhk_simulation;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::GraphBuilder;

    #[test]
    fn hop1_equals_plain_simulation() {
        for seed in 0..8 {
            let g = random::uniform(60, 200, 3, seed);
            let q = patterns::random_cyclic(3, 5, 3, seed + 30);
            let bq = BoundedPattern::from_plain(&q);
            let got = bounded_simulation(&bq, &g).relation;
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(got, oracle, "seed {seed}");
        }
    }

    #[test]
    fn larger_bounds_only_grow_matches() {
        let g = random::uniform(80, 240, 3, 5);
        let q = patterns::random_cyclic(3, 6, 3, 77);
        let run = |k: u32| {
            let mut b = BoundedPatternBuilder::new();
            for u in q.nodes() {
                b.add_node(q.label(u));
            }
            for (u, c) in q.edges() {
                b.add_edge(u, c, EdgeBound::Hop(k));
            }
            bounded_simulation(&b.build(), &g).relation
        };
        let mut prev = run(1);
        for k in 2..=4 {
            let cur = run(k);
            for (u, v) in prev.iter() {
                assert!(cur.contains(u, v), "k={k} lost ({u:?}, {v:?})");
            }
            prev = cur;
        }
    }

    #[test]
    fn two_hop_edge_sees_through_an_intermediate() {
        // a -> x -> b: pattern A -(≤2)-> B matches a, while A -(1)-> B
        // does not (the intermediate has the wrong label).
        let mut gb = GraphBuilder::new();
        let a = gb.add_node(Label(0));
        let x = gb.add_node(Label(9));
        let b_ = gb.add_node(Label(1));
        gb.add_edge(a, x);
        gb.add_edge(x, b_);
        let g = gb.build();

        let build = |bound| {
            let mut qb = BoundedPatternBuilder::new();
            let qa = qb.add_node(Label(0));
            let qb_ = qb.add_node(Label(1));
            qb.add_edge(qa, qb_, bound);
            qb.build()
        };
        let one = bounded_simulation(&build(EdgeBound::Hop(1)), &g);
        assert!(!one.matches());
        let two = bounded_simulation(&build(EdgeBound::Hop(2)), &g);
        assert!(two.matches());
        assert!(two.relation.contains(QNodeId(0), a));
        let star = bounded_simulation(&build(EdgeBound::Unbounded), &g);
        assert_eq!(star.relation, two.relation);
    }

    #[test]
    fn unbounded_edge_is_reachability() {
        // Chain of 10 A-nodes ending in B; A -(*)-> B matches every
        // chain node, A -(≤3)-> B only the last three.
        let mut gb = GraphBuilder::new();
        let chain: Vec<_> = (0..10).map(|_| gb.add_node(Label(0))).collect();
        let tail = gb.add_node(Label(1));
        for w in chain.windows(2) {
            gb.add_edge(w[0], w[1]);
        }
        gb.add_edge(chain[9], tail);
        let g = gb.build();
        let build = |bound| {
            let mut qb = BoundedPatternBuilder::new();
            let a = qb.add_node(Label(0));
            let b = qb.add_node(Label(1));
            qb.add_edge(a, b, bound);
            qb.build()
        };
        let star = bounded_simulation(&build(EdgeBound::Unbounded), &g);
        assert_eq!(star.relation.matches_of(QNodeId(0)).len(), 10);
        let hop3 = bounded_simulation(&build(EdgeBound::Hop(3)), &g);
        assert_eq!(hop3.relation.matches_of(QNodeId(0)).len(), 3);
    }

    #[test]
    fn bounded_cycle_requires_recurrence() {
        // Pattern A -(≤2)-> A (self-loop with slack) over a 4-cycle of
        // A-labels: every node can return to an A within 2 hops, so
        // all match. Over a path, none match at the end... but earlier
        // nodes still see an A downstream, so only nodes with an
        // outgoing path of A's survive the fixpoint.
        let mut gb = GraphBuilder::new();
        let ring: Vec<_> = (0..4).map(|_| gb.add_node(Label(0))).collect();
        for i in 0..4 {
            gb.add_edge(ring[i], ring[(i + 1) % 4]);
        }
        let g = gb.build();
        let mut qb = BoundedPatternBuilder::new();
        let a = qb.add_node(Label(0));
        qb.add_edge(a, a, EdgeBound::Hop(2));
        let res = bounded_simulation(&qb.build(), &g);
        assert_eq!(res.relation.len(), 4);

        let mut gb = GraphBuilder::new();
        let path: Vec<_> = (0..4).map(|_| gb.add_node(Label(0))).collect();
        for w in path.windows(2) {
            gb.add_edge(w[0], w[1]);
        }
        let g = gb.build();
        let mut qb = BoundedPatternBuilder::new();
        let a = qb.add_node(Label(0));
        qb.add_edge(a, a, EdgeBound::Hop(2));
        let res = bounded_simulation(&qb.build(), &g);
        // The fixpoint unravels the whole path: the last node has no
        // successor A, its predecessor then loses its only witness, &c.
        assert!(res.relation.is_empty());
    }

    #[test]
    #[should_panic(expected = "hop bound must be at least 1")]
    fn zero_bound_rejected() {
        let mut qb = BoundedPatternBuilder::new();
        let a = qb.add_node(Label(0));
        qb.add_edge(a, a, EdgeBound::Hop(0));
    }

    #[test]
    #[should_panic(expected = "two different bounds")]
    fn conflicting_bounds_rejected() {
        let mut qb = BoundedPatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b, EdgeBound::Hop(1));
        qb.add_edge(a, b, EdgeBound::Hop(2));
        let _ = qb.build();
    }

    #[test]
    fn from_plain_round_trips_edges() {
        let q = patterns::random_cyclic(4, 7, 3, 3);
        let bq = BoundedPattern::from_plain(&q);
        assert_eq!(bq.bounded_edges().count(), q.edge_count());
        assert!(bq.bounded_edges().all(|(_, _, b)| b == EdgeBound::Hop(1)));
    }
}
