//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! experiments [--scale F] [--queries N] [--seed S] [--out DIR] [--json FILE] [IDS...]
//!
//!   IDS:  all (default) | exp1 | exp2 | exp3 |
//!         fig6a..fig6p (a pair id runs its sweep once) |
//!         table1 | imp-rt | imp-ds | tree | abl-push | abl-incr | serving
//! ```
//!
//! Results print as paper-style tables and are also written as CSVs
//! under `--out` (default `results/`). The `serving` id runs the
//! in-process serving benchmark (batch parallelism + warm cache) and,
//! with `--json FILE`, writes its cold-stream latency/throughput as a
//! versioned `ServingSnapshot` (the `BENCH_serving.json` artifact
//! format also emitted by `dgsload --json`).

use dgs_bench::figures::{self, Sweep};
use dgs_bench::{print_sweep, write_csv, Workloads};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    workloads: Workloads,
    out: PathBuf,
    ids: BTreeSet<String>,
    plots: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut workloads = Workloads::default();
    let mut out = PathBuf::from("results");
    let mut ids = BTreeSet::new();
    let mut plots = false;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                workloads.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a number");
            }
            "--queries" => {
                workloads.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries requires a count");
            }
            "--seed" => {
                workloads.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires a number");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out requires a path"));
            }
            "--plots" => {
                plots = true;
            }
            "--json" => {
                json = Some(PathBuf::from(args.next().expect("--json requires a path")));
            }
            "--help" | "-h" => {
                println!(
                    "experiments [--scale F] [--queries N] [--seed S] [--out DIR] [--plots] [--json FILE] [IDS...]\n\
                     ids: all exp1 exp2 exp3 fig6a..fig6p table1 imp-rt imp-ds tree\n\
                          abl-push abl-incr abl-scc abl-straggler abl-faults abl-compress serving"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => panic!("unknown flag {other}"),
            id => {
                ids.insert(id.to_ascii_lowercase());
            }
        }
    }
    if ids.is_empty() {
        ids.insert("all".into());
    }
    Args {
        workloads,
        out,
        ids,
        plots,
        json,
    }
}

/// Maps a requested id to the sweeps it needs. Pair figures (6a/6b,
/// ...) share one sweep, so requesting either runs it once.
fn wanted(ids: &BTreeSet<String>, keys: &[&str]) -> bool {
    ids.contains("all") || keys.iter().any(|k| ids.contains(*k))
}

fn emit(args: &Args, sweep: &Sweep) {
    emit_with(sweep, &args.out, args.plots);
}

fn emit_with(sweep: &Sweep, out: &std::path::Path, plots: bool) {
    print_sweep(sweep);
    if plots {
        print!(
            "{}",
            dgs_bench::render_plot(sweep, dgs_bench::plot::Metric::Pt)
        );
        print!(
            "{}",
            dgs_bench::render_plot(sweep, dgs_bench::plot::Metric::Ds)
        );
    }
    println!();
    if let Err(e) = write_csv(sweep, out) {
        eprintln!("warning: could not write CSVs for {}: {e}", sweep.id_pt);
    }
}

fn run_table1(w: &Workloads) {
    use dgs_core::{Algorithm, SimEngine};
    use dgs_graph::generate::tree as gen_tree;
    use dgs_graph::{Graph, Pattern};
    use dgs_partition::{tree_partition, Fragmentation, SiteId};

    let mut measured = Vec::new();
    // One session per workload graph: every algorithm and query below
    // shares that session's fragmentation and planner facts.
    let session = |g: &Graph, assign: &[SiteId]| {
        let frag = Arc::new(Fragmentation::build(g, assign, 8));
        SimEngine::builder(g, frag).build()
    };
    let mean_point = |engine: &SimEngine, algo: &Algorithm, queries: &[Pattern]| {
        let (mut pt, mut ds) = (0.0, 0.0);
        for r in engine.query_batch_with(algo, queries).reports {
            let r = r.expect("table-1 workload is valid");
            pt += r.metrics.virtual_time_ms();
            ds += r.metrics.data_kb();
        }
        let n = queries.len() as f64;
        (pt / n, ds / n)
    };

    // dGPM + baselines on the web workload.
    let (g, assign) = w.web_graph(8, 0.25);
    let web = session(&g, &assign);
    let queries = w.cyclic_queries(5, 10);
    for algo in [
        Algorithm::dgpm(),
        Algorithm::DisHhk,
        Algorithm::DMes,
        Algorithm::MatchCentral,
    ] {
        let (pt, ds) = mean_point(&web, &algo, &queries);
        measured.push((algo.name().to_owned(), pt, ds));
    }

    // dGPMd on the citation workload.
    let (g, assign) = w.citation_graph(8, 0.25);
    let queries = w.dag_queries(9, 13, 4);
    let (pt, ds) = mean_point(&session(&g, &assign), &Algorithm::Dgpmd, &queries);
    measured.push(("dGPMd".to_owned(), pt, ds));

    // dGPMt on a tree workload.
    let tn = ((20_000.0 * w.scale) as usize).max(64);
    let g = gen_tree::random_tree_with_chain_bias(tn, 15, 0.3, w.seed + 3);
    let assign = tree_partition(&g, 8);
    let queries = w.dag_queries(5, 7, 3);
    let (pt, ds) = mean_point(&session(&g, &assign), &Algorithm::Dgpmt, &queries);
    measured.push(("dGPMt".to_owned(), pt, ds));

    print!("{}", dgs_bench::report::render_table1(&measured));
    println!();
}

/// The `serving` id: the in-process serving benchmark, with the cold
/// per-query stream exported as a `ServingSnapshot` when `--json` is
/// given.
fn run_serving_bench(args: &Args) {
    use dgs_bench::serving::{run_serving, ServingConfig};
    use dgs_net::ServingSnapshot;

    let report = run_serving(&ServingConfig::default());
    let us = |ns: u64| ns as f64 / 1_000.0;
    println!("## serving (in-process batch + cache)\n");
    println!(
        "batch {} over {} workers: sequential {:.1} ms, parallel {:.1} ms (x{:.2}), \
         warm cache {:.2} ms ({} hits, {} messages shipped)",
        report.batch,
        report.workers,
        report.sequential_ms,
        report.parallel_ms,
        report.speedup,
        report.cached_ms,
        report.cache_hits,
        report.cached_messages
    );
    println!(
        "cold per-query latency: p50 {:.1} us  p95 {:.1} us  p99 {:.1} us   \
         warm: p50 {:.1} us  p99 {:.1} us",
        us(report.latency.p50()),
        us(report.latency.p95()),
        us(report.latency.p99()),
        us(report.cached_latency.p50()),
        us(report.cached_latency.p99())
    );
    println!();
    if let Some(path) = &args.json {
        // Single-stream throughput: the cold pass is one thread, so
        // elapsed is the sum of per-query latencies.
        let completed = report.latency.count();
        let elapsed_secs = completed as f64 * report.latency.mean() / 1e9;
        let snap = ServingSnapshot::of_run(&report.latency, completed, 0, elapsed_secs);
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => println!("serving snapshot -> {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!();
    }
}

fn main() {
    let args = parse_args();
    let w = &args.workloads;
    println!(
        "# dgs experiments — scale {} (paper sizes / 100 × scale), {} queries per point, seed {}\n",
        w.scale, w.queries, w.seed
    );

    if wanted(&args.ids, &["table1"]) {
        run_table1(w);
    }
    if wanted(&args.ids, &["serving"]) {
        run_serving_bench(&args);
    }
    if wanted(&args.ids, &["exp1", "fig6a", "fig6b"]) {
        emit(&args, &figures::exp_dgpm_vary_f(w));
    }
    if wanted(&args.ids, &["exp1", "fig6c", "fig6d"]) {
        emit(&args, &figures::exp_dgpm_vary_q(w));
    }
    if wanted(&args.ids, &["exp1", "fig6e", "fig6f"]) {
        emit(&args, &figures::exp_dgpm_vary_vf(w));
    }
    if wanted(&args.ids, &["exp2", "fig6g", "fig6h"]) {
        emit(&args, &figures::exp_dgpmd_vary_d(w));
    }
    if wanted(&args.ids, &["exp2", "fig6i", "fig6j"]) {
        emit(&args, &figures::exp_dgpmd_vary_f(w));
    }
    if wanted(&args.ids, &["exp2", "fig6k", "fig6l"]) {
        emit(&args, &figures::exp_dgpmd_vary_vf(w));
    }
    if wanted(&args.ids, &["exp3", "fig6m", "fig6n"]) {
        emit(&args, &figures::exp_syn_vary_f(w));
    }
    if wanted(&args.ids, &["exp3", "fig6o", "fig6p"]) {
        emit(&args, &figures::exp_syn_vary_g(w));
    }
    if wanted(&args.ids, &["imp-rt"]) {
        emit(&args, &figures::exp_impossibility_rt(w));
    }
    if wanted(&args.ids, &["imp-ds"]) {
        emit(&args, &figures::exp_impossibility_ds(w));
    }
    if wanted(&args.ids, &["tree"]) {
        emit(&args, &figures::exp_tree(w));
    }
    if wanted(&args.ids, &["abl-push"]) {
        emit(&args, &figures::exp_ablation_push(w));
        emit(&args, &figures::exp_ablation_push_ring(w));
    }
    if wanted(&args.ids, &["abl-incr"]) {
        emit(&args, &figures::exp_ablation_incremental(w));
    }
    if wanted(&args.ids, &["abl-scc"]) {
        emit(&args, &figures::exp_ablation_scc(w));
    }
    if wanted(&args.ids, &["abl-straggler"]) {
        emit(&args, &figures::exp_ablation_straggler(w));
    }
    if wanted(&args.ids, &["abl-faults"]) {
        emit(&args, &figures::exp_ablation_faults(w));
    }
    if wanted(&args.ids, &["abl-compress"]) {
        let rows = dgs_bench::compress_exp::run(w);
        print!("{}", dgs_bench::compress_exp::render(&rows));
        println!();
        if let Err(e) = dgs_bench::compress_exp::write_csv(&rows, &args.out) {
            eprintln!("warning: could not write abl-compress.csv: {e}");
        }
    }
}
