//! The unified trajectory driver:
//!
//! ```text
//! dgs-bench --area executors|update|serving
//!           [--json FILE] [--baseline FILE] [--test]
//!           [--nodes N] [--queries N] [--seed S] [--iters N]
//! ```
//!
//! `--area executors` re-measures the single-query hot path (bitset
//! kernels vs the HashSet reference, intra-query fragment parallelism
//! vs the sequential site loop), prints the trajectory report, and
//! with `--json` writes the versioned `BENCH_executors.json` artifact.
//! `--baseline FILE` compares the fresh run against a committed
//! snapshot and **exits nonzero** when any measure regressed more
//! than 20% past the envelope — this is the CI gate.
//!
//! `--area update` and `--area serving` run the existing throughput
//! workloads under the same front door (`--test` shrinks them to CI
//! smoke size).

use dgs_bench::trajectory::{compare, render_executors, run_executors, TrajectoryConfig};
use std::path::PathBuf;

struct Args {
    area: String,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    test: bool,
    nodes: Option<usize>,
    queries: Option<usize>,
    seed: Option<u64>,
    iters: Option<usize>,
}

fn parse_args() -> Args {
    let mut out = Args {
        area: "executors".into(),
        json: None,
        baseline: None,
        test: false,
        nodes: None,
        queries: None,
        seed: None,
        iters: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--area" => out.area = val("--area").to_ascii_lowercase(),
            "--json" => out.json = Some(PathBuf::from(val("--json"))),
            "--baseline" => out.baseline = Some(PathBuf::from(val("--baseline"))),
            "--test" => out.test = true,
            "--nodes" => out.nodes = val("--nodes").parse().ok(),
            "--queries" => out.queries = val("--queries").parse().ok(),
            "--seed" => out.seed = val("--seed").parse().ok(),
            "--iters" => out.iters = val("--iters").parse().ok(),
            "--help" | "-h" => {
                println!(
                    "dgs-bench --area executors|update|serving [--json FILE] [--baseline FILE]\n\
                     \x20         [--test] [--nodes N] [--queries N] [--seed S] [--iters N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    out
}

fn run_executors_area(args: &Args) {
    let mut cfg = if args.test {
        TrajectoryConfig::smoke()
    } else {
        TrajectoryConfig::default()
    };
    if let Some(n) = args.nodes {
        cfg.nodes = n;
    }
    if let Some(q) = args.queries {
        cfg.queries = q;
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if let Some(i) = args.iters {
        cfg.kernel_iters = i;
    }

    let snap = run_executors(&cfg);
    print!("{}", render_executors(&snap));
    println!();

    if let Some(path) = &args.json {
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => println!("executors snapshot -> {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.baseline {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: could not read baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        match compare(&snap, &baseline, 0.20) {
            Ok(()) => println!("within envelope of {}", path.display()),
            Err(verdicts) => {
                eprintln!("REGRESSION against {}:", path.display());
                for v in verdicts {
                    eprintln!("  - {v}");
                }
                std::process::exit(1);
            }
        }
    }
}

fn run_update_area(args: &Args) {
    use dgs_bench::update::{run_update, UpdateConfig};
    let cfg = if args.test {
        UpdateConfig::smoke()
    } else {
        UpdateConfig::default()
    };
    println!("## trajectory: update\n");
    for r in run_update(&cfg) {
        println!(
            "{:<13} {:>6} ops  incremental {:>8.2} ms ({:>9.0} ops/s)  baseline {:>8.2} ms  x{:.2}",
            r.label, r.ops, r.incremental_ms, r.ops_per_sec, r.rebuild_ms, r.speedup
        );
    }
}

fn run_serving_area(args: &Args) {
    use dgs_bench::serving::{run_serving, ServingConfig};
    let cfg = if args.test {
        ServingConfig {
            nodes: 120,
            batch: 9,
            ..ServingConfig::default()
        }
    } else {
        ServingConfig::default()
    };
    let r = run_serving(&cfg);
    println!("## trajectory: serving\n");
    println!(
        "batch {} over {} workers: sequential {:.1} ms, parallel {:.1} ms (x{:.2}), \
         warm cache {:.2} ms ({} hits, {} messages)",
        r.batch,
        r.workers,
        r.sequential_ms,
        r.parallel_ms,
        r.speedup,
        r.cached_ms,
        r.cache_hits,
        r.cached_messages
    );
}

fn main() {
    let args = parse_args();
    match args.area.as_str() {
        "executors" => run_executors_area(&args),
        "update" => run_update_area(&args),
        "serving" => run_serving_area(&args),
        other => {
            eprintln!("unknown area {other}: expected executors|update|serving");
            std::process::exit(2);
        }
    }
}
