//! # dgs-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! the paper's evaluation (§6) — Fig. 6(a)–(p), Table 1, the
//! impossibility-theorem workloads of Fig. 2, the tree bounds of
//! Corollary 4, and the design-choice ablations called out in
//! DESIGN.md.
//!
//! Entry points:
//!
//! * `cargo run -p dgs-bench --release --bin experiments -- all`
//!   prints paper-style series for every experiment and writes CSVs;
//! * `cargo bench` runs the Criterion micro-benchmarks (wall-clock
//!   timing of the same engines).
//!
//! Workload scales default to 1/100 of the paper's dataset sizes so
//! the whole suite completes in minutes; pass `--scale` to grow them
//! (see EXPERIMENTS.md for the fidelity discussion).

pub mod compress_exp;
pub mod figures;
pub mod plot;
pub mod report;
pub mod serving;
pub mod trajectory;
pub mod update;
pub mod workloads;

pub use compress_exp::CompressionRow;
pub use figures::{Sweep, SweepSeries};
pub use plot::render_plot;
pub use report::{print_sweep, write_csv};
pub use serving::{run_serving, ServingConfig, ServingReport};
pub use trajectory::{run_executors, TrajectoryConfig};
pub use update::{run_update, StreamReport, UpdateConfig};
pub use workloads::Workloads;
