//! The serving workload: a mixed query stream against **one shared
//! `SimEngine`**, exercising the three serving features together —
//! the parallel batch pool, the pattern-result cache, and the
//! compression-backed plan leg.
//!
//! This is the experiment behind the ROADMAP's "serves heavy traffic"
//! goal: the same batch of mixed patterns is pushed through the
//! engine (a) sequentially (one worker), (b) on the full worker pool,
//! and (c) again after the cache is warm. On a multi-core runner the
//! pool runs the batch ≥ 2× faster wall-clock, and the warm re-run
//! ships **zero** protocol messages (every query is a cache hit).

use dgs_core::{Algorithm, CompressionMethod, SimEngine};
use dgs_graph::generate::{patterns, random};
use dgs_graph::Pattern;
use dgs_net::LatencyHistogram;
use dgs_partition::{hash_partition, Fragmentation};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the serving experiment.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Data-graph nodes (edges are 4×).
    pub nodes: usize,
    /// Number of sites.
    pub sites: usize,
    /// Patterns in the batch.
    pub batch: usize,
    /// Distinct labels.
    pub labels: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            nodes: 400,
            sites: 4,
            batch: 50,
            labels: 4,
            seed: 11,
        }
    }
}

/// Measured outcomes of one serving run.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Patterns in the batch.
    pub batch: usize,
    /// Worker-pool size of the parallel run.
    pub workers: usize,
    /// Wall time of the forced single-worker batch, ms.
    pub sequential_ms: f64,
    /// Wall time of the pooled batch, ms.
    pub parallel_ms: f64,
    /// `sequential_ms / parallel_ms`.
    pub speedup: f64,
    /// Wall time of re-submitting the same stream against the warm
    /// cache, ms.
    pub cached_ms: f64,
    /// Cache hits recorded by the warm re-run (should equal `batch`).
    pub cache_hits: u64,
    /// Protocol messages shipped by the warm re-run (must be 0).
    pub cached_messages: u64,
    /// Compression ratio of the session's `Gc` leg.
    pub compression_ratio: f64,
    /// Per-query latency of the cold stream (each query timed
    /// individually against the serving engine; this pass warms the
    /// cache). Nanoseconds, log-bucketed.
    pub latency: LatencyHistogram,
    /// Per-query latency of the same stream against the warm cache.
    pub cached_latency: LatencyHistogram,
}

/// A mixed pattern stream: cyclic, DAG and path shapes interleaved,
/// the kind of traffic a shared session sees from many clients.
pub fn mixed_patterns(count: usize, labels: usize, seed: u64) -> Vec<Pattern> {
    (0..count)
        .map(|i| {
            let s = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
            match i % 3 {
                0 => patterns::random_cyclic(3 + i % 3, 6 + i % 3, labels, s),
                1 => patterns::random_dag_with_depth(4, 6, 2, labels, s),
                _ => patterns::random_cyclic(4, 8, labels, s),
            }
        })
        .collect()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

/// Runs the serving workload; panics if any parallel answer deviates
/// from the sequential one or a cache hit ships a message (the
/// experiment doubles as an end-to-end agreement check).
pub fn run_serving(cfg: &ServingConfig) -> ServingReport {
    let g = random::uniform(cfg.nodes, 4 * cfg.nodes, cfg.labels, cfg.seed);
    let assign = hash_partition(g.node_count(), cfg.sites, cfg.seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, cfg.sites));
    let queries = mixed_patterns(cfg.batch, cfg.labels, cfg.seed);

    // Sequential baseline: one worker, cache off.
    let sequential = SimEngine::builder(&g, Arc::clone(&frag))
        .batch_workers(1)
        .cache(false)
        .build();
    let (seq_batch, sequential_ms) = time_ms(|| sequential.query_batch(&queries));

    // Parallel: full pool, cache off for a pure-parallelism number.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(cfg.batch);
    let parallel = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build();
    let (par_batch, parallel_ms) = time_ms(|| parallel.query_batch(&queries));
    for (a, b) in seq_batch.reports.iter().zip(&par_batch.reports) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.relation, b.relation, "parallel batch answer deviates");
    }

    // Serving engine: cache + compression leg, warm it, re-submit.
    let serving = SimEngine::builder(&g, frag)
        .compress(CompressionMethod::SimEq)
        .compression_threshold(1.0)
        .build();
    let ratio = serving.compression_note().map(|n| n.ratio).unwrap_or(1.0);
    // Cold pass, one query at a time: per-query service latency into
    // the shared histogram (this is also what warms the cache).
    let mut latency = LatencyHistogram::new();
    for q in &queries {
        let t0 = Instant::now();
        serving.query(q).expect("serving query");
        latency.record_duration(t0.elapsed());
    }
    let (warm, cached_ms) = time_ms(|| serving.query_batch_with(&Algorithm::Auto, &queries));
    let cached_messages = warm.total.data_messages + warm.total.control_messages;
    assert_eq!(
        warm.total.cache_hits, cfg.batch as u64,
        "warm re-run must be served entirely from cache"
    );
    assert_eq!(cached_messages, 0, "cache hits must ship nothing");
    let mut cached_latency = LatencyHistogram::new();
    for q in &queries {
        let t0 = Instant::now();
        serving.query(q).expect("warm query");
        cached_latency.record_duration(t0.elapsed());
    }

    ServingReport {
        batch: cfg.batch,
        workers,
        sequential_ms,
        parallel_ms,
        speedup: sequential_ms / parallel_ms.max(1e-9),
        cached_ms,
        cache_hits: warm.total.cache_hits,
        cached_messages,
        compression_ratio: ratio,
        latency,
        cached_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_workload_is_consistent() {
        let cfg = ServingConfig {
            nodes: 120,
            batch: 9,
            ..ServingConfig::default()
        };
        let r = run_serving(&cfg);
        assert_eq!(r.cache_hits, 9);
        assert_eq!(r.cached_messages, 0);
        assert!(r.compression_ratio > 0.0 && r.compression_ratio <= 1.0);
        assert_eq!(r.latency.count(), 9);
        assert_eq!(r.cached_latency.count(), 9);
        // A cache hit never runs a protocol, so the warm median can't
        // exceed the cold one.
        assert!(r.cached_latency.p50() <= r.latency.p50());
    }
}
