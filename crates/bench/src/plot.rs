//! ASCII line plots of sweeps — log-scale y-axis, one glyph per
//! series, mirroring the look of the paper's Fig. 6 panels in a
//! terminal.

use crate::figures::Sweep;
use std::fmt::Write as _;

const GLYPHS: &[char] = &['o', 'x', '*', '+', '#', '@'];
const HEIGHT: usize = 14;

/// Which metric of a sweep to plot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Response time (ms).
    Pt,
    /// Data shipment (KB).
    Ds,
}

fn values(sweep: &Sweep, metric: Metric) -> Vec<(&str, &[f64])> {
    sweep
        .series
        .iter()
        .map(|s| {
            (
                s.name.as_str(),
                match metric {
                    Metric::Pt => s.pt_ms.as_slice(),
                    Metric::Ds => s.ds_kb.as_slice(),
                },
            )
        })
        .collect()
}

/// Renders one metric of a sweep as a log-scale ASCII plot.
/// Zero/negative values are clamped to the bottom row (log-scale
/// cannot represent them; the paper's plots share this property).
pub fn render_plot(sweep: &Sweep, metric: Metric) -> String {
    let series = values(sweep, metric);
    let npoints = sweep.xs.len();
    let mut out = String::new();
    let (id, unit) = match metric {
        Metric::Pt => (&sweep.id_pt, "PT ms"),
        Metric::Ds => (&sweep.id_ds, "DS KB"),
    };
    writeln!(out, "[{id}] {} — {}", sweep.title, unit).unwrap();

    let finite: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|&v| v > 0.0)
        .collect();
    if finite.is_empty() || npoints == 0 {
        writeln!(out, "  (no positive data to plot)").unwrap();
        return out;
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(0.0f64, f64::max);
    let (log_lo, log_hi) = (lo.log10().floor(), hi.log10().ceil());
    let span = (log_hi - log_lo).max(1.0);

    // Column layout: each x value gets a fixed-width column.
    let col_w = sweep.xs.iter().map(|x| x.len()).max().unwrap_or(1).max(3) + 2;
    let mut grid = vec![vec![' '; npoints * col_w]; HEIGHT];
    for (si, (_, vals)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, &v) in vals.iter().enumerate() {
            let frac = if v > 0.0 {
                ((v.log10() - log_lo) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let row = HEIGHT - 1 - ((frac * (HEIGHT - 1) as f64).round() as usize);
            let col = i * col_w + col_w / 2;
            // Overlapping points: later series wins, note with '%'.
            grid[row][col] = if grid[row][col] == ' ' { glyph } else { '%' };
        }
    }

    for (r, row) in grid.iter().enumerate() {
        // y-axis label: powers of ten at the edges and middle.
        let frac = 1.0 - r as f64 / (HEIGHT - 1) as f64;
        let label = if r == 0 || r == HEIGHT - 1 || r == HEIGHT / 2 {
            format!("{:>8.2}", 10f64.powf(log_lo + frac * span))
        } else {
            " ".repeat(8)
        };
        let line: String = row.iter().collect();
        writeln!(out, "{label} |{}", line.trim_end()).unwrap();
    }
    write!(out, "{} +", " ".repeat(8)).unwrap();
    writeln!(out, "{}", "-".repeat(npoints * col_w)).unwrap();
    write!(out, "{} ", " ".repeat(8)).unwrap();
    for x in &sweep.xs {
        write!(out, " {x:^w$}", w = col_w - 1).unwrap();
    }
    writeln!(out).unwrap();
    write!(out, "{} {}", " ".repeat(8), sweep.x_label).unwrap();
    writeln!(out).unwrap();
    for (si, (name, _)) in series.iter().enumerate() {
        writeln!(
            out,
            "{}   {} {}",
            " ".repeat(8),
            GLYPHS[si % GLYPHS.len()],
            name
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SweepSeries;

    fn sweep() -> Sweep {
        Sweep {
            id_pt: "p".into(),
            id_ds: "d".into(),
            title: "t".into(),
            x_label: "|F|".into(),
            xs: vec!["4".into(), "8".into(), "16".into()],
            series: vec![
                SweepSeries {
                    name: "dGPM".into(),
                    pt_ms: vec![2.0, 1.0, 0.5],
                    ds_kb: vec![10.0, 11.0, 12.0],
                },
                SweepSeries {
                    name: "Match".into(),
                    pt_ms: vec![100.0, 100.0, 100.0],
                    ds_kb: vec![1000.0, 1000.0, 1000.0],
                },
            ],
        }
    }

    #[test]
    fn plot_contains_axes_and_legend() {
        let text = render_plot(&sweep(), Metric::Pt);
        assert!(text.contains("o dGPM"));
        assert!(text.contains("x Match"));
        assert!(text.contains("|F|"));
        assert!(text.contains('+'));
        // Both glyphs appear in the grid.
        assert!(text.matches('o').count() >= 3);
        assert!(text.matches('x').count() >= 3);
    }

    #[test]
    fn log_scale_orders_series() {
        let text = render_plot(&sweep(), Metric::Ds);
        // Match (1000 KB) must be drawn above dGPM (~10 KB): the first
        // grid row containing 'x' precedes the first containing 'o'.
        let first_x = text.lines().position(|l| l.contains('x')).unwrap();
        let first_o = text.lines().position(|l| l.contains('o')).unwrap();
        assert!(first_x < first_o, "{text}");
    }

    #[test]
    fn empty_sweep_handled() {
        let s = Sweep {
            id_pt: "p".into(),
            id_ds: "d".into(),
            title: "t".into(),
            x_label: "x".into(),
            xs: vec![],
            series: vec![],
        };
        let text = render_plot(&s, Metric::Pt);
        assert!(text.contains("no positive data"));
    }

    #[test]
    fn zeros_clamp_to_bottom() {
        let s = Sweep {
            id_pt: "p".into(),
            id_ds: "d".into(),
            title: "t".into(),
            x_label: "x".into(),
            xs: vec!["1".into(), "2".into()],
            series: vec![SweepSeries {
                name: "z".into(),
                pt_ms: vec![0.0, 5.0],
                ds_kb: vec![0.0, 0.0],
            }],
        };
        let text = render_plot(&s, Metric::Pt);
        assert!(text.contains('o'));
    }
}
