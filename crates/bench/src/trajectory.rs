//! The trajectory driver behind the `dgs-bench` binary: one command
//! that re-measures an *area* of the codebase's hot path and compares
//! the run against a committed baseline snapshot, so performance wins
//! are recorded once and then defended by CI.
//!
//! Areas:
//!
//! * `executors` — the single-query hot path. Times the
//!   HashSet-of-pairs reference kernel
//!   ([`dgs_sim::hashset_simulation`]) against the flat bitset kernel
//!   ([`dgs_sim::hhk_simulation`]) on the same query stream (the
//!   representation win, gated ≥ 2×), and the distributed engine with
//!   one intra-query worker against the pooled fan-out (the
//!   parallelism win). Every timed pair is also checked for answer
//!   equality, so the trajectory run doubles as a conformance pass.
//!   Emits a versioned [`ExecutorsSnapshot`] (`BENCH_executors.json`).
//! * `update` — the delta-maintenance throughput streams of
//!   [`crate::update`].
//! * `serving` — the shared-session batch/cache workload of
//!   [`crate::serving`].
//!
//! `compare` implements `--baseline`: parse the committed artifact,
//! collect [`ExecutorsSnapshot::regressions`] verdicts, and let the
//! binary exit nonzero when any are found.

use crate::serving::mixed_patterns;
use dgs_graph::generate::random;
use dgs_graph::{Graph, Pattern};
use dgs_net::{ExecutorsSnapshot, LatencyHistogram};
use dgs_partition::{hash_partition, Fragmentation};
use dgs_sim::{hashset_simulation, hhk_simulation};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the executors-area trajectory run.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Data-graph nodes (edges are 4×).
    pub nodes: usize,
    /// Number of sites.
    pub sites: usize,
    /// Queries in the measured stream.
    pub queries: usize,
    /// Distinct labels.
    pub labels: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Timed repetitions of the kernel leg (the per-query kernels are
    /// fast; repeating keeps the measurement out of clock noise).
    pub kernel_iters: usize,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            nodes: 3_000,
            sites: 4,
            queries: 24,
            labels: 4,
            seed: 17,
            kernel_iters: 3,
        }
    }
}

impl TrajectoryConfig {
    /// The CI smoke configuration (`--test`): small enough for a debug
    /// build, still running every leg.
    pub fn smoke() -> Self {
        TrajectoryConfig {
            nodes: 300,
            queries: 6,
            kernel_iters: 1,
            ..TrajectoryConfig::default()
        }
    }
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

/// Times one centralized kernel over the whole query stream,
/// `iters` times, returning the per-pass mean and the last pass's
/// relations (for the conformance check).
fn time_kernel(
    g: &Graph,
    queries: &[Pattern],
    iters: usize,
    kernel: impl Fn(&Pattern, &Graph) -> dgs_sim::SimResult,
) -> (Vec<dgs_sim::SimResult>, f64) {
    // Warmup pass: fault the graph into cache before timing.
    for q in queries {
        let _ = kernel(q, g);
    }
    let (results, total_ms) = time_ms(|| {
        let mut last = Vec::new();
        for _ in 0..iters.max(1) {
            last = queries.iter().map(|q| kernel(q, g)).collect();
        }
        last
    });
    (results, total_ms / iters.max(1) as f64)
}

/// Runs the executors-area trajectory: kernel representation win +
/// intra-query parallelism win, with answer-equality asserts
/// throughout. Panics if any pair of legs disagrees on an answer —
/// a trajectory number for a wrong answer is worthless.
pub fn run_executors(cfg: &TrajectoryConfig) -> ExecutorsSnapshot {
    let g = random::uniform(cfg.nodes, 4 * cfg.nodes, cfg.labels, cfg.seed);
    let queries = mixed_patterns(cfg.queries, cfg.labels, cfg.seed);

    // Leg 1 — representation win: HashSet-of-pairs reference kernel
    // vs the flat bitset kernel, same stream, centralized.
    let (hs, hashset_kernel_ms) = time_kernel(&g, &queries, cfg.kernel_iters, |q, g| {
        hashset_simulation(q, g)
    });
    let (bs, bitset_kernel_ms) = time_kernel(&g, &queries, cfg.kernel_iters, hhk_simulation);
    for (i, (a, b)) in hs.iter().zip(&bs).enumerate() {
        assert_eq!(
            a.relation, b.relation,
            "kernel answers diverge on query {i}"
        );
    }

    // Leg 2 — intra-query parallelism: the same distributed session,
    // queried one pattern at a time, with the per-fragment Phase-1
    // fan-out forced off (1 worker) and then on (the builder default).
    let assign = hash_partition(g.node_count(), cfg.sites, cfg.seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, cfg.sites));
    let sequential = dgs_core::SimEngine::builder(&g, Arc::clone(&frag))
        .batch_workers(1)
        .cache(false)
        .build();
    let parallel = dgs_core::SimEngine::builder(&g, frag).cache(false).build();

    let (seq_reports, seq_query_ms) = time_ms(|| {
        queries
            .iter()
            .map(|q| sequential.query(q).expect("trajectory query"))
            .collect::<Vec<_>>()
    });
    let mut latency = LatencyHistogram::new();
    let (par_reports, par_query_ms) = time_ms(|| {
        queries
            .iter()
            .map(|q| {
                let t0 = Instant::now();
                let r = parallel.query(q).expect("trajectory query");
                latency.record_duration(t0.elapsed());
                r
            })
            .collect::<Vec<_>>()
    });
    for (i, (a, b)) in seq_reports.iter().zip(&par_reports).enumerate() {
        assert_eq!(
            a.relation, b.relation,
            "intra-query parallel answer diverges on query {i}"
        );
        assert_eq!(
            bs[i].relation, b.relation,
            "distributed answer diverges from the centralized kernel on query {i}"
        );
    }

    ExecutorsSnapshot::of_run(
        hashset_kernel_ms,
        bitset_kernel_ms,
        seq_query_ms,
        par_query_ms,
        &latency,
    )
}

/// Renders an executors snapshot as the human-readable trajectory
/// report printed by the binary.
pub fn render_executors(s: &ExecutorsSnapshot) -> String {
    format!(
        "## trajectory: executors\n\n\
         kernel (centralized, {q} queries/pass): HashSet {hk:.2} ms, bitset {bk:.2} ms  \
         -> x{ks:.2} representation win\n\
         engine (distributed, per-query): sequential {sq:.2} ms, pooled {pq:.2} ms  \
         -> x{is:.2} intra-query win\n\
         per-query latency (pooled): p50 {p50:.1} us  p99 {p99:.1} us\n",
        q = s.queries,
        hk = s.hashset_kernel_ms,
        bk = s.bitset_kernel_ms,
        ks = s.kernel_speedup,
        sq = s.seq_query_ms,
        pq = s.par_query_ms,
        is = s.intra_speedup,
        p50 = s.query_p50_us,
        p99 = s.query_p99_us,
    )
}

/// Compares a fresh snapshot against the committed baseline file.
/// `Ok(())` when within the envelope; `Err` carries one line per
/// verdict. `tolerance` is relative slack on the within-run ratios
/// (0.20 = "20% worse than the committed envelope fails CI").
pub fn compare(
    snap: &ExecutorsSnapshot,
    baseline_json: &str,
    tolerance: f64,
) -> Result<(), Vec<String>> {
    let Some(base) = ExecutorsSnapshot::parse_json(baseline_json) else {
        return Err(vec![
            "baseline is not a parsable ExecutorsSnapshot (wrong version or corrupt file)".into(),
        ]);
    };
    // 200 µs absolute latency floor: debug-vs-release and runner
    // jitter dwarf sub-millisecond percentiles.
    let verdicts = snap.regressions(&base, tolerance, 200.0);
    if verdicts.is_empty() {
        Ok(())
    } else {
        Err(verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_trajectory_is_consistent() {
        let snap = run_executors(&TrajectoryConfig::smoke());
        assert_eq!(snap.queries, 6);
        assert!(snap.hashset_kernel_ms > 0.0);
        assert!(snap.bitset_kernel_ms > 0.0);
        assert!(snap.kernel_speedup > 0.0);
        assert!(snap.query_p99_us >= snap.query_p50_us);
        // Round-trips through the committed-artifact form.
        let back = ExecutorsSnapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(back.queries, snap.queries);
    }

    #[test]
    fn compare_flags_regressions() {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(50_000);
        }
        let good = ExecutorsSnapshot::of_run(80.0, 10.0, 40.0, 20.0, &h);
        assert!(compare(&good, &good.to_json(), 0.2).is_ok());
        let slow = ExecutorsSnapshot::of_run(80.0, 60.0, 40.0, 20.0, &h);
        let err = compare(&slow, &good.to_json(), 0.2).unwrap_err();
        assert!(!err.is_empty());
        assert!(compare(&good, "not json", 0.2).is_err());
    }
}
