//! The query-preserving compression experiment (`abl-compress`).
//!
//! §7 of the paper proposes combining distributed processing with
//! graph compression; `dgs-sim::compress` implements the
//! simulation-query compression of Fan et al. (SIGMOD 2012). This
//! experiment measures, per graph family:
//!
//! * the compression ratio `|Gc| / |G|` under simulation equivalence
//!   and under the cheaper bisimulation partition;
//! * one-off compression time;
//! * query time on `G` vs on `Gc` (mean over the workload queries,
//!   answers verified equal).
//!
//! Simulation-equivalence compression holds an `O(|V|²)` table, so
//! this experiment runs on fixed moderate sizes (thousands of nodes)
//! rather than the `--scale`d figure workloads; bisimulation has no
//! such limit.

use crate::workloads::Workloads;
use dgs_graph::{Graph, Pattern};
use dgs_sim::{compress_bisim, compress_simeq, hhk_simulation, CompressedGraph};
use std::fmt::Write as _;
use std::time::Instant;

/// One graph family's compression measurements.
#[derive(Clone, Debug)]
pub struct CompressionRow {
    /// Family name.
    pub family: String,
    /// `|V| + |E|` of the original graph.
    pub g_size: usize,
    /// `|Gc|` and compression time under simulation equivalence.
    pub simeq_size: usize,
    /// Simulation-equivalence compression time, ms.
    pub simeq_ms: f64,
    /// `|Gc|` and compression time under bisimulation.
    pub bisim_size: usize,
    /// Bisimulation compression time, ms.
    pub bisim_ms: f64,
    /// Mean query time on `G`, ms.
    pub query_g_ms: f64,
    /// Mean query time on the simulation-equivalence quotient, ms.
    pub query_simeq_ms: f64,
    /// Mean query time on the bisimulation quotient, ms.
    pub query_bisim_ms: f64,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

fn mean_query_ms(g: &Graph, queries: &[Pattern]) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let (_, ms) = time_ms(|| hhk_simulation(q, g));
        total += ms;
    }
    total / queries.len().max(1) as f64
}

fn mean_query_compressed_ms(c: &CompressedGraph, queries: &[Pattern]) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let (_, ms) = time_ms(|| c.query(q));
        total += ms;
    }
    total / queries.len().max(1) as f64
}

/// Measures one family; panics if either quotient answers any query
/// differently from the oracle (the experiment doubles as an
/// end-to-end exactness check).
pub fn measure_family(family: &str, g: &Graph, queries: &[Pattern]) -> CompressionRow {
    let (simeq, simeq_ms) = time_ms(|| compress_simeq(g));
    let (bisim, bisim_ms) = time_ms(|| compress_bisim(g));
    for q in queries {
        let oracle = hhk_simulation(q, g).relation;
        assert_eq!(simeq.query_expanded(q), oracle, "{family}: simeq mismatch");
        assert_eq!(bisim.query_expanded(q), oracle, "{family}: bisim mismatch");
    }
    CompressionRow {
        family: family.to_owned(),
        g_size: g.size(),
        simeq_size: simeq.graph.size(),
        simeq_ms,
        bisim_size: bisim.graph.size(),
        bisim_ms,
        query_g_ms: mean_query_ms(g, queries),
        query_simeq_ms: mean_query_compressed_ms(&simeq, queries),
        query_bisim_ms: mean_query_compressed_ms(&bisim, queries),
    }
}

/// Runs the compression experiment over the graph families. Label
/// selectivity drives the achievable ratio (equivalence respects
/// labels), so the web family is measured at both the paper's
/// `|Σ| = 15` and a label-sparse `|Σ| = 4`.
pub fn run(w: &Workloads) -> Vec<CompressionRow> {
    use dgs_graph::generate::{dag, random, tree};
    let queries15 = w.cyclic_queries(4, 7);
    let dag_queries: Vec<Pattern> = (0..w.queries)
        .map(|i| {
            dgs_graph::generate::patterns::random_dag_with_depth(4, 6, 3, 8, w.seed + i as u64)
        })
        .collect();
    let sparse_queries: Vec<Pattern> = (0..w.queries)
        .map(|i| dgs_graph::generate::patterns::random_cyclic(4, 7, 4, w.seed + i as u64))
        .collect();
    let sparse_dag_queries: Vec<Pattern> = (0..w.queries)
        .map(|i| {
            dgs_graph::generate::patterns::random_dag_with_depth(4, 6, 3, 4, w.seed + i as u64)
        })
        .collect();
    vec![
        measure_family(
            "web |Σ|=15",
            &random::web_like(3_000, 15_000, 15, w.seed),
            &queries15,
        ),
        measure_family(
            "web |Σ|=4",
            &random::web_like(3_000, 15_000, 4, w.seed),
            &sparse_queries,
        ),
        measure_family(
            "citation DAG",
            &dag::citation_like(1_400, 3_000, 8, w.seed),
            &dag_queries,
        ),
        measure_family(
            "tree |Σ|=4",
            &tree::random_tree(2_000, 4, w.seed),
            &sparse_dag_queries,
        ),
    ]
}

/// Renders the rows as a paper-style table.
pub fn render(rows: &[CompressionRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Ablation: query-preserving compression (centralized; exactness asserted) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>8}  {:>8} {:>6} {:>9}  {:>8} {:>6} {:>9}  {:>8} {:>9} {:>9}",
        "family",
        "|G|",
        "|Gc|sim",
        "ratio",
        "t_c (ms)",
        "|Gc|bis",
        "ratio",
        "t_c (ms)",
        "q(G) ms",
        "q(Gsim)",
        "q(Gbis)"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<14} {:>8}  {:>8} {:>5.0}% {:>9.2}  {:>8} {:>5.0}% {:>9.2}  {:>8.3} {:>9.3} {:>9.3}",
            r.family,
            r.g_size,
            r.simeq_size,
            100.0 * r.simeq_size as f64 / r.g_size.max(1) as f64,
            r.simeq_ms,
            r.bisim_size,
            100.0 * r.bisim_size as f64 / r.g_size.max(1) as f64,
            r.bisim_ms,
            r.query_g_ms,
            r.query_simeq_ms,
            r.query_bisim_ms,
        )
        .unwrap();
    }
    out
}

/// Writes the rows as `abl-compress.csv` under `dir`.
pub fn write_csv(rows: &[CompressionRow], dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut csv = String::from(
        "family,g_size,simeq_size,simeq_ms,bisim_size,bisim_ms,query_g_ms,query_simeq_ms,query_bisim_ms\n",
    );
    for r in rows {
        writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{}",
            r.family,
            r.g_size,
            r.simeq_size,
            r.simeq_ms,
            r.bisim_size,
            r.bisim_ms,
            r.query_g_ms,
            r.query_simeq_ms,
            r.query_bisim_ms
        )
        .unwrap();
    }
    std::fs::write(dir.join("abl-compress.csv"), csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_family_measures_and_verifies() {
        let w = Workloads {
            scale: 0.01,
            queries: 2,
            seed: 3,
        };
        let g = dgs_graph::generate::random::web_like(400, 2_000, 8, 3);
        let queries = w.cyclic_queries(4, 7);
        let row = measure_family("tiny-web", &g, &queries);
        assert!(row.simeq_size <= row.g_size);
        assert!(row.bisim_size <= row.g_size);
        assert!(row.simeq_size <= row.bisim_size);
        let table = render(std::slice::from_ref(&row));
        assert!(table.contains("tiny-web"));
        let dir = std::env::temp_dir().join("dgs-compress-test");
        write_csv(&[row], &dir).unwrap();
        assert!(dir.join("abl-compress.csv").exists());
    }
}
