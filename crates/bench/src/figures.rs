//! Per-figure sweep runners.
//!
//! Each `exp_*` function reproduces one parameter sweep of §6 and
//! returns a [`Sweep`] carrying both the PT series (Fig. 6 left
//! column) and the DS series (right column); the experiment ids match
//! DESIGN.md §5.

use crate::workloads::Workloads;
use dgs_core::{Algorithm, SimEngine};
use dgs_graph::generate::adversarial;
use dgs_graph::generate::tree as gen_tree;
use dgs_graph::{Graph, Pattern};
use dgs_net::CostModel;
use dgs_partition::{tree_partition, Fragmentation, SiteId};
use std::sync::Arc;

/// One algorithm's measurements across the sweep's x-axis.
#[derive(Clone, Debug)]
pub struct SweepSeries {
    /// Legend name (paper's algorithm names).
    pub name: String,
    /// Mean virtual response time per point, ms.
    pub pt_ms: Vec<f64>,
    /// Mean data shipment per point, KB.
    pub ds_kb: Vec<f64>,
}

/// One parameter sweep = one PT figure + one DS figure.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Experiment id of the PT figure (e.g. `fig6a`).
    pub id_pt: String,
    /// Experiment id of the DS figure (e.g. `fig6b`).
    pub id_ds: String,
    /// Human title.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x-axis tick values.
    pub xs: Vec<String>,
    /// One series per algorithm.
    pub series: Vec<SweepSeries>,
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs `algos` over all `queries` on one fragmented graph; returns
/// `(mean PT ms, mean DS KB)` per algorithm. One `SimEngine` session
/// serves every algorithm and query of the point — the fragmentation
/// and the planner's structural facts are built once.
fn run_point(
    algos: &[Algorithm],
    graph: &Graph,
    assign: &[SiteId],
    k: usize,
    queries: &[Pattern],
    cost: &CostModel,
) -> Vec<(f64, f64)> {
    let frag = Arc::new(Fragmentation::build(graph, assign, k));
    let engine = SimEngine::builder(graph, frag).cost(cost.clone()).build();
    algos
        .iter()
        .map(|algo| {
            let batch = engine.query_batch_with(algo, queries);
            let mut pts = Vec::with_capacity(queries.len());
            let mut dss = Vec::with_capacity(queries.len());
            for r in &batch.reports {
                let r = r.as_ref().expect("bench query applies to its workload");
                pts.push(r.metrics.virtual_time_ms());
                dss.push(r.metrics.data_kb());
            }
            (mean(&pts), mean(&dss))
        })
        .collect()
}

fn sweep_from_points(
    id_pt: &str,
    id_ds: &str,
    title: &str,
    x_label: &str,
    xs: Vec<String>,
    algos: &[Algorithm],
    points: Vec<Vec<(f64, f64)>>,
) -> Sweep {
    let series = algos
        .iter()
        .enumerate()
        .map(|(i, a)| SweepSeries {
            name: a.name().to_owned(),
            pt_ms: points.iter().map(|p| p[i].0).collect(),
            ds_kb: points.iter().map(|p| p[i].1).collect(),
        })
        .collect();
    Sweep {
        id_pt: id_pt.to_owned(),
        id_ds: id_ds.to_owned(),
        title: title.to_owned(),
        x_label: x_label.to_owned(),
        xs,
        series,
    }
}

/// The Exp-1 algorithm set (Fig. 6(a)–(f)).
fn exp1_algos() -> Vec<Algorithm> {
    vec![
        Algorithm::dgpm(),
        Algorithm::DisHhk,
        Algorithm::dgpm_nopt(),
        Algorithm::DMes,
        Algorithm::MatchCentral,
    ]
}

/// Fig. 6(a)/(b): PT and DS vs `|F|` on the web graph.
pub fn exp_dgpm_vary_f(w: &Workloads) -> Sweep {
    let algos = exp1_algos();
    let queries = w.cyclic_queries(5, 10);
    let ks = [4usize, 8, 12, 16, 20];
    let points = ks
        .iter()
        .map(|&k| {
            let (g, assign) = w.web_graph(k, 0.25);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6a",
        "fig6b",
        "dGPM on the web graph, varying |F| (|Q|=(5,10), |Vf|=25%)",
        "|F|",
        ks.iter().map(|k| k.to_string()).collect(),
        &algos,
        points,
    )
}

/// Fig. 6(c)/(d): PT and DS vs `|Q|` at `|F| = 8`.
pub fn exp_dgpm_vary_q(w: &Workloads) -> Sweep {
    let algos = exp1_algos();
    let k = 8;
    let (g, assign) = w.web_graph(k, 0.25);
    let sizes = [(4usize, 8usize), (5, 10), (6, 12), (7, 14), (8, 16)];
    let points = sizes
        .iter()
        .map(|&(nq, eq)| {
            let queries = w.cyclic_queries(nq, eq);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6c",
        "fig6d",
        "dGPM on the web graph, varying |Q| (|F|=8, |Vf|=25%)",
        "|Q|",
        sizes.iter().map(|(n, e)| format!("({n},{e})")).collect(),
        &algos,
        points,
    )
}

/// Fig. 6(e)/(f): PT and DS vs `|Vf|` at `|F| = 8`.
pub fn exp_dgpm_vary_vf(w: &Workloads) -> Sweep {
    let algos = exp1_algos();
    let k = 8;
    let queries = w.cyclic_queries(5, 10);
    let targets = [0.25, 0.30, 0.35, 0.40, 0.45, 0.50];
    let points = targets
        .iter()
        .map(|&t| {
            let (g, assign) = w.web_graph(k, t);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6e",
        "fig6f",
        "dGPM on the web graph, varying |Vf| (|F|=8, |Q|=(5,10))",
        "|Vf|/|V|",
        targets.iter().map(|t| format!("{t:.2}")).collect(),
        &algos,
        points,
    )
}

/// The Exp-2 algorithm set (Fig. 6(g)–(l)).
fn exp2_algos() -> Vec<Algorithm> {
    vec![
        Algorithm::Dgpmd,
        Algorithm::DisHhk,
        Algorithm::DMes,
        Algorithm::MatchCentral,
    ]
}

/// Fig. 6(g)/(h): PT and DS vs pattern diameter `d` on the citation
/// DAG.
pub fn exp_dgpmd_vary_d(w: &Workloads) -> Sweep {
    let algos = exp2_algos();
    let k = 8;
    let (g, assign) = w.citation_graph(k, 0.25);
    let ds = [2usize, 3, 4, 5, 6, 7, 8];
    let points = ds
        .iter()
        .map(|&d| {
            let queries = w.dag_queries(9, 13, d);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6g",
        "fig6h",
        "dGPMd on the citation DAG, varying d (|F|=8, |Q|=(9,13))",
        "d",
        ds.iter().map(|d| d.to_string()).collect(),
        &algos,
        points,
    )
}

/// Fig. 6(i)/(j): PT and DS vs `|F|` on the citation DAG (d = 4).
pub fn exp_dgpmd_vary_f(w: &Workloads) -> Sweep {
    let algos = exp2_algos();
    let queries = w.dag_queries(9, 13, 4);
    let ks = [4usize, 8, 12, 16, 20];
    let points = ks
        .iter()
        .map(|&k| {
            let (g, assign) = w.citation_graph(k, 0.25);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6i",
        "fig6j",
        "dGPMd on the citation DAG, varying |F| (d=4, |Q|=(9,13))",
        "|F|",
        ks.iter().map(|k| k.to_string()).collect(),
        &algos,
        points,
    )
}

/// Fig. 6(k)/(l): PT and DS vs `|Vf|` on the citation DAG.
pub fn exp_dgpmd_vary_vf(w: &Workloads) -> Sweep {
    let algos = exp2_algos();
    let k = 8;
    let queries = w.dag_queries(9, 13, 4);
    let targets = [0.25, 0.30, 0.35, 0.40, 0.45, 0.50];
    let points = targets
        .iter()
        .map(|&t| {
            let (g, assign) = w.citation_graph(k, t);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6k",
        "fig6l",
        "dGPMd on the citation DAG, varying |Vf| (|F|=8, d=4)",
        "|Vf|/|V|",
        targets.iter().map(|t| format!("{t:.2}")).collect(),
        &algos,
        points,
    )
}

/// The Exp-3 algorithm set (Fig. 6(m)–(p); Match cannot cope with the
/// large graphs, exactly as in the paper).
fn exp3_algos() -> Vec<Algorithm> {
    vec![
        Algorithm::dgpm(),
        Algorithm::DisHhk,
        Algorithm::dgpm_nopt(),
        Algorithm::DMes,
    ]
}

/// Fig. 6(m)/(n): PT and DS vs `|F|` on the large synthetic graph.
pub fn exp_syn_vary_f(w: &Workloads) -> Sweep {
    let algos = exp3_algos();
    let queries = w.cyclic_queries(5, 10);
    let ks = [8usize, 12, 16, 20];
    let points = ks
        .iter()
        .map(|&k| {
            let (g, assign) = w.synthetic_graph(300_000, k, 0.20);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6m",
        "fig6n",
        "Synthetic graph (300K,1.2M)·scale, varying |F| (|Vf|=20%)",
        "|F|",
        ks.iter().map(|k| k.to_string()).collect(),
        &algos,
        points,
    )
}

/// Fig. 6(o)/(p): PT and DS vs `|G|` at `|F| = 20`.
pub fn exp_syn_vary_g(w: &Workloads) -> Sweep {
    let algos = exp3_algos();
    let queries = w.cyclic_queries(5, 10);
    let k = 20;
    let bases = [
        200_000usize,
        300_000,
        400_000,
        500_000,
        600_000,
        700_000,
        800_000,
    ];
    let points = bases
        .iter()
        .map(|&n| {
            let (g, assign) = w.synthetic_graph(n, k, 0.20);
            run_point(&algos, &g, &assign, k, &queries, &w.cost_model())
        })
        .collect();
    sweep_from_points(
        "fig6o",
        "fig6p",
        "Synthetic graphs, varying |G| (|F|=20, |Vf|=20%)",
        "|V| (·scale)",
        bases
            .iter()
            .map(|n| format!("{}K", (*n as f64 * w.scale / 1000.0).round()))
            .collect(),
        &algos,
        points,
    )
}

/// Theorem 1(1) companion: response time on the Fig. 2 ring family
/// must grow with the number of fragments `n` even though `|Fm|` and
/// `|Q|` stay constant. The intact ring is the possibility contrast
/// (constant PT, zero DS).
pub fn exp_impossibility_rt(_w: &Workloads) -> Sweep {
    let q = adversarial::q0();
    let ns = [4usize, 8, 16, 32, 64, 128];
    let algo = Algorithm::dgpm_incremental_only();
    let run_one = |g: &Graph, assign: &[SiteId], k: usize| {
        let frag = Arc::new(Fragmentation::build(g, assign, k));
        SimEngine::builder(g, frag)
            .build()
            .query_with(&algo, &q)
            .expect("ring workload is valid")
    };
    let mut broken = SweepSeries {
        name: "dGPM (broken ring)".into(),
        pt_ms: vec![],
        ds_kb: vec![],
    };
    let mut intact = SweepSeries {
        name: "dGPM (intact ring)".into(),
        pt_ms: vec![],
        ds_kb: vec![],
    };
    for &n in &ns {
        let assign = adversarial::per_pair_assignment(n);
        let r = run_one(&adversarial::broken_cycle_graph(n), &assign, n);
        assert!(!r.is_match);
        broken.pt_ms.push(r.metrics.virtual_time_ms());
        broken.ds_kb.push(r.metrics.data_kb());

        let r2 = run_one(&adversarial::cycle_graph(n), &assign, n);
        assert!(r2.is_match);
        intact.pt_ms.push(r2.metrics.virtual_time_ms());
        intact.ds_kb.push(r2.metrics.data_kb());
    }
    Sweep {
        id_pt: "imp-rt".into(),
        id_ds: "imp-rt-ds".into(),
        title: "Impossibility (Thm 1(1)): Fig. 2 ring, one pair per site".into(),
        x_label: "n (pairs = sites)".into(),
        xs: ns.iter().map(|n| n.to_string()).collect(),
        series: vec![broken, intact],
    }
}

/// Theorem 1(2) companion: with only two fragments (A side / B side),
/// data shipment on the broken ring must grow with `n` even though
/// `|F|` and `|Q|` are constants.
pub fn exp_impossibility_ds(_w: &Workloads) -> Sweep {
    let q = adversarial::q0();
    let ns = [64usize, 128, 256, 512, 1024];
    let algo = Algorithm::dgpm_incremental_only();
    let mut broken = SweepSeries {
        name: "dGPM (broken ring, |F|=2)".into(),
        pt_ms: vec![],
        ds_kb: vec![],
    };
    for &n in &ns {
        let assign = adversarial::bipartite_assignment(n);
        let g = adversarial::broken_cycle_graph(n);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let r = SimEngine::builder(&g, frag)
            .build()
            .query_with(&algo, &q)
            .expect("ring workload is valid");
        assert!(!r.is_match);
        broken.pt_ms.push(r.metrics.virtual_time_ms());
        broken.ds_kb.push(r.metrics.data_kb());
    }
    Sweep {
        id_pt: "imp-ds-pt".into(),
        id_ds: "imp-ds".into(),
        title: "Impossibility (Thm 1(2)): Fig. 2 ring, 2 fragments".into(),
        x_label: "n (pairs)".into(),
        xs: ns.iter().map(|n| n.to_string()).collect(),
        series: vec![broken],
    }
}

/// Corollary 4 companion: `dGPMt` vs `dGPM` on distributed trees —
/// DS stays `O(|Q||F|)` while PT drops with `|F|`.
pub fn exp_tree(w: &Workloads) -> Sweep {
    let n = ((20_000.0 * w.scale) as usize).max(64);
    let g = gen_tree::random_tree_with_chain_bias(n, 15, 0.3, w.seed + 3);
    let queries: Vec<Pattern> = w.dag_queries(5, 7, 3);
    let ks = [4usize, 8, 12, 16, 20];
    let algos = [Algorithm::Dgpmt, Algorithm::dgpm_incremental_only()];
    let mut series: Vec<SweepSeries> = algos
        .iter()
        .map(|a| SweepSeries {
            name: a.name().to_owned(),
            pt_ms: vec![],
            ds_kb: vec![],
        })
        .collect();
    for &k in &ks {
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag).cost(w.cost_model()).build();
        for (i, algo) in algos.iter().enumerate() {
            let mut pts = vec![];
            let mut dss = vec![];
            for r in engine.query_batch_with(algo, &queries).reports {
                let r = r.expect("tree workload is valid");
                pts.push(r.metrics.virtual_time_ms());
                dss.push(r.metrics.data_kb());
            }
            series[i].pt_ms.push(mean(&pts));
            series[i].ds_kb.push(mean(&dss));
        }
    }
    Sweep {
        id_pt: "tree-pt".into(),
        id_ds: "tree-ds".into(),
        title: "Corollary 4: dGPMt on a distributed tree, varying |F|".into(),
        x_label: "|F|".into(),
        xs: ks.iter().map(|k| k.to_string()).collect(),
        series,
    }
}

/// Ablation A2: the push threshold θ (PT/DS trade-off of §4.2).
pub fn exp_ablation_push(w: &Workloads) -> Sweep {
    use dgs_core::dgpm::DgpmConfig;
    let k = 8;
    let (g, assign) = w.web_graph(k, 0.35);
    let queries = w.cyclic_queries(5, 10);
    let thetas: Vec<(String, Option<f64>)> = vec![
        ("off".into(), None),
        ("2.0".into(), Some(2.0)),
        ("0.5".into(), Some(0.5)),
        ("0.2".into(), Some(0.2)),
        ("0.05".into(), Some(0.05)),
        ("0.0".into(), Some(0.0)),
    ];
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    // One session serves every θ setting — exactly the load-once /
    // query-many shape the engine is for.
    let engine = SimEngine::builder(&g, frag).cost(w.cost_model()).build();
    let mut s = SweepSeries {
        name: "dGPM(θ)".into(),
        pt_ms: vec![],
        ds_kb: vec![],
    };
    for (_, theta) in &thetas {
        let cfg = DgpmConfig {
            incremental: true,
            push_threshold: *theta,
            push_size_cap: 4096,
        };
        let algo = Algorithm::Dgpm(cfg);
        let mut pts = vec![];
        let mut dss = vec![];
        for r in engine.query_batch_with(&algo, &queries).reports {
            let r = r.expect("web workload is valid");
            pts.push(r.metrics.virtual_time_ms());
            dss.push(r.metrics.data_kb());
        }
        s.pt_ms.push(mean(&pts));
        s.ds_kb.push(mean(&dss));
    }
    Sweep {
        id_pt: "abl-push-pt".into(),
        id_ds: "abl-push-ds".into(),
        title: "Ablation: push threshold θ (web graph, |F|=8, |Vf|=35%)".into(),
        x_label: "θ".into(),
        xs: thetas.into_iter().map(|(s, _)| s).collect(),
        series: vec![s],
    }
}

/// Ablation A2b: the push operation on a *latency-bound* workload —
/// the Fig. 2 ring, where waiting time is the response-time
/// bottleneck. This is the regime §4.2 designs the push for: "a push
/// operation ships more data in exchange for better waiting time".
pub fn exp_ablation_push_ring(_w: &Workloads) -> Sweep {
    use dgs_core::dgpm::DgpmConfig;
    let q = adversarial::q0();
    let ns = [8usize, 16, 32, 64];
    let algos: Vec<(String, Algorithm)> = vec![
        (
            "dGPM (push θ=0)".into(),
            Algorithm::Dgpm(DgpmConfig {
                incremental: true,
                push_threshold: Some(0.0),
                push_size_cap: 4096,
            }),
        ),
        ("dGPM (no push)".into(), Algorithm::dgpm_incremental_only()),
    ];
    let mut series: Vec<SweepSeries> = algos
        .iter()
        .map(|(name, _)| SweepSeries {
            name: name.clone(),
            pt_ms: vec![],
            ds_kb: vec![],
        })
        .collect();
    for &n in &ns {
        let g = adversarial::broken_cycle_graph(n);
        let assign = adversarial::per_pair_assignment(n);
        let frag = Arc::new(Fragmentation::build(&g, &assign, n));
        let engine = SimEngine::builder(&g, frag).build();
        for (i, (_, algo)) in algos.iter().enumerate() {
            let r = engine.query_with(algo, &q).expect("ring workload is valid");
            series[i].pt_ms.push(r.metrics.virtual_time_ms());
            series[i].ds_kb.push(r.metrics.data_kb());
        }
    }
    Sweep {
        id_pt: "abl-push-ring-pt".into(),
        id_ds: "abl-push-ring-ds".into(),
        title: "Ablation: push on a latency-bound ring (waiting-time regime)".into(),
        x_label: "n (pairs = sites)".into(),
        xs: ns.iter().map(|n| n.to_string()).collect(),
        series,
    }
}

/// Ablation A1: incremental vs from-scratch local evaluation across
/// fragment sizes (the paper's "dGPM is 20× faster than dGPMNOpt,
/// more so on larger fragments").
pub fn exp_ablation_incremental(w: &Workloads) -> Sweep {
    let algos = [Algorithm::dgpm_incremental_only(), Algorithm::dgpm_nopt()];
    let queries = w.cyclic_queries(5, 10);
    let k = 8;
    let sizes = [10_000usize, 20_000, 40_000, 80_000];
    let mut series: Vec<SweepSeries> = algos
        .iter()
        .map(|a| SweepSeries {
            name: a.name().to_owned(),
            pt_ms: vec![],
            ds_kb: vec![],
        })
        .collect();
    for &n in &sizes {
        let (g, assign) = w.synthetic_graph(n, k, 0.35);
        let pts = run_point(&algos, &g, &assign, k, &queries, &w.cost_model());
        for (i, (pt, ds)) in pts.into_iter().enumerate() {
            series[i].pt_ms.push(pt);
            series[i].ds_kb.push(ds);
        }
    }
    Sweep {
        id_pt: "abl-incr-pt".into(),
        id_ds: "abl-incr-ds".into(),
        title: "Ablation: incremental lEval vs from-scratch (|F|=8)".into(),
        x_label: "|V| (·scale)".into(),
        xs: sizes.iter().map(|n| format!("{}K", n / 1000)).collect(),
        series,
    }
}

/// Ablation A5: SCC-stratified batching (`dGPMs`) vs asynchronous
/// `dGPM` on cyclic queries, across `|F|`, under a **latency-bound**
/// cost model (per-message overhead ×20): the regime where batched
/// rounds pay off, mirroring Example 10's message-count argument.
pub fn exp_ablation_scc(w: &Workloads) -> Sweep {
    let algos = [
        Algorithm::Dgpms,
        Algorithm::dgpm_incremental_only(),
        Algorithm::dgpm(),
    ];
    let queries = w.cyclic_queries(5, 10);
    let ks = [4usize, 8, 12, 16, 20];
    let mut cost = w.cost_model();
    cost.ns_per_message *= 20;
    cost.latency_ns *= 4;
    let mut series: Vec<SweepSeries> = algos
        .iter()
        .map(|a| SweepSeries {
            name: a.name().to_owned(),
            pt_ms: vec![],
            ds_kb: vec![],
        })
        .collect();
    for &k in &ks {
        let (g, assign) = w.web_graph(k, 0.35);
        let pts = run_point(&algos, &g, &assign, k, &queries, &cost);
        for (i, (pt, ds)) in pts.into_iter().enumerate() {
            series[i].pt_ms.push(pt);
            series[i].ds_kb.push(ds);
        }
    }
    Sweep {
        id_pt: "abl-scc-pt".into(),
        id_ds: "abl-scc-ds".into(),
        title: "Ablation: SCC-stratified dGPMs vs async dGPM (latency-bound net)".into(),
        x_label: "|F|".into(),
        xs: ks.iter().map(|k| k.to_string()).collect(),
        series,
    }
}

/// Ablation A6: stragglers — one site slowed by 1–16×, web graph,
/// `|F|` = 8. The asynchronous `dGPM` degrades gracefully (only work
/// that *depends* on the straggler waits), while the round-based
/// `dGPMs` pays the slowdown at every barrier.
pub fn exp_ablation_straggler(w: &Workloads) -> Sweep {
    let algos = [
        Algorithm::dgpm(),
        Algorithm::dgpm_incremental_only(),
        Algorithm::Dgpms,
    ];
    let k = 8;
    let (g, assign) = w.web_graph(k, 0.35);
    let queries = w.cyclic_queries(5, 10);
    let slowdowns = [1.0f64, 2.0, 4.0, 8.0, 16.0];
    let mut series: Vec<SweepSeries> = algos
        .iter()
        .map(|a| SweepSeries {
            name: a.name().to_owned(),
            pt_ms: vec![],
            ds_kb: vec![],
        })
        .collect();
    for &s in &slowdowns {
        let cost = w.cost_model().with_straggler(0, s);
        let pts = run_point(&algos, &g, &assign, k, &queries, &cost);
        for (i, (pt, ds)) in pts.into_iter().enumerate() {
            series[i].pt_ms.push(pt);
            series[i].ds_kb.push(ds);
        }
    }
    Sweep {
        id_pt: "abl-straggler-pt".into(),
        id_ds: "abl-straggler-ds".into(),
        title: "Ablation: one straggler site (web graph, |F|=8)".into(),
        x_label: "slowdown".into(),
        xs: slowdowns.iter().map(|s| format!("{s}x")).collect(),
        series,
    }
}

/// Ablation A7: at-least-once fault injection — a fraction of data
/// messages is delivered twice. Answers are unchanged (asserted by the
/// integration tests); here we measure the traffic and response-time
/// cost of the redundancy.
pub fn exp_ablation_faults(w: &Workloads) -> Sweep {
    use dgs_core::dgpm::{self, DgpmConfig};
    use dgs_net::{FaultPlan, VirtualExecutor};
    let k = 8;
    let (g, assign) = w.web_graph(k, 0.35);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let queries = w.cyclic_queries(5, 10);
    let rates = [0.0f64, 0.25, 0.5, 1.0];
    let mut s = SweepSeries {
        name: "dGPM".into(),
        pt_ms: vec![],
        ds_kb: vec![],
    };
    for &rate in &rates {
        let mut pts = vec![];
        let mut dss = vec![];
        for q in &queries {
            let qa = Arc::new(q.clone());
            let (coord, sites) = dgpm::build(&frag, &qa, DgpmConfig::incremental_only());
            let exec = VirtualExecutor::new(w.cost_model())
                .with_faults(FaultPlan::duplicating(rate, w.seed));
            let o = exec.run(coord, sites);
            pts.push(o.metrics.virtual_time_ms());
            dss.push(o.metrics.data_kb());
        }
        s.pt_ms.push(mean(&pts));
        s.ds_kb.push(mean(&dss));
    }
    Sweep {
        id_pt: "abl-faults-pt".into(),
        id_ds: "abl-faults-ds".into(),
        title: "Ablation: at-least-once delivery (duplicate rate; web graph, |F|=8)".into(),
        x_label: "dup rate".into(),
        xs: rates.iter().map(|r| format!("{r}")).collect(),
        series: vec![s],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workloads {
        Workloads {
            scale: 0.01,
            queries: 1,
            seed: 7,
        }
    }

    #[test]
    fn dgpm_sweep_produces_full_series() {
        let s = exp_dgpm_vary_f(&tiny());
        assert_eq!(s.xs.len(), 5);
        assert_eq!(s.series.len(), 5);
        for ser in &s.series {
            assert_eq!(ser.pt_ms.len(), 5);
            assert_eq!(ser.ds_kb.len(), 5);
            assert!(ser.pt_ms.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn impossibility_rt_grows_with_n() {
        let s = exp_impossibility_rt(&tiny());
        let broken = &s.series[0];
        let first = broken.pt_ms.first().unwrap();
        let last = broken.pt_ms.last().unwrap();
        // 4 -> 128 pairs: PT must grow by far more than noise (the
        // falsification must travel the whole ring).
        assert!(last > &(first * 8.0), "PT {first} -> {last}");
        // The intact ring stays flat and ships nothing.
        let intact = &s.series[1];
        assert!(intact.ds_kb.iter().all(|&x| x == 0.0));
        let ratio = intact.pt_ms.last().unwrap() / intact.pt_ms.first().unwrap();
        assert!(ratio < 3.0, "intact ring PT should stay near-flat: {ratio}");
    }

    #[test]
    fn impossibility_ds_grows_with_n() {
        let s = exp_impossibility_ds(&tiny());
        let ds = &s.series[0].ds_kb;
        assert!(
            ds.last().unwrap() > &(ds.first().unwrap() * 8.0),
            "DS must grow with n: {ds:?}"
        );
    }

    #[test]
    fn tree_sweep_runs() {
        let s = exp_tree(&tiny());
        assert_eq!(s.series.len(), 2);
        assert_eq!(s.series[0].pt_ms.len(), 5);
    }

    #[test]
    fn scc_ablation_runs_and_dgpms_batches() {
        let s = exp_ablation_scc(&tiny());
        assert_eq!(s.series.len(), 3);
        assert_eq!(s.series[0].name, "dGPMs");
        assert!(s.series[0].pt_ms.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn straggler_ablation_pt_grows_with_slowdown() {
        let s = exp_ablation_straggler(&tiny());
        for ser in &s.series {
            assert!(
                ser.pt_ms.last().unwrap() > ser.pt_ms.first().unwrap(),
                "{}: {:?}",
                ser.name,
                ser.pt_ms
            );
        }
    }

    #[test]
    fn fault_ablation_ds_grows_with_rate() {
        let s = exp_ablation_faults(&tiny());
        let ds = &s.series[0].ds_kb;
        assert!(
            ds.last().unwrap() >= ds.first().unwrap(),
            "duplication cannot shrink traffic: {ds:?}"
        );
    }
}
