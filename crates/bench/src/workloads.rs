//! Workload construction for the evaluation experiments.
//!
//! Dataset substitutions (DESIGN.md §4): the Yahoo web graph becomes a
//! scale-free labeled graph with the same |V|:|E| = 1:5 ratio and
//! |Σ| = 15; the Citation DAG becomes a community-structured
//! citation-like DAG with |V|:|E| ≈ 1.4:3; Exp-3's synthetic graphs
//! keep the paper's 1:4 ratio. `|Vf|` targets are realized
//! analytically through the community generators' cross-fraction
//! (checked by tests to land within a few percent).

use dgs_graph::generate::{dag, patterns, random};
use dgs_graph::{Graph, Pattern};
use dgs_partition::SiteId;

/// Scaling knobs shared by all experiments.
#[derive(Clone, Debug)]
pub struct Workloads {
    /// Multiplier over the default (1/100-of-paper) dataset sizes.
    pub scale: f64,
    /// Queries averaged per data point (the paper uses 20).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Workloads {
    fn default() -> Self {
        Workloads {
            scale: 1.0,
            queries: 3,
            seed: 42,
        }
    }
}

/// The cross-community edge fraction that yields an expected
/// `|Vf|/|V| = target` for a community graph with `n` nodes, `m`
/// edges and `k` communities.
///
/// A node is in `Vf` iff it has ≥1 incoming crossing edge; crossing
/// edges hit uniform targets, so with `mc` crossing edges
/// `P(in Vf) ≈ 1 − exp(−mc/n)`. Solving for the fraction `c` with
/// `mc = c · m · (k−1)/k` gives the formula below (clamped to the unit interval).
pub fn cross_fraction_for_vf(target: f64, n: usize, m: usize, k: usize) -> f64 {
    assert!((0.0..1.0).contains(&target), "target ratio in [0,1)");
    if k <= 1 || m == 0 {
        return 0.0;
    }
    let lambda = -(1.0 - target).ln();
    let mc = lambda * n as f64;
    (mc * k as f64 / (m as f64 * (k as f64 - 1.0))).clamp(0.0, 1.0)
}

impl Workloads {
    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(16)
    }

    /// The virtual-time cost model for this workload scale.
    ///
    /// Datasets default to 1/100 of the paper's sizes, so per-site
    /// compute shrinks ~100×; to preserve the paper's compute-to-
    /// network balance (where EC2 latency was negligible against
    /// seconds of local evaluation), the fixed network constants are
    /// scaled down by the same factor. Bandwidth stays untouched:
    /// shipped bytes shrink with the data, so transfer time keeps its
    /// relative weight automatically.
    pub fn cost_model(&self) -> dgs_net::CostModel {
        let shrink = (self.scale / 100.0).min(1.0);
        let base = dgs_net::CostModel::default();
        dgs_net::CostModel {
            ns_per_message: ((base.ns_per_message as f64 * shrink) as u64).max(50),
            latency_ns: ((base.latency_ns as f64 * shrink) as u64).max(1_000),
            ..base
        }
    }

    /// Exp-1's web-graph substitute: `(30K, 150K)` nodes/edges at
    /// scale 1 (paper: 3M/15M), `|Σ| = 15`, `k` communities tuned to
    /// hit `vf_target`, with the canonical community assignment.
    pub fn web_graph(&self, k: usize, vf_target: f64) -> (Graph, Vec<SiteId>) {
        let n = self.scaled(30_000);
        let m = 5 * n;
        let c = cross_fraction_for_vf(vf_target, n, m, k);
        let g = random::community(n, m, k, c, 15, self.seed);
        let assign = random::community_assignment(n, k);
        (g, assign)
    }

    /// Exp-2's citation substitute: `(14K, 30K)` at scale 1 (paper:
    /// 1.4M/3M), a community-structured DAG.
    pub fn citation_graph(&self, k: usize, vf_target: f64) -> (Graph, Vec<SiteId>) {
        let n = self.scaled(14_000);
        let m = (n as f64 * 30.0 / 14.0) as usize;
        let c = cross_fraction_for_vf(vf_target, n, m, k);
        let g = dag::citation_like_community(n, m, k, c, 15, self.seed + 1);
        let assign = random::community_assignment(n, k);
        (g, assign)
    }

    /// Exp-3's synthetic graphs: `nodes` with `|E| = 4|V|` (paper's
    /// ratio), `|Σ| = 15`.
    pub fn synthetic_graph(&self, nodes: usize, k: usize, vf_target: f64) -> (Graph, Vec<SiteId>) {
        let n = ((nodes as f64 * self.scale) as usize).max(16);
        let m = 4 * n;
        let c = cross_fraction_for_vf(vf_target, n, m, k);
        let g = random::community(n, m, k, c, 15, self.seed + 2);
        let assign = random::community_assignment(n, k);
        (g, assign)
    }

    /// A family of cyclic queries of size `(nq, eq)` (Exp-1/3 average
    /// over such families).
    pub fn cyclic_queries(&self, nq: usize, eq: usize) -> Vec<Pattern> {
        patterns::cyclic_family(self.queries, nq, eq, 15, self.seed + 100)
    }

    /// A family of DAG queries of size `(nq, eq)` with diameter `d`
    /// (Exp-2).
    pub fn dag_queries(&self, nq: usize, eq: usize, d: usize) -> Vec<Pattern> {
        patterns::dag_family(self.queries, nq, eq, d, 15, self.seed + 200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_partition::Fragmentation;

    #[test]
    fn cross_fraction_hits_vf_target() {
        let w = Workloads {
            scale: 0.2,
            ..Default::default()
        };
        for &target in &[0.25, 0.40, 0.50] {
            let (g, assign) = w.web_graph(8, target);
            let f = Fragmentation::build(&g, &assign, 8);
            let got = f.vf() as f64 / g.node_count() as f64;
            assert!(
                (got - target).abs() < 0.05,
                "vf ratio {got} vs target {target}"
            );
        }
    }

    #[test]
    fn citation_graph_is_dag_and_hits_target() {
        use dgs_graph::algo::graph_is_dag;
        let w = Workloads {
            scale: 0.2,
            ..Default::default()
        };
        let (g, assign) = w.citation_graph(8, 0.25);
        assert!(graph_is_dag(&g));
        let f = Fragmentation::build(&g, &assign, 8);
        let got = f.vf() as f64 / g.node_count() as f64;
        assert!((got - 0.25).abs() < 0.06, "vf ratio {got}");
    }

    #[test]
    fn scaled_sizes() {
        let w = Workloads {
            scale: 0.1,
            ..Default::default()
        };
        let (g, _) = w.web_graph(4, 0.25);
        assert_eq!(g.node_count(), 3_000);
        let (g, _) = w.synthetic_graph(300_000, 8, 0.2);
        assert_eq!(g.node_count(), 30_000);
        assert!(g.edge_count() <= 4 * 30_000);
    }

    #[test]
    fn query_families_sized() {
        let w = Workloads::default();
        let qs = w.cyclic_queries(5, 10);
        assert_eq!(qs.len(), 3);
        for q in &qs {
            assert_eq!(q.node_count(), 5);
        }
        let dqs = w.dag_queries(9, 13, 4);
        for q in &dqs {
            assert_eq!(dgs_graph::algo::pattern_longest_path(q), Some(4));
        }
    }

    #[test]
    fn cross_fraction_edge_cases() {
        assert_eq!(cross_fraction_for_vf(0.25, 1000, 0, 4), 0.0);
        assert_eq!(cross_fraction_for_vf(0.25, 1000, 5000, 1), 0.0);
        // Unreachable targets clamp to 1.
        assert_eq!(cross_fraction_for_vf(0.99, 1000, 1000, 2), 1.0);
    }
}
