//! Paper-style table rendering and CSV output.

use crate::figures::Sweep;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v < 0.01 {
        format!("{v:.4}")
    } else if v < 10.0 {
        format!("{v:.2}")
    } else if v < 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.0}")
    }
}

fn render_table(title: &str, x_label: &str, xs: &[String], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(4)
        .max(x_label.len());
    let mut col_w: Vec<usize> = xs.iter().map(|x| x.len()).collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|(_, vals)| vals.iter().map(|&v| fmt_value(v)).collect())
        .collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            col_w[i] = col_w[i].max(c.len());
        }
    }
    write!(out, "  {x_label:<name_w$}").unwrap();
    for (x, w) in xs.iter().zip(&col_w) {
        write!(out, "  {x:>w$}").unwrap();
    }
    writeln!(out).unwrap();
    for ((name, _), row) in rows.iter().zip(&cells) {
        write!(out, "  {name:<name_w$}").unwrap();
        for (c, w) in row.iter().zip(&col_w) {
            write!(out, "  {c:>w$}").unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Renders a sweep as two paper-style tables (PT in ms, DS in KB).
pub fn render_sweep(sweep: &Sweep) -> String {
    let pt_rows: Vec<(String, Vec<f64>)> = sweep
        .series
        .iter()
        .map(|s| (s.name.clone(), s.pt_ms.clone()))
        .collect();
    let ds_rows: Vec<(String, Vec<f64>)> = sweep
        .series
        .iter()
        .map(|s| (s.name.clone(), s.ds_kb.clone()))
        .collect();
    let mut out = String::new();
    writeln!(out, "== {} ==", sweep.title).unwrap();
    out.push_str(&render_table(
        &format!("[{}] response time PT (ms, virtual)", sweep.id_pt),
        &sweep.x_label,
        &sweep.xs,
        &pt_rows,
    ));
    out.push_str(&render_table(
        &format!("[{}] data shipment DS (KB)", sweep.id_ds),
        &sweep.x_label,
        &sweep.xs,
        &ds_rows,
    ));
    out
}

/// Prints a sweep to stdout.
pub fn print_sweep(sweep: &Sweep) {
    print!("{}", render_sweep(sweep));
}

/// Writes a sweep's PT and DS tables as CSV files
/// (`<id>.csv`) under `dir`.
pub fn write_csv(sweep: &Sweep, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (id, metric) in [(&sweep.id_pt, "pt_ms"), (&sweep.id_ds, "ds_kb")] {
        let mut csv = String::new();
        write!(csv, "{}", sweep.x_label).unwrap();
        for s in &sweep.series {
            write!(csv, ",{}", s.name).unwrap();
        }
        writeln!(csv).unwrap();
        for (i, x) in sweep.xs.iter().enumerate() {
            write!(csv, "{x}").unwrap();
            for s in &sweep.series {
                let v = if metric == "pt_ms" {
                    s.pt_ms[i]
                } else {
                    s.ds_kb[i]
                };
                write!(csv, ",{v}").unwrap();
            }
            writeln!(csv).unwrap();
        }
        std::fs::write(dir.join(format!("{id}.csv")), csv)?;
    }
    Ok(())
}

/// Renders Table 1 (the analytic performance bounds) together with a
/// measured sanity row per implemented algorithm.
pub fn render_table1(measured: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Table 1: distributed graph pattern matching — performance bounds =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:<14} {:<6} {:<46} DS",
        "Query", "Data graph", "Type", "PT"
    )
    .unwrap();
    let rows = [
        (
            "XPath [10]",
            "XML trees",
            "P",
            "O(|Q||Fm| + |Q||F|)",
            "O(|Q||F|)",
        ),
        (
            "regular path [5]",
            "XML trees",
            "P",
            "O(|Q||Vf||Fm| + |Fm||F|)",
            "O(|Ef|^2)",
        ),
        (
            "regular path [30]",
            "general graphs",
            "P",
            "O(|Q||Vf||Fm| + |Vf|^2|F|)",
            "O(|Ef|^2)",
        ),
        (
            "regular path [29]",
            "general graphs",
            "M",
            "-",
            "O(|Q|^2|G|^2)",
        ),
        (
            "regular path [12]",
            "general graphs",
            "P",
            "O((|Fm| + |Vf|^2)|Q|^2)",
            "O(|Q|^2|Vf|^2)",
        ),
        (
            "bisimulation [6]",
            "general graphs",
            "M",
            "O((|V|^2+|V||E|)/|F|) total",
            "O(|V|^2)",
        ),
        (
            "simulation [25]",
            "general graphs",
            "M",
            "O((|Vq|+|V|)(|Eq|+|E|))",
            "O(|G|+4|Vf|+|F||Q|)",
        ),
        (
            "simulation (dGPM)",
            "general graphs",
            "P&M",
            "O((|Vq|+|Vm|)(|Eq|+|Em|)|Vq||Vf|)",
            "O(|Ef||Vq|)",
        ),
        (
            "simulation (dGPMd)",
            "DAGs",
            "P&M",
            "O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)",
            "O(|Ef||Vq|)",
        ),
        (
            "simulation (dGPMt)",
            "trees",
            "P",
            "O(|Q||Fm| + |Q||F|)",
            "O(|Q||F|)",
        ),
    ];
    for (q, g, t, pt, ds) in rows {
        writeln!(out, "{q:<22} {g:<14} {t:<6} {pt:<46} {ds}").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Measured on the reference workloads (this implementation):"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>14} {:>14}",
        "Algorithm", "PT (ms)", "DS (KB)"
    )
    .unwrap();
    for (name, pt, ds) in measured {
        writeln!(
            out,
            "{:<22} {:>14} {:>14}",
            name,
            fmt_value(*pt),
            fmt_value(*ds)
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SweepSeries;

    fn sample_sweep() -> Sweep {
        Sweep {
            id_pt: "figX".into(),
            id_ds: "figY".into(),
            title: "test sweep".into(),
            x_label: "|F|".into(),
            xs: vec!["4".into(), "8".into()],
            series: vec![
                SweepSeries {
                    name: "dGPM".into(),
                    pt_ms: vec![1.5, 0.9],
                    ds_kb: vec![0.25, 0.3],
                },
                SweepSeries {
                    name: "Match".into(),
                    pt_ms: vec![100.0, 100.0],
                    ds_kb: vec![5000.0, 5000.0],
                },
            ],
        }
    }

    #[test]
    fn render_contains_all_cells() {
        let text = render_sweep(&sample_sweep());
        for needle in ["figX", "figY", "dGPM", "Match", "1.50", "5000", "|F|"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn csv_written_per_metric() {
        let dir = std::env::temp_dir().join(format!("dgs-bench-test-{}", std::process::id()));
        write_csv(&sample_sweep(), &dir).unwrap();
        let pt = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert!(pt.starts_with("|F|,dGPM,Match"));
        assert!(pt.contains("4,1.5,100"));
        let ds = std::fs::read_to_string(dir.join("figY.csv")).unwrap();
        assert!(ds.contains("8,0.3,5000"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn table1_lists_our_algorithms() {
        let text = render_table1(&[("dGPM".into(), 1.0, 2.0)]);
        for needle in ["dGPMd", "dGPMt", "O(|Ef||Vq|)", "Measured"] {
            assert!(text.contains(needle));
        }
    }
}
