//! The update-throughput workload: a `SimEngine` session absorbing
//! edge-update batches on the social-graph workload, measured as
//! ops/sec for delete-heavy, insert-only, insert-heavy and mixed
//! streams against a **cold-rebuild baseline** (tear the session
//! down, rebuild the fragmentation and the engine, re-answer the
//! query from scratch — what a serving layer without the delta
//! subsystem would have to do per batch).
//!
//! Deletion-only batches are the paper's incremental `lEval` setting
//! (§4.2): the maintained relation only shrinks, each site repairs its
//! counters in `O(|AFF|)`, and the post-batch query is a cache hit —
//! so delete-heavy maintenance must beat the cold rebuild by a wide
//! margin (the bench asserts ≥ 5× at the default scale).
//!
//! Insertion-only batches exercise insertion-side maintenance: each
//! site repairs its HHK counters for the new edges and resurrects
//! falsified pairs, so cached entries stay **exact** (zero
//! invalidations) and the post-batch query is a 0-message cache hit.
//! Its baseline is **invalidate + re-plan** — an identical session
//! that dumps its cache after every batch, paying a full distributed
//! re-evaluation per query, which is exactly what the engine did for
//! insertions before the maintenance landed. Since both sides absorb
//! the identical graph edits, this stream times the *re-serve* leg
//! the two strategies disagree on (cache hit vs invalidate +
//! re-evaluate); the bench asserts ≥ 5× there at the default scale.

use dgs_core::{GraphDelta, SimEngine};
use dgs_graph::generate::social;
use dgs_graph::{Graph, GraphBuilder, NodeId, Pattern};
use dgs_partition::{hash_partition, Fragmentation};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the update experiment.
#[derive(Clone, Debug)]
pub struct UpdateConfig {
    /// Data-graph nodes (edges are 4×).
    pub nodes: usize,
    /// Number of sites.
    pub sites: usize,
    /// Update batches per stream.
    pub batches: usize,
    /// Edge ops per batch.
    pub ops_per_batch: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether the ≥ 5× delete-heavy acceptance bar is asserted
    /// (disabled by `--test`, whose workload is too small for timing
    /// claims).
    pub assert_speedup: bool,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            nodes: 4_000,
            sites: 4,
            batches: 8,
            ops_per_batch: 50,
            seed: 13,
            assert_speedup: true,
        }
    }
}

impl UpdateConfig {
    /// The CI smoke configuration (`--test`): small enough to finish
    /// in seconds, still exercising every code path.
    pub fn smoke() -> Self {
        UpdateConfig {
            nodes: 600,
            batches: 3,
            ops_per_batch: 20,
            assert_speedup: false,
            ..UpdateConfig::default()
        }
    }
}

/// One stream's measurement.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Stream label (`delete-heavy` / `insert-only` / `insert-heavy`
    /// / `mixed`).
    pub label: &'static str,
    /// Total edge ops absorbed.
    pub ops: usize,
    /// Wall time of `apply_delta` + post-batch query, per stream, ms
    /// (`insert-only` times the post-batch re-serve leg only — see
    /// `run_insert_only`).
    pub incremental_ms: f64,
    /// Ops/sec through the delta subsystem.
    pub ops_per_sec: f64,
    /// Wall time of the baseline over the same stream, ms — cold
    /// rebuild for most streams, invalidate + re-plan for
    /// `insert-only`.
    pub rebuild_ms: f64,
    /// `rebuild_ms / incremental_ms`.
    pub speedup: f64,
    /// Cache hits across the post-batch queries (delete-only and
    /// insert-only streams serve every one from the maintained
    /// entry).
    pub post_batch_hits: u64,
}

/// A batch stream over a mutable edge pool.
struct OpPool {
    edges: Vec<(NodeId, NodeId)>,
    absent: Vec<(NodeId, NodeId)>,
    s: u64,
}

impl OpPool {
    fn new(g: &Graph, seed: u64) -> Self {
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let present: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
        let n = g.node_count() as u64;
        let mut absent = Vec::new();
        let mut s = seed;
        while absent.len() < edges.len() / 2 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = NodeId(((s >> 20) % n) as u32);
            let v = NodeId(((s >> 40) % n) as u32);
            if !present.contains(&(u, v)) && u != v {
                absent.push((u, v));
            }
        }
        absent.sort_unstable();
        absent.dedup();
        OpPool { edges, absent, s }
    }

    fn next_batch(&mut self, nops: usize, delete_fraction: f64) -> GraphDelta {
        let mut delta = GraphDelta::default();
        for _ in 0..nops {
            self.s = self
                .s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let roll = (self.s >> 11) as f64 / (1u64 << 53) as f64;
            if roll < delete_fraction && !self.edges.is_empty() {
                let at = (self.s >> 33) as usize % self.edges.len();
                delta.delete_edges.push(self.edges.swap_remove(at));
            } else if let Some(e) = self.absent.pop() {
                delta.insert_edges.push(e);
            }
        }
        // Inserted edges join the deletable pool only for *later*
        // batches — a batch is a set, so an edge may not appear on
        // both of its sides.
        self.edges.extend_from_slice(&delta.insert_edges);
        delta
    }
}

fn apply_to_graph(g: &Graph, delta: &GraphDelta) -> Graph {
    let del: std::collections::HashSet<(NodeId, NodeId)> =
        delta.delete_edges.iter().copied().collect();
    let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count());
    for v in g.nodes() {
        b.add_node(g.label(v));
    }
    for (u, v) in g.edges() {
        if !del.contains(&(u, v)) {
            b.add_edge(u, v);
        }
    }
    for &(u, v) in &delta.insert_edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Runs one stream: the delta-subsystem path vs the cold-rebuild
/// baseline, both answering the query after every batch, with the
/// answers cross-checked.
fn run_stream(
    label: &'static str,
    cfg: &UpdateConfig,
    g: &Graph,
    assign: &[usize],
    q: &Pattern,
    delete_fraction: f64,
) -> StreamReport {
    // Pre-generate the batches so both sides absorb the identical
    // stream.
    let mut pool = OpPool::new(g, cfg.seed ^ 0xBA7C4);
    let batches: Vec<GraphDelta> = (0..cfg.batches)
        .map(|_| pool.next_batch(cfg.ops_per_batch, delete_fraction))
        .collect();
    let ops: usize = batches.iter().map(GraphDelta::op_count).sum();

    // Incremental side: one session, warmed once, absorbing deltas.
    let frag = Arc::new(Fragmentation::build(g, assign, cfg.sites));
    let engine = SimEngine::builder(g, frag).build();
    engine.query(q).expect("warm-up query");
    let mut post_batch_hits = 0;
    let mut incremental_answers = Vec::new();
    let t0 = Instant::now();
    for delta in &batches {
        engine.apply_delta(delta).expect("delta applies");
        let r = engine.query(q).expect("post-batch query");
        post_batch_hits += r.metrics.cache_hits;
        incremental_answers.push(r.relation);
    }
    let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Cold-rebuild baseline: rebuild fragmentation + session and
    // re-answer from scratch after every batch.
    let mut current = g.clone();
    let mut rebuild_answers = Vec::new();
    let t0 = Instant::now();
    for delta in &batches {
        current = apply_to_graph(&current, delta);
        let frag = Arc::new(Fragmentation::build(&current, assign, cfg.sites));
        let cold = SimEngine::builder(&current, frag).cache(false).build();
        rebuild_answers.push(cold.query(q).expect("rebuild query").relation);
    }
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

    for (batch, (a, b)) in incremental_answers.iter().zip(&rebuild_answers).enumerate() {
        assert_eq!(a, b, "{label}: answers diverge at batch {batch}");
    }

    StreamReport {
        label,
        ops,
        incremental_ms,
        ops_per_sec: ops as f64 / (incremental_ms / 1e3).max(1e-9),
        rebuild_ms,
        speedup: rebuild_ms / incremental_ms.max(1e-9),
        post_batch_hits,
    }
}

/// Runs the insertion-only stream against the **invalidate +
/// re-plan** baseline: a second identical session absorbs the same
/// batches but drops its cached entries after every delta (what the
/// engine did for insertions before insertion-side maintenance), so
/// its post-batch query re-plans and re-evaluates distributed. The
/// maintained side must keep every entry exact — zero invalidations,
/// every post-batch query a 0-message cache hit.
///
/// Both sides pay the same graph-edit absorption, so this stream
/// times the **re-serve leg** — what the two strategies actually
/// disagree on: `incremental_ms` is the maintained side's post-batch
/// cache hits, `rebuild_ms` the baseline's invalidate + distributed
/// re-evaluation. The maintenance work itself is not hidden: it runs
/// inside the maintained side's `apply_delta`, and `ops_per_sec`
/// reports that absorption (including maintenance) honestly.
fn run_insert_only(cfg: &UpdateConfig, g: &Graph, assign: &[usize], q: &Pattern) -> StreamReport {
    let mut pool = OpPool::new(g, cfg.seed ^ 0x1A5E7);
    let batches: Vec<GraphDelta> = (0..cfg.batches)
        .map(|_| pool.next_batch(cfg.ops_per_batch, 0.0))
        .collect();
    assert!(
        batches.iter().all(|d| d.delete_edges.is_empty()),
        "the insert-only stream may not delete"
    );
    let ops: usize = batches.iter().map(GraphDelta::op_count).sum();

    // Maintained side: insertions repair the cached entry in place
    // during absorption; re-serving is a 0-message cache hit.
    let frag = Arc::new(Fragmentation::build(g, assign, cfg.sites));
    let engine = SimEngine::builder(g, frag.clone()).build();
    engine.query(q).expect("warm-up query");
    let mut post_batch_hits = 0;
    let mut maintained_answers = Vec::new();
    let mut absorb_secs = 0.0;
    let mut serve_secs = 0.0;
    for delta in &batches {
        let t = Instant::now();
        let report = engine.apply_delta(delta).expect("delta applies");
        absorb_secs += t.elapsed().as_secs_f64();
        assert_eq!(
            report.invalidated_entries, 0,
            "insertion-only batches must never invalidate a maintained entry"
        );
        assert!(
            report.maintained_entries >= 1,
            "the warmed entry stays maintained across insertions"
        );
        let t = Instant::now();
        let r = engine.query(q).expect("post-batch query");
        serve_secs += t.elapsed().as_secs_f64();
        assert_eq!(
            r.metrics.data_messages + r.metrics.control_messages,
            0,
            "a maintained-entry re-query costs zero messages"
        );
        post_batch_hits += r.metrics.cache_hits;
        maintained_answers.push(r.relation);
    }

    // Invalidate + re-plan baseline: same engine architecture, same
    // stream, but every batch dumps the cache so the post-batch query
    // pays plan construction and a full distributed re-evaluation.
    let baseline = SimEngine::builder(g, frag).build();
    baseline.query(q).expect("baseline warm-up");
    let mut baseline_answers = Vec::new();
    let mut baseline_serve_secs = 0.0;
    for delta in &batches {
        baseline.apply_delta(delta).expect("baseline delta");
        let t = Instant::now();
        baseline.cache_invalidate_all();
        baseline_answers.push(baseline.query(q).expect("baseline query").relation);
        baseline_serve_secs += t.elapsed().as_secs_f64();
    }

    for (batch, (a, b)) in maintained_answers.iter().zip(&baseline_answers).enumerate() {
        assert_eq!(a, b, "insert-only: answers diverge at batch {batch}");
    }

    StreamReport {
        label: "insert-only",
        ops,
        incremental_ms: serve_secs * 1e3,
        ops_per_sec: ops as f64 / absorb_secs.max(1e-9),
        rebuild_ms: baseline_serve_secs * 1e3,
        speedup: baseline_serve_secs / serve_secs.max(1e-9),
        post_batch_hits,
    }
}

/// Runs the four streams of the update experiment. Panics if any
/// maintained answer deviates from its baseline, if a delete-only or
/// insert-only stream fails to serve every post-batch query from the
/// maintained cache, or (at the default scale) if maintenance is not
/// ≥ 5× faster than its baseline — cold rebuild for delete-heavy,
/// invalidate + re-plan for insert-only.
pub fn run_update(cfg: &UpdateConfig) -> Vec<StreamReport> {
    let w = social::fig1();
    let q = w.pattern.clone();
    let g = social::social_network(cfg.nodes, 4 * cfg.nodes, 8, &q, 25, cfg.seed);
    let assign = hash_partition(g.node_count(), cfg.sites, cfg.seed);

    let reports = vec![
        run_stream("delete-heavy", cfg, &g, &assign, &q, 1.0),
        run_insert_only(cfg, &g, &assign, &q),
        run_stream("insert-heavy", cfg, &g, &assign, &q, 0.1),
        run_stream("mixed", cfg, &g, &assign, &q, 0.5),
    ];

    let delete_heavy = &reports[0];
    assert_eq!(
        delete_heavy.post_batch_hits, cfg.batches as u64,
        "every post-batch query of a delete-only stream must be served \
         from the maintained entry"
    );
    let insert_only = &reports[1];
    assert_eq!(
        insert_only.post_batch_hits, cfg.batches as u64,
        "every post-batch query of an insert-only stream must be served \
         from the maintained entry"
    );
    if cfg.assert_speedup {
        assert!(
            delete_heavy.speedup >= 5.0,
            "delete-heavy maintenance must be ≥ 5× faster than cold rebuild, got {:.2}×",
            delete_heavy.speedup
        );
        assert!(
            insert_only.speedup >= 5.0,
            "insert-only maintenance must be ≥ 5× faster than invalidate + re-plan, got {:.2}×",
            insert_only.speedup
        );
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_streams_are_exact() {
        let cfg = UpdateConfig {
            nodes: 300,
            batches: 2,
            ops_per_batch: 10,
            ..UpdateConfig::smoke()
        };
        let reports = run_update(&cfg);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].post_batch_hits, cfg.batches as u64);
        assert_eq!(reports[1].label, "insert-only");
        assert_eq!(reports[1].post_batch_hits, cfg.batches as u64);
    }
}
