//! Criterion bench behind Fig. 6(g)–(l): `dGPMd` vs baselines on the
//! citation-DAG workload, sweeping the pattern diameter `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_bench::Workloads;
use dgs_core::{Algorithm, SimEngine};
use dgs_net::CostModel;
use dgs_partition::Fragmentation;
use std::sync::Arc;

fn bench_exp2(c: &mut Criterion) {
    let w = Workloads {
        scale: 0.1,
        queries: 1,
        seed: 42,
    };
    let k = 8;
    let (g, assign) = w.citation_graph(k, 0.25);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    // Session built once: iterations measure the query, not the
    // structural-facts pass.
    let engine = SimEngine::builder(&g, frag)
        .cost(CostModel::default())
        .build();
    let mut group = c.benchmark_group("fig6g_pt_vs_d");
    group.sample_size(10);
    for d in [2usize, 4, 8] {
        let q = &w.dag_queries(9, 13, d)[0];
        for algo in [Algorithm::Dgpmd, Algorithm::DisHhk, Algorithm::DMes] {
            group.bench_with_input(BenchmarkId::new(algo.name(), d), &d, |b, _| {
                b.iter(|| engine.query_with(&algo, q).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp2);
criterion_main!(benches);
