//! The concurrent-serving demonstration (`cargo bench -p dgs-bench
//! --bench serving`): one shared `SimEngine`, a 50-pattern mixed
//! stream, three ways.
//!
//! * **sequential** — forced single worker, cache off;
//! * **parallel** — the scoped worker pool (`min(cores, batch)`
//!   workers). On an 8-core runner this is ≥ 2× faster wall-clock;
//! * **cached** — the same stream re-submitted against the warm
//!   pattern-result cache: every query hits, zero protocol messages.
//!
//! Not a Criterion harness: the quantity of interest is one honest
//! wall-clock comparison per configuration, printed as a table.

use dgs_bench::serving::{run_serving, ServingConfig};

fn main() {
    let cfg = ServingConfig::default();
    println!(
        "serving workload: |V| = {}, |E| = {}, {} sites, batch = {}",
        cfg.nodes,
        4 * cfg.nodes,
        cfg.sites,
        cfg.batch
    );
    let r = run_serving(&cfg);
    println!("  compression leg: ratio {:.3}", r.compression_ratio);
    println!("  sequential (1 worker):  {:>9.2} ms", r.sequential_ms);
    println!(
        "  parallel  ({} workers): {:>9.2} ms   speedup {:.2}x",
        r.workers, r.parallel_ms, r.speedup
    );
    println!(
        "  cached re-run:          {:>9.2} ms   {}/{} hits, {} protocol messages",
        r.cached_ms, r.cache_hits, r.batch, r.cached_messages
    );
    let ms = |ns: u64| ns as f64 / 1.0e6;
    println!(
        "  per-query latency (cold):   p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
        ms(r.latency.p50()),
        ms(r.latency.p95()),
        ms(r.latency.p99())
    );
    println!(
        "  per-query latency (cached): p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
        ms(r.cached_latency.p50()),
        ms(r.cached_latency.p95()),
        ms(r.cached_latency.p99())
    );
    assert!(
        r.cached_latency.p50() <= r.latency.p50(),
        "a cache hit must not be slower than a protocol run at the median"
    );
    assert_eq!(r.cached_messages, 0, "cache hits must ship nothing");
    // The ≥ 2× acceptance bar applies to multi-core runners; a 1-core
    // container can't parallelize and is exempt.
    if r.workers >= 8 {
        assert!(
            r.speedup >= 2.0,
            "expected ≥ 2x parallel speedup on {} workers, got {:.2}x",
            r.workers,
            r.speedup
        );
    }
}
