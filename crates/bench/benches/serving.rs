//! The concurrent-serving demonstration (`cargo bench -p dgs-bench
//! --bench serving`): one shared `SimEngine`, a 50-pattern mixed
//! stream, three ways.
//!
//! * **sequential** — forced single worker, cache off;
//! * **parallel** — the scoped worker pool (`min(cores, batch)`
//!   workers). On an 8-core runner this is ≥ 2× faster wall-clock;
//! * **cached** — the same stream re-submitted against the warm
//!   pattern-result cache: every query hits, zero protocol messages.
//!
//! Plus one **in-process vs cross-process** leg: the same query
//! stream under the virtual executor and under the socket executor
//! (real worker OS processes, spawned `dgsq worker` copies found next
//! to the bench binary in the target directory — the leg is skipped
//! with a note when `dgsq` has not been built). The point is an
//! honest number for what crossing a kernel socket costs per query,
//! with byte-identical answers asserted.
//!
//! Not a Criterion harness: the quantity of interest is one honest
//! wall-clock comparison per configuration, printed as a table.

use dgs_bench::serving::{mixed_patterns, run_serving, ServingConfig};
use dgs_core::SimEngine;
use dgs_net::SocketConfig;
use dgs_partition::{hash_partition, Fragmentation};
use std::sync::Arc;
use std::time::Instant;

/// `dgsq` lives two levels up from the bench executable
/// (`target/<profile>/deps/serving-*` → `target/<profile>/dgsq`).
fn find_dgsq() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let candidate = profile_dir.join("dgsq");
    candidate.is_file().then_some(candidate)
}

fn socket_leg(cfg: &ServingConfig) {
    let Some(dgsq) = find_dgsq() else {
        println!(
            "  cross-process leg: skipped (dgsq not built; run \
             `cargo build --bin dgsq` with the same profile first)"
        );
        return;
    };
    let g = dgs_graph::generate::random::uniform(cfg.nodes, 4 * cfg.nodes, cfg.labels, cfg.seed);
    let assign = hash_partition(g.node_count(), cfg.sites, cfg.seed);
    let frag = Arc::new(Fragmentation::build(&g, &assign, cfg.sites));
    let queries = mixed_patterns(cfg.batch.min(20), cfg.labels, cfg.seed ^ 0x50C); // a shorter stream: each query is a full cross-process protocol run

    let inproc = SimEngine::builder(&g, Arc::clone(&frag))
        .cache(false)
        .build();
    let socket = match SimEngine::builder(&g, frag)
        .cache(false)
        .build_socket(SocketConfig::spawn_local(dgsq, vec!["worker".into()], 2))
    {
        Ok(engine) => engine,
        Err(e) => {
            // A stale dgsq (older build without `worker`) must not sink
            // the whole bench run.
            println!("  cross-process leg: skipped (cluster bootstrap failed: {e})");
            return;
        }
    };

    let run = |engine: &SimEngine| {
        let start = Instant::now();
        let reports: Vec<_> = queries
            .iter()
            .map(|q| engine.query(q).expect("bench query"))
            .collect();
        (reports, start.elapsed().as_secs_f64() * 1e3)
    };
    let (a, inproc_ms) = run(&inproc);
    let (b, socket_ms) = run(&socket);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.relation, y.relation, "socket answer deviates");
    }
    println!(
        "  cross-process leg ({} queries, {} worker processes):",
        queries.len(),
        socket
            .socket_cluster()
            .expect("socket session")
            .num_workers()
    );
    println!(
        "    in-process (virtual):  {inproc_ms:>9.2} ms   socket: {socket_ms:>9.2} ms   \
         ({:.2} ms/query socket overhead)",
        (socket_ms - inproc_ms).max(0.0) / queries.len() as f64
    );
}

fn main() {
    let cfg = ServingConfig::default();
    println!(
        "serving workload: |V| = {}, |E| = {}, {} sites, batch = {}",
        cfg.nodes,
        4 * cfg.nodes,
        cfg.sites,
        cfg.batch
    );
    let r = run_serving(&cfg);
    println!("  compression leg: ratio {:.3}", r.compression_ratio);
    println!("  sequential (1 worker):  {:>9.2} ms", r.sequential_ms);
    println!(
        "  parallel  ({} workers): {:>9.2} ms   speedup {:.2}x",
        r.workers, r.parallel_ms, r.speedup
    );
    println!(
        "  cached re-run:          {:>9.2} ms   {}/{} hits, {} protocol messages",
        r.cached_ms, r.cache_hits, r.batch, r.cached_messages
    );
    let ms = |ns: u64| ns as f64 / 1.0e6;
    println!(
        "  per-query latency (cold):   p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
        ms(r.latency.p50()),
        ms(r.latency.p95()),
        ms(r.latency.p99())
    );
    println!(
        "  per-query latency (cached): p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
        ms(r.cached_latency.p50()),
        ms(r.cached_latency.p95()),
        ms(r.cached_latency.p99())
    );
    assert!(
        r.cached_latency.p50() <= r.latency.p50(),
        "a cache hit must not be slower than a protocol run at the median"
    );
    assert_eq!(r.cached_messages, 0, "cache hits must ship nothing");
    socket_leg(&cfg);
    // The ≥ 2× acceptance bar applies to multi-core runners; a 1-core
    // container can't parallelize and is exempt.
    if r.workers >= 8 {
        assert!(
            r.speedup >= 2.0,
            "expected ≥ 2x parallel speedup on {} workers, got {:.2}x",
            r.workers,
            r.speedup
        );
    }
}
