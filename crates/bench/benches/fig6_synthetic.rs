//! Criterion bench behind Fig. 6(m)–(p): scalability on synthetic
//! graphs, sweeping `|G|` at fixed `|F|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dgs_bench::Workloads;
use dgs_core::{Algorithm, SimEngine};
use dgs_net::CostModel;
use dgs_partition::Fragmentation;
use std::sync::Arc;

fn bench_exp3(c: &mut Criterion) {
    let w = Workloads {
        scale: 0.05,
        queries: 1,
        seed: 42,
    };
    let q = &w.cyclic_queries(5, 10)[0];
    let k = 8;
    let mut group = c.benchmark_group("fig6o_pt_vs_G");
    group.sample_size(10);
    for base in [200_000usize, 400_000, 800_000] {
        let (g, assign) = w.synthetic_graph(base, k, 0.20);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let engine = SimEngine::builder(&g, frag)
            .cost(CostModel::default())
            .build();
        group.throughput(Throughput::Elements(g.size() as u64));
        for algo in [Algorithm::dgpm(), Algorithm::DisHhk, Algorithm::DMes] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), g.node_count()),
                &base,
                |b, _| b.iter(|| engine.query_with(&algo, q).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp3);
criterion_main!(benches);
