//! Ablations A1/A2: incremental vs from-scratch local evaluation, and
//! the push threshold θ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_bench::Workloads;
use dgs_core::dgpm::DgpmConfig;
use dgs_core::{Algorithm, SimEngine};
use dgs_net::CostModel;
use dgs_partition::Fragmentation;
use std::sync::Arc;

fn bench_ablation(c: &mut Criterion) {
    let w = Workloads {
        scale: 0.1,
        queries: 1,
        seed: 42,
    };
    let k = 8;
    let (g, assign) = w.web_graph(k, 0.35);
    let frag = Arc::new(Fragmentation::build(&g, &assign, k));
    let engine = SimEngine::builder(&g, frag)
        .cost(CostModel::default())
        .build();
    let q = &w.cyclic_queries(5, 10)[0];

    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    for algo in [Algorithm::dgpm_incremental_only(), Algorithm::dgpm_nopt()] {
        group.bench_function(algo.name(), |b| {
            b.iter(|| engine.query_with(&algo, q).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_push_theta");
    group.sample_size(10);
    for (label, theta) in [("off", None), ("0.2", Some(0.2)), ("0.0", Some(0.0))] {
        let algo = Algorithm::Dgpm(DgpmConfig {
            incremental: true,
            push_threshold: theta,
            push_size_cap: 4096,
        });
        group.bench_with_input(BenchmarkId::new("theta", label), &theta, |b, _| {
            b.iter(|| engine.query_with(&algo, q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
