//! Theorem 1 companion bench: response cost on the Fig. 2 adversarial
//! ring grows with the number of fragments even though `|Fm|` and
//! `|Q|` are constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_core::{Algorithm, SimEngine};
use dgs_graph::generate::adversarial;
use dgs_net::CostModel;
use dgs_partition::Fragmentation;
use std::sync::Arc;

fn bench_impossibility(c: &mut Criterion) {
    let q = adversarial::q0();
    let algo = Algorithm::dgpm_incremental_only();
    let mut group = c.benchmark_group("impossibility_ring");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let g = adversarial::broken_cycle_graph(n);
        let assign = adversarial::per_pair_assignment(n);
        let frag = Arc::new(Fragmentation::build(&g, &assign, n));
        let engine = SimEngine::builder(&g, frag)
            .cost(CostModel::default())
            .build();
        group.bench_with_input(BenchmarkId::new("broken", n), &n, |b, _| {
            b.iter(|| engine.query_with(&algo, &q).unwrap())
        });
        let g2 = adversarial::cycle_graph(n);
        let frag2 = Arc::new(Fragmentation::build(&g2, &assign, n));
        let engine2 = SimEngine::builder(&g2, frag2)
            .cost(CostModel::default())
            .build();
        group.bench_with_input(BenchmarkId::new("intact", n), &n, |b, _| {
            b.iter(|| engine2.query_with(&algo, &q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_impossibility);
criterion_main!(benches);
