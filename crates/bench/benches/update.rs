//! The update-throughput demonstration (`cargo bench -p dgs-bench
//! --bench update`): one `SimEngine` session absorbing edge-update
//! batches on the social-graph workload, four stream shapes —
//!
//! * **delete-heavy** — maintained incrementally (`O(|AFF|)` counter
//!   repair per site + dGPM-style falsification shipping); must be
//!   ≥ 5× faster than the cold-rebuild baseline at the default scale;
//! * **insert-only** — insertion-side maintenance (counter repair +
//!   cross-site resurrection) keeps every cached entry exact with
//!   zero invalidations; must be ≥ 5× faster than the
//!   invalidate-and-re-plan baseline at the default scale;
//! * **insert-heavy** — mostly insertions with a trickle of deletes,
//!   maintained end to end;
//! * **mixed** — both behaviours interleaved.
//!
//! Not a Criterion harness: the quantity of interest is one honest
//! wall-clock comparison per stream against its baseline, printed as
//! a table. Pass `-- --test` for the CI smoke configuration (small
//! workload, timing bar not asserted — correctness always is).

use dgs_bench::update::{run_update, UpdateConfig};

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let cfg = if test_mode {
        UpdateConfig::smoke()
    } else {
        UpdateConfig::default()
    };
    println!(
        "update workload: |V| = {}, |E| = {}, {} sites, {} batches × {} ops{}",
        cfg.nodes,
        4 * cfg.nodes,
        cfg.sites,
        cfg.batches,
        cfg.ops_per_batch,
        if test_mode { "  (--test smoke)" } else { "" }
    );
    let reports = run_update(&cfg);
    println!(
        "  {:<14} {:>10} {:>14} {:>14} {:>10} {:>10}",
        "stream", "ops", "incremental", "baseline", "speedup", "ops/sec"
    );
    for r in &reports {
        println!(
            "  {:<14} {:>10} {:>11.2} ms {:>11.2} ms {:>9.2}x {:>10.0}",
            r.label, r.ops, r.incremental_ms, r.rebuild_ms, r.speedup, r.ops_per_sec
        );
    }
    for r in &reports[..2] {
        println!(
            "  {} post-batch queries: {} served from the maintained entry",
            r.label, r.post_batch_hits
        );
    }
}
