//! Criterion bench behind Fig. 6(a)–(f): the Exp-1 engines on the
//! web-graph workload. Wall-clock here complements the harness's
//! virtual-time series (`experiments -- exp1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_bench::Workloads;
use dgs_core::{Algorithm, SimEngine};
use dgs_net::CostModel;
use dgs_partition::Fragmentation;
use std::sync::Arc;

fn bench_exp1(c: &mut Criterion) {
    let w = Workloads {
        scale: 0.1,
        queries: 1,
        seed: 42,
    };
    let q = &w.cyclic_queries(5, 10)[0];
    let mut group = c.benchmark_group("fig6a_pt_vs_F");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let (g, assign) = w.web_graph(k, 0.25);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        // Session built once per fragmentation: iterations measure the
        // query, not the structural-facts pass.
        let engine = SimEngine::builder(&g, frag)
            .cost(CostModel::default())
            .build();
        for algo in [
            Algorithm::dgpm(),
            Algorithm::DisHhk,
            Algorithm::DMes,
            Algorithm::MatchCentral,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), k), &k, |b, _| {
                b.iter(|| engine.query_with(&algo, q).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp1);
criterion_main!(benches);
