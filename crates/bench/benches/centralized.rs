//! Ablation A4: counter-based HHK vs the naive fixpoint (the
//! centralized substrate behind the oracle and the `Match`/`disHHK`
//! baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_graph::generate::{patterns, random};
use dgs_sim::{hhk_simulation, naive_simulation};

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_simulation");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let g = random::web_like(n, 5 * n, 15, 7);
        let q = patterns::random_cyclic(5, 10, 15, 7);
        group.bench_with_input(BenchmarkId::new("hhk", n), &n, |b, _| {
            b.iter(|| hhk_simulation(&q, &g))
        });
        // The naive algorithm is quadratic; keep it to small inputs.
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| naive_simulation(&q, &g))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_centralized);
criterion_main!(benches);
