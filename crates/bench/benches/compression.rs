//! Criterion micro-benchmarks for query-preserving compression:
//! compression cost (simulation equivalence vs bisimulation) and the
//! query-time payoff on the quotient graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_graph::generate::{patterns, random};
use dgs_sim::{compress_bisim, compress_simeq, hhk_simulation};

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let g = random::web_like(n, 5 * n, 15, 7);
        group.bench_with_input(BenchmarkId::new("simeq", n), &g, |b, g| {
            b.iter(|| compress_simeq(g))
        });
        group.bench_with_input(BenchmarkId::new("bisim", n), &g, |b, g| {
            b.iter(|| compress_bisim(g))
        });
    }
    group.finish();
}

fn bench_query_on_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_compressed");
    group.sample_size(10);
    let n = 2_000;
    let g = random::web_like(n, 5 * n, 15, 7);
    let q = patterns::random_cyclic(4, 7, 15, 3);
    let simeq = compress_simeq(&g);
    let bisim = compress_bisim(&g);
    group.bench_function("original", |b| b.iter(|| hhk_simulation(&q, &g)));
    group.bench_function("simeq_quotient", |b| b.iter(|| simeq.query(&q)));
    group.bench_function("bisim_quotient", |b| b.iter(|| bisim.query(&q)));
    group.bench_function("simeq_quotient_expanded", |b| {
        b.iter(|| simeq.query_expanded(&q))
    });
    group.finish();
}

criterion_group!(benches, bench_compression, bench_query_on_quotient);
criterion_main!(benches);
