//! Streaming (one-pass) partitioners.
//!
//! The paper post-processes random partitions with the swap heuristic
//! of \[27\] ([`crate::partitioner::refine_toward_ratio`]); real
//! deployments that ingest a graph once often cannot afford global
//! refinement and instead assign nodes *as they stream in*. This
//! module implements the standard baseline of that literature:
//!
//! **Linear Deterministic Greedy** (LDG; Stanton & Kleinberg,
//! KDD 2012): each arriving node goes to the site holding most of its
//! already-placed neighbours, scaled by the remaining capacity
//! `(1 − |Pi|/C)` so fragments stay balanced. One pass, `O(|V| + |E|)`
//! time, no global state beyond the per-site loads — and typically
//! far fewer crossing edges than a hash partition on graphs with
//! locality, which directly shrinks the `|Vf|`/`|Ef|` terms of the
//! partition-bounded guarantees.

use crate::fragment::SiteId;
use dgs_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Linear Deterministic Greedy streaming assignment.
///
/// Nodes arrive in a seeded random order (the usual evaluation
/// protocol for streaming partitioners; a fixed arrival order would
/// conflate generator layout with partition quality). Neighbourhoods
/// are taken over the *undirected* view, and only already-placed
/// neighbours count. Capacity is `ceil(|V|/k) · (1 + slack)`.
///
/// # Panics
/// Panics if `k` is zero or `slack` is negative.
pub fn ldg_partition(graph: &Graph, k: usize, slack: f64, seed: u64) -> Vec<SiteId> {
    assert!(k > 0, "need at least one site");
    assert!(slack >= 0.0, "slack must be non-negative");
    let n = graph.node_count();
    let capacity = ((n as f64 / k as f64).ceil() * (1.0 + slack))
        .ceil()
        .max(1.0);

    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    const UNPLACED: usize = usize::MAX;
    let mut assignment = vec![UNPLACED; n];
    let mut loads = vec![0usize; k];
    let mut neighbour_counts = vec![0u32; k];

    for &v in &order {
        let v = NodeId(v);
        neighbour_counts.fill(0);
        for &w in graph.successors(v).iter().chain(graph.predecessors(v)) {
            let s = assignment[w.index()];
            if s != UNPLACED {
                neighbour_counts[s] += 1;
            }
        }
        // Score: neighbours × remaining-capacity factor. Ties break
        // toward the least-loaded site (then lowest id) so the stream
        // stays balanced even on neighbour-free prefixes.
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for s in 0..k {
            if loads[s] as f64 >= capacity {
                continue;
            }
            let score = f64::from(neighbour_counts[s]) * (1.0 - loads[s] as f64 / capacity);
            if score > best_score || (score == best_score && loads[s] < loads[best]) {
                best = s;
                best_score = score;
            }
        }
        assignment[v.index()] = best;
        loads[best] += 1;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmentation;
    use crate::partitioner::hash_partition;
    use dgs_graph::generate::random;

    #[test]
    fn covers_all_nodes_and_sites() {
        let g = random::uniform(200, 600, 4, 1);
        let a = ldg_partition(&g, 5, 0.1, 1);
        assert_eq!(a.len(), 200);
        for s in 0..5 {
            assert!(a.contains(&s), "site {s} empty");
        }
    }

    #[test]
    fn respects_capacity() {
        let g = random::community(1_000, 4_000, 4, 0.05, 6, 2);
        for slack in [0.0, 0.1, 0.5] {
            let a = ldg_partition(&g, 4, slack, 2);
            let cap = ((1_000.0_f64 / 4.0).ceil() * (1.0 + slack)).ceil() as usize;
            let mut loads = [0usize; 4];
            for &s in &a {
                loads[s] += 1;
            }
            assert!(
                loads.iter().all(|&l| l <= cap),
                "slack {slack}: {loads:?} vs cap {cap}"
            );
        }
    }

    #[test]
    fn beats_hash_on_community_graphs() {
        // The whole point of greedy streaming: locality-aware
        // placement cuts crossing edges well below random.
        let g = random::community(2_000, 8_000, 8, 0.05, 10, 3);
        let ldg = ldg_partition(&g, 8, 0.1, 3);
        let hash = hash_partition(2_000, 8, 3);
        let ef_ldg = Fragmentation::build(&g, &ldg, 8).ef();
        let ef_hash = Fragmentation::build(&g, &hash, 8).ef();
        assert!(
            (ef_ldg as f64) < 0.8 * ef_hash as f64,
            "ldg {ef_ldg} not clearly below hash {ef_hash}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random::uniform(300, 900, 4, 4);
        assert_eq!(ldg_partition(&g, 4, 0.1, 9), ldg_partition(&g, 4, 0.1, 9));
        assert_ne!(ldg_partition(&g, 4, 0.1, 9), ldg_partition(&g, 4, 0.1, 10));
    }

    #[test]
    fn distributed_answers_unaffected_by_partitioner() {
        // Partition quality changes PT/DS, never the relation.
        use dgs_graph::generate::patterns;
        let g = random::community(500, 2_000, 4, 0.1, 5, 5);
        let q = patterns::random_cyclic(4, 7, 5, 5);
        let a = ldg_partition(&g, 4, 0.1, 5);
        let frag = Fragmentation::build(&g, &a, 4);
        // Structural sanity only here (dgs-core depends on this crate,
        // not vice versa); engine agreement across partitioners is an
        // integration test.
        assert_eq!(frag.num_sites(), 4);
        assert!(frag.ef() > 0);
        let _ = q;
    }

    #[test]
    fn single_site_degenerates() {
        let g = random::uniform(50, 150, 3, 6);
        let a = ldg_partition(&g, 1, 0.0, 6);
        assert!(a.iter().all(|&s| s == 0));
        assert_eq!(Fragmentation::build(&g, &a, 1).ef(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_rejected() {
        let g = random::uniform(10, 20, 2, 0);
        let _ = ldg_partition(&g, 0, 0.1, 0);
    }
}
