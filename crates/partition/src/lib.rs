//! # dgs-partition
//!
//! Graph fragmentation for distributed graph simulation (§2.2 of Fan
//! et al., VLDB 2014).
//!
//! A fragmentation `F` of `G = (V, E, L)` is `(F1, ..., Fn)` where each
//! fragment `Fi = (Vi ∪ Fi.O, Ei, Li)`:
//!
//! * `(V1, ..., Vn)` partitions `V` (the *local* nodes);
//! * `Fi.O` is the set of **virtual nodes**: nodes in other fragments
//!   that are the target of a **crossing edge** from `Vi`;
//! * `Fi.I` is the set of **in-nodes**: local nodes with an incoming
//!   crossing edge (they are virtual nodes of other fragments);
//! * `Ei` holds edges between local nodes plus the crossing edges from
//!   local nodes to virtual nodes.
//!
//! [`Fragmentation::build`] materializes this from any site assignment;
//! [`partitioner`] provides random/hash, BFS-clustered and
//! swap-refined assignments (the paper post-processes random partitions
//! with the swap heuristic of \[27\] to control `|Vf|`/`|Ef|`), and
//! [`tree`] carves a rooted tree into connected subtrees (required by
//! `dGPMt`, Corollary 4).

pub mod fragment;
pub mod partitioner;
pub mod stats;
pub mod streaming;
pub mod tree;

pub use fragment::{EdgeOp, FragDeltaStats, Fragment, Fragmentation, SiteId};
pub use partitioner::{bfs_partition, hash_partition, refine_toward_ratio, RefineObjective};
pub use stats::FragmentationStats;
pub use streaming::ldg_partition;
pub use tree::tree_partition;
