//! Connected-subtree partitioning for `dGPMt` (Corollary 4).
//!
//! Corollary 4 requires "each fragment of `F` is connected" when `G`
//! is a tree; then each fragment has at most one in-node (the root of
//! its subtree), which is what makes the Boolean equation system
//! solvable in `O(|Q||F|)` at the coordinator.
//!
//! [`tree_partition`] carves a rooted tree (edges parent → child, root
//! = node 0) into at most `k` connected subtrees of roughly equal size
//! by post-order accumulation: whenever an accumulated subtree reaches
//! `n / k` nodes it is split off as a fragment.

use crate::fragment::SiteId;
use dgs_graph::{Graph, NodeId};

/// Carves a rooted tree into at most `k` connected fragments of about
/// `n / k` nodes each. Fragment ids are assigned in carve order; the
/// residue containing the root gets the last id in use.
///
/// # Panics
/// Panics if `graph` is not a rooted tree (node 0 the root, every other
/// node with in-degree exactly 1) or `k == 0`.
pub fn tree_partition(graph: &Graph, k: usize) -> Vec<SiteId> {
    assert!(k > 0, "need at least one fragment");
    assert!(
        dgs_graph::generate::tree::is_rooted_tree(graph),
        "tree_partition requires a rooted tree with root 0"
    );
    let n = graph.node_count();
    let threshold = n.div_ceil(k).max(1);

    const UNASSIGNED: usize = usize::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut next_site = 0usize;

    // Iterative post-order over the tree.
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![NodeId(0)];
    while let Some(v) = stack.pop() {
        post.push(v);
        for &c in graph.successors(v) {
            stack.push(c);
        }
    }
    // `post` currently holds a pre-order with children reversed;
    // reverse it for a valid post-order (children before parents).
    post.reverse();

    // size[v] = number of not-yet-carved nodes in v's subtree.
    let mut size = vec![0u32; n];
    for &v in &post {
        let mut s = 1u32;
        for &c in graph.successors(v) {
            s += size[c.index()];
        }
        size[v.index()] = s;
        if (s as usize) >= threshold && next_site + 1 < k {
            carve(graph, v, &mut assignment, next_site);
            next_site += 1;
            size[v.index()] = 0;
        }
    }
    // Residue (containing the root).
    for a in assignment.iter_mut() {
        if *a == UNASSIGNED {
            *a = next_site;
        }
    }
    assignment
}

/// Assigns all not-yet-carved nodes in the subtree of `root` to `site`.
fn carve(graph: &Graph, root: NodeId, assignment: &mut [SiteId], site: SiteId) {
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if assignment[v.index()] != usize::MAX {
            continue; // already carved into an earlier fragment
        }
        assignment[v.index()] = site;
        for &c in graph.successors(v) {
            stack.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmentation;
    use dgs_graph::generate::tree::{random_tree, random_tree_with_chain_bias};

    /// Every fragment must be connected: exactly one node per fragment
    /// has its parent outside (or is the global root).
    fn assert_connected_fragments(g: &Graph, assignment: &[SiteId], k: usize) {
        let mut roots = vec![0usize; k];
        for v in g.nodes() {
            let s = assignment[v.index()];
            let parent_outside = if v.index() == 0 {
                true
            } else {
                let p = g.predecessors(v)[0];
                assignment[p.index()] != s
            };
            if parent_outside {
                roots[s] += 1;
            }
        }
        for (s, &r) in roots.iter().enumerate() {
            assert!(r <= 1, "fragment {s} has {r} entry points (not connected)");
        }
    }

    #[test]
    fn fragments_are_connected_subtrees() {
        for seed in 0..5 {
            let g = random_tree(500, 5, seed);
            let a = tree_partition(&g, 8);
            assert_connected_fragments(&g, &a, 8);
        }
    }

    #[test]
    fn fragments_roughly_balanced() {
        let g = random_tree_with_chain_bias(1_000, 5, 0.7, 3);
        let a = tree_partition(&g, 10);
        let mut sizes = vec![0usize; 10];
        for &s in &a {
            sizes[s] += 1;
        }
        let used: Vec<usize> = sizes.into_iter().filter(|&c| c > 0).collect();
        assert!(used.len() >= 5, "too few fragments: {used:?}");
        // Carved fragments are between threshold and ~branching*threshold.
        for &c in &used {
            assert!(c <= 400, "fragment too large: {used:?}");
        }
    }

    #[test]
    fn at_most_one_in_node_per_fragment() {
        let g = random_tree(300, 4, 9);
        let k = 6;
        let a = tree_partition(&g, k);
        let f = Fragmentation::build(&g, &a, k);
        for site in 0..k {
            assert!(
                f.fragment(site).in_nodes().len() <= 1,
                "site {site} has multiple in-nodes"
            );
        }
    }

    #[test]
    fn path_tree_partition() {
        let g = random_tree_with_chain_bias(20, 2, 1.0, 0);
        let a = tree_partition(&g, 4);
        assert_connected_fragments(&g, &a, 4);
        // A path cuts into exactly k contiguous runs.
        let mut transitions = 0;
        for w in a.windows(2) {
            if w[0] != w[1] {
                transitions += 1;
            }
        }
        assert_eq!(transitions, 3);
    }

    #[test]
    fn k_one_puts_everything_on_site_zero() {
        let g = random_tree(50, 3, 1);
        let a = tree_partition(&g, 1);
        assert!(a.iter().all(|&s| s == 0));
    }

    #[test]
    #[should_panic(expected = "rooted tree")]
    fn non_tree_rejected() {
        use dgs_graph::{GraphBuilder, Label};
        let mut b = GraphBuilder::new();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        let _ = tree_partition(&b.build(), 2);
    }
}
