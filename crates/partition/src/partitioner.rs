//! Site-assignment strategies.
//!
//! The paper randomly partitions `G` into `|F|` balanced fragments and
//! then refines by node swaps "following \[27\]" (Ja-be-Ja) until
//! `|Vf|/|V|` (or `|Ef|/|E|`) reaches a target ratio. This module
//! implements:
//!
//! * [`hash_partition`] — seeded balanced random assignment;
//! * [`bfs_partition`] — BFS-clustered chunks (low crossing ratio, the
//!   starting point when the target ratio is small);
//! * [`refine_toward_ratio`] — greedy single-node moves that walk
//!   `|Vf|/|V|` or `|Ef|/|E|` toward a target while keeping fragments
//!   balanced.

use crate::fragment::SiteId;
use dgs_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A balanced random assignment: nodes are shuffled and dealt
/// round-robin, so every site gets `n/k` nodes (±1).
pub fn hash_partition(n: usize, k: usize, seed: u64) -> Vec<SiteId> {
    assert!(k > 0, "need at least one site");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut assignment = vec![0; n];
    for (pos, &v) in order.iter().enumerate() {
        assignment[v] = pos % k;
    }
    assignment
}

/// A BFS-clustered balanced assignment: nodes are visited in BFS order
/// over the *undirected* view of the graph (restarting at unvisited
/// nodes), and the visit order is cut into `k` equal chunks. Fragments
/// come out mostly connected, minimizing crossing edges.
pub fn bfs_partition(graph: &Graph, k: usize, seed: u64) -> Vec<SiteId> {
    assert!(k > 0, "need at least one site");
    let n = graph.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut restart: Vec<usize> = (0..n).collect();
    restart.shuffle(&mut rng);
    for &start in &restart {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(NodeId(start as u32));
        while let Some(v) = queue.pop_front() {
            order.push(v.index());
            for &w in graph.successors(v).iter().chain(graph.predecessors(v)) {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    let chunk = n.div_ceil(k).max(1);
    let mut assignment = vec![0; n];
    for (pos, &v) in order.iter().enumerate() {
        assignment[v] = (pos / chunk).min(k - 1);
    }
    assignment
}

/// Which crossing quantity [`refine_toward_ratio`] steers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineObjective {
    /// Steer `|Vf| / |V|` (nodes with an incoming crossing edge).
    VfRatio,
    /// Steer `|Ef| / |E|` (crossing edges).
    EfRatio,
}

/// Incrementally maintained crossing statistics for single-node moves.
struct CrossState<'a> {
    graph: &'a Graph,
    assignment: Vec<SiteId>,
    /// Per node: number of incoming crossing edges.
    ext_in: Vec<u32>,
    vf: usize,
    ef: usize,
    sizes: Vec<usize>,
}

impl<'a> CrossState<'a> {
    fn new(graph: &'a Graph, assignment: &[SiteId], k: usize) -> Self {
        let n = graph.node_count();
        let mut ext_in = vec![0u32; n];
        let mut ef = 0usize;
        for (u, v) in graph.edges() {
            if assignment[u.index()] != assignment[v.index()] {
                ext_in[v.index()] += 1;
                ef += 1;
            }
        }
        let vf = ext_in.iter().filter(|&&c| c > 0).count();
        let mut sizes = vec![0usize; k];
        for &s in assignment {
            sizes[s] += 1;
        }
        CrossState {
            graph,
            assignment: assignment.to_vec(),
            ext_in,
            vf,
            ef,
            sizes,
        }
    }

    /// Moves node `v` to `to`, updating `vf`/`ef` incrementally.
    fn apply_move(&mut self, v: NodeId, to: SiteId) {
        let from = self.assignment[v.index()];
        if from == to {
            return;
        }
        // Out-edges of v: crossing status may flip for each target w.
        for &w in self.graph.successors(v) {
            let sw = self.assignment[w.index()];
            // v -> v self-loop: sw is still `from` here and stays with v.
            let sw_now = if w == v { to } else { sw };
            let was = (if w == v { from } else { sw }) != from;
            let is = sw_now != to;
            if was != is {
                if is {
                    self.ef += 1;
                    if self.ext_in[w.index()] == 0 {
                        self.vf += 1;
                    }
                    self.ext_in[w.index()] += 1;
                } else {
                    self.ef -= 1;
                    self.ext_in[w.index()] -= 1;
                    if self.ext_in[w.index()] == 0 {
                        self.vf -= 1;
                    }
                }
            }
        }
        // In-edges of v (excluding self-loop, already handled above).
        for &u in self.graph.predecessors(v) {
            if u == v {
                continue;
            }
            let su = self.assignment[u.index()];
            let was = su != from;
            let is = su != to;
            if was != is {
                if is {
                    self.ef += 1;
                    if self.ext_in[v.index()] == 0 {
                        self.vf += 1;
                    }
                    self.ext_in[v.index()] += 1;
                } else {
                    self.ef -= 1;
                    self.ext_in[v.index()] -= 1;
                    if self.ext_in[v.index()] == 0 {
                        self.vf -= 1;
                    }
                }
            }
        }
        self.sizes[from] -= 1;
        self.sizes[to] += 1;
        self.assignment[v.index()] = to;
    }

    fn ratio(&self, obj: RefineObjective) -> f64 {
        match obj {
            RefineObjective::VfRatio => self.vf as f64 / self.graph.node_count().max(1) as f64,
            RefineObjective::EfRatio => self.ef as f64 / self.graph.edge_count().max(1) as f64,
        }
    }
}

/// Greedy single-node moves steering the crossing ratio toward
/// `target` (in either direction), keeping every fragment within
/// `balance_slack` (e.g. `0.2` = at most 20% above the even share).
/// Stops when within `tolerance` of the target or after `max_steps`
/// attempted moves. Returns the refined assignment and the achieved
/// ratio.
#[allow(clippy::too_many_arguments)] // a tuning knob per paper parameter
pub fn refine_toward_ratio(
    graph: &Graph,
    assignment: &[SiteId],
    k: usize,
    objective: RefineObjective,
    target: f64,
    tolerance: f64,
    balance_slack: f64,
    max_steps: usize,
    seed: u64,
) -> (Vec<SiteId>, f64) {
    let n = graph.node_count();
    if n == 0 {
        return (assignment.to_vec(), 0.0);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = CrossState::new(graph, assignment, k);
    let cap = ((n as f64 / k as f64) * (1.0 + balance_slack)).ceil() as usize;

    for _ in 0..max_steps {
        let current = state.ratio(objective);
        if (current - target).abs() <= tolerance {
            break;
        }
        let need_lower = current > target;
        let v = NodeId(rng.gen_range(0..n as u32));
        let from = state.assignment[v.index()];
        let to = if need_lower {
            // Move v toward the site holding most of its neighbours.
            let mut counts = vec![0usize; k];
            for &w in graph.successors(v).iter().chain(graph.predecessors(v)) {
                counts[state.assignment[w.index()]] += 1;
            }
            let best = (0..k).max_by_key(|&s| counts[s]).unwrap_or(from);
            if best == from {
                continue;
            }
            best
        } else {
            // Scatter v to a random other site to create crossings.
            let to = rng.gen_range(0..k);
            if to == from {
                continue;
            }
            to
        };
        if state.sizes[to] + 1 > cap {
            continue;
        }
        let before = state.ratio(objective);
        let (vf0, ef0) = (state.vf, state.ef);
        state.apply_move(v, to);
        let after = state.ratio(objective);
        let improved = if need_lower {
            after < before
        } else {
            after > before
        };
        if !improved {
            // Undo: move back (exact inverse).
            state.apply_move(v, from);
            debug_assert_eq!((state.vf, state.ef), (vf0, ef0));
        }
    }
    let achieved = state.ratio(objective);
    (state.assignment, achieved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmentation;
    use dgs_graph::generate::random as gen_random;

    #[test]
    fn hash_partition_is_balanced() {
        let a = hash_partition(103, 4, 1);
        let mut sizes = [0usize; 4];
        for &s in &a {
            sizes[s] += 1;
        }
        assert!(sizes.iter().all(|&c| (25..=26).contains(&c)), "{sizes:?}");
    }

    #[test]
    fn hash_partition_deterministic() {
        assert_eq!(hash_partition(50, 3, 9), hash_partition(50, 3, 9));
        assert_ne!(hash_partition(50, 3, 9), hash_partition(50, 3, 10));
    }

    #[test]
    fn bfs_partition_beats_random_on_crossings() {
        // On a strongly local structure (a path), BFS chunking is
        // near-perfect: k contiguous chunks cut only k-1 edges, while
        // a random partition cuts almost everything.
        let path = dgs_graph::generate::tree::random_tree_with_chain_bias(2_000, 5, 1.0, 3);
        let bfs_a = bfs_partition(&path, 8, 1);
        let ef_bfs = Fragmentation::build(&path, &bfs_a, 8).ef();
        let rand_a = hash_partition(2_000, 8, 1);
        let ef_rand = Fragmentation::build(&path, &rand_a, 8).ef();
        assert!(ef_bfs <= 16, "path cut into {ef_bfs} crossing edges");
        assert!(ef_bfs * 20 < ef_rand);

        // On a leakier community graph BFS still helps, more modestly
        // (cross edges pull the BFS frontier across communities).
        let g = gen_random::community(2_000, 8_000, 8, 0.05, 15, 3);
        let rand_a = hash_partition(2_000, 8, 1);
        let bfs_a = bfs_partition(&g, 8, 1);
        let ef_rand = Fragmentation::build(&g, &rand_a, 8).ef();
        let ef_bfs = Fragmentation::build(&g, &bfs_a, 8).ef();
        assert!(
            ef_bfs < ef_rand,
            "bfs {ef_bfs} not better than random {ef_rand}"
        );
    }

    #[test]
    fn bfs_partition_covers_all_sites() {
        let g = gen_random::uniform(100, 300, 5, 2);
        let a = bfs_partition(&g, 5, 0);
        for s in 0..5 {
            assert!(a.contains(&s), "site {s} empty");
        }
    }

    #[test]
    fn refine_lowers_ratio() {
        let g = gen_random::community(1_000, 4_000, 4, 0.4, 10, 7);
        let start = hash_partition(1_000, 4, 7);
        let f0 = Fragmentation::build(&g, &start, 4);
        let start_ratio = f0.ef() as f64 / g.edge_count() as f64;
        let (refined, achieved) = refine_toward_ratio(
            &g,
            &start,
            4,
            RefineObjective::EfRatio,
            start_ratio / 2.0,
            0.02,
            0.5,
            200_000,
            1,
        );
        let f1 = Fragmentation::build(&g, &refined, 4);
        let got = f1.ef() as f64 / g.edge_count() as f64;
        assert!((got - achieved).abs() < 1e-9);
        assert!(got < start_ratio, "no improvement: {got} vs {start_ratio}");
    }

    #[test]
    fn refine_raises_ratio() {
        let g = gen_random::community(1_000, 4_000, 4, 0.02, 10, 8);
        let start = gen_random::community_assignment(1_000, 4);
        let f0 = Fragmentation::build(&g, &start, 4);
        let start_ratio = f0.vf() as f64 / 1_000.0;
        let target = (start_ratio + 0.3).min(0.9);
        let (refined, achieved) = refine_toward_ratio(
            &g,
            &start,
            4,
            RefineObjective::VfRatio,
            target,
            0.02,
            0.5,
            200_000,
            2,
        );
        assert!(
            achieved > start_ratio,
            "no increase: {achieved} vs {start_ratio}"
        );
        let f1 = Fragmentation::build(&g, &refined, 4);
        assert_eq!(f1.vf(), (achieved * 1_000.0).round() as usize);
    }

    #[test]
    fn refine_respects_balance() {
        let g = gen_random::uniform(400, 1_200, 5, 3);
        let start = hash_partition(400, 4, 3);
        let (refined, _) = refine_toward_ratio(
            &g,
            &start,
            4,
            RefineObjective::VfRatio,
            0.0,
            0.001,
            0.2,
            100_000,
            3,
        );
        let mut sizes = [0usize; 4];
        for &s in &refined {
            sizes[s] += 1;
        }
        let cap = ((400.0 / 4.0) * 1.2_f64).ceil() as usize;
        assert!(sizes.iter().all(|&c| c <= cap), "{sizes:?}");
    }

    #[test]
    fn cross_state_incremental_matches_rebuild() {
        let g = gen_random::uniform(200, 800, 5, 11);
        let a = hash_partition(200, 3, 11);
        let mut state = CrossState::new(&g, &a, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..500 {
            let v = NodeId(rng.gen_range(0..200));
            let to = rng.gen_range(0..3);
            state.apply_move(v, to);
        }
        let rebuilt = CrossState::new(&g, &state.assignment, 3);
        assert_eq!(state.vf, rebuilt.vf);
        assert_eq!(state.ef, rebuilt.ef);
        assert_eq!(state.sizes, rebuilt.sizes);
    }
}
