//! Fragments and fragmentations (§2.2 of the paper).
//!
//! [`Fragmentation::build`] turns a site assignment (`Vec<SiteId>`,
//! one site per node) into per-site [`Fragment`]s. Each fragment stores
//! a *compact local index space*: indices `0..n_local` are the local
//! nodes `Vi` (in ascending global-id order) and indices
//! `n_local..n_local + n_virtual` are the virtual nodes `Fi.O`. The
//! edge set `Ei` (local→local and crossing local→virtual edges) is
//! stored as sorted adjacency lists together with its reverse, which
//! is what the incremental falsification propagation of `lEval` walks.
//!
//! ## Dynamic updates
//!
//! A fragmentation is **mutable**: [`Fragmentation::apply_delta`]
//! absorbs a batch of edge insertions/deletions without
//! re-partitioning. Each op is routed to the fragment owning the
//! source node; when a cross-fragment edge appears the source site
//! gains (or revives) a virtual node and the target site records the
//! in-node subscription, and when the last crossing edge between a
//! site pair and node disappears the subscription is dropped and the
//! virtual node **retires**. Retired virtual slots keep their local
//! index (so per-site state built against the old index space stays
//! valid) but have no edges and no subscribers — they are inert until
//! a later insertion revives them.

use dgs_graph::{Graph, Label, NodeId};
use std::collections::HashMap;

/// A site identifier, `0..fragmentation.num_sites()`.
pub type SiteId = usize;

/// One edge-level update op, routed by [`Fragmentation::apply_delta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert edge `(u, v)`; must not already exist.
    Insert(NodeId, NodeId),
    /// Delete edge `(u, v)`; must exist.
    Delete(NodeId, NodeId),
}

/// What one [`Fragmentation::apply_delta`] batch did to the
/// fragmentation structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FragDeltaStats {
    /// Edges inserted within one fragment.
    pub local_inserts: usize,
    /// Edges deleted within one fragment.
    pub local_deletes: usize,
    /// Crossing edges inserted.
    pub crossing_inserts: usize,
    /// Crossing edges deleted.
    pub crossing_deletes: usize,
    /// Virtual nodes created or revived at source sites.
    pub virtuals_created: usize,
    /// Virtual nodes retired (last crossing edge from their site
    /// disappeared).
    pub virtuals_retired: usize,
    /// In-node subscriptions added at target sites.
    pub subscriptions_added: usize,
    /// In-node subscriptions removed at target sites.
    pub subscriptions_removed: usize,
}

/// One fragment `Fi = (Vi ∪ Fi.O, Ei, Li)` materialized at a site.
#[derive(Clone, Debug)]
pub struct Fragment {
    site: SiteId,
    n_local: usize,
    /// Global ids per local index (locals first, then virtuals); the
    /// local section is sorted by global id, the virtual section is
    /// append-ordered (sorted at build time, later slots appended by
    /// deltas).
    global_ids: Vec<NodeId>,
    /// Labels per local index.
    labels: Vec<Label>,
    /// `Ei` as sorted adjacency over local indices; only local nodes
    /// have out-edges.
    out_adj: Vec<Vec<u32>>,
    /// Reverse adjacency of `Ei`, defined for all local indices.
    in_adj: Vec<Vec<u32>>,
    /// Number of edges in `Ei`.
    n_edges: usize,
    /// Local indices of the in-nodes `Fi.I`, sorted.
    in_nodes: Vec<u32>,
    /// For each in-node (aligned with `in_nodes`): the sites holding it
    /// as a virtual node, i.e. the sites to notify when one of its
    /// Boolean variables is falsified (the annotation `A_d(·)` of the
    /// local dependency graph, §4.1).
    in_node_subscribers: Vec<Vec<SiteId>>,
    /// Owner site of each virtual node (aligned with the virtual
    /// section of `global_ids`).
    virtual_owners: Vec<SiteId>,
    /// Global id → local index.
    index_of: HashMap<NodeId, u32>,
}

impl Fragment {
    /// The site this fragment resides at.
    #[inline]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// `|Vi|`: number of local nodes.
    #[inline]
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Number of virtual slots (live **and** retired; a fragmentation
    /// that never saw a delta has no retired slots). See
    /// [`Self::live_virtuals`] for `|Fi.O|` after updates.
    #[inline]
    pub fn n_virtual(&self) -> usize {
        self.global_ids.len() - self.n_local
    }

    /// Total local index space size (`|Vi| + virtual slots`).
    #[inline]
    pub fn n_total(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of edges in `Ei`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The paper's fragment size `|Fi| = |Vi ∪ Fi.O| + |Ei|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n_total() + self.n_edges()
    }

    /// True iff local index `idx` refers to a virtual node (live or
    /// retired).
    #[inline]
    pub fn is_virtual(&self, idx: u32) -> bool {
        (idx as usize) >= self.n_local
    }

    /// True iff `idx` is a virtual slot that currently has a crossing
    /// edge from this fragment (i.e. is genuinely in `Fi.O`).
    #[inline]
    pub fn is_live_virtual(&self, idx: u32) -> bool {
        self.is_virtual(idx) && !self.in_adj[idx as usize].is_empty()
    }

    /// `|Fi.O|` under dynamic updates: virtual slots that still carry
    /// at least one crossing edge.
    pub fn live_virtuals(&self) -> usize {
        self.virtual_indices()
            .filter(|&i| self.is_live_virtual(i))
            .count()
    }

    /// Global node id of local index `idx`.
    #[inline]
    pub fn global_id(&self, idx: u32) -> NodeId {
        self.global_ids[idx as usize]
    }

    /// Label of local index `idx`.
    #[inline]
    pub fn label(&self, idx: u32) -> Label {
        self.labels[idx as usize]
    }

    /// Local index of a global node, if present in this fragment
    /// (as local or virtual).
    #[inline]
    pub fn index_of(&self, v: NodeId) -> Option<u32> {
        self.index_of.get(&v).copied()
    }

    /// Successors of `idx` within `Ei` (empty for virtual nodes),
    /// sorted by local index.
    #[inline]
    pub fn successors(&self, idx: u32) -> &[u32] {
        &self.out_adj[idx as usize]
    }

    /// Predecessors of `idx` within `Ei` (always local nodes), sorted
    /// by local index.
    #[inline]
    pub fn predecessors(&self, idx: u32) -> &[u32] {
        &self.in_adj[idx as usize]
    }

    /// Local indices of the in-nodes `Fi.I`.
    #[inline]
    pub fn in_nodes(&self) -> &[u32] {
        &self.in_nodes
    }

    /// Sites that hold in-node `in_nodes()[pos]` as a virtual node.
    #[inline]
    pub fn in_node_subscribers(&self, pos: usize) -> &[SiteId] {
        &self.in_node_subscribers[pos]
    }

    /// Position of `idx` within `in_nodes()`, if it is an in-node.
    #[inline]
    pub fn in_node_pos(&self, idx: u32) -> Option<usize> {
        self.in_nodes.binary_search(&idx).ok()
    }

    /// Owner site of the virtual node at local index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is not a virtual index.
    #[inline]
    pub fn virtual_owner(&self, idx: u32) -> SiteId {
        assert!(self.is_virtual(idx), "{idx} is not a virtual index");
        self.virtual_owners[idx as usize - self.n_local]
    }

    /// Iterates the local indices of all virtual slots (live and
    /// retired).
    pub fn virtual_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (self.n_local as u32)..(self.n_total() as u32)
    }

    /// Iterates the local indices of all local nodes.
    pub fn local_indices(&self) -> impl Iterator<Item = u32> + '_ {
        0..(self.n_local as u32)
    }

    /// Inserts `(ui, vi)` into the sorted adjacency.
    ///
    /// # Panics
    /// Panics if the edge is already present.
    fn insert_pair(&mut self, ui: u32, vi: u32) {
        let out = &mut self.out_adj[ui as usize];
        let pos = out
            .binary_search(&vi)
            .expect_err("edge to insert already present in fragment");
        out.insert(pos, vi);
        let inn = &mut self.in_adj[vi as usize];
        let pos = inn
            .binary_search(&ui)
            .expect_err("reverse edge already present");
        inn.insert(pos, ui);
        self.n_edges += 1;
    }

    /// Removes `(ui, vi)` from the sorted adjacency.
    ///
    /// # Panics
    /// Panics if the edge is absent.
    fn remove_pair(&mut self, ui: u32, vi: u32) {
        let out = &mut self.out_adj[ui as usize];
        let pos = out
            .binary_search(&vi)
            .expect("edge to delete missing from fragment");
        out.remove(pos);
        let inn = &mut self.in_adj[vi as usize];
        let pos = inn.binary_search(&ui).expect("reverse edge missing");
        inn.remove(pos);
        self.n_edges -= 1;
    }

    /// Looks up or appends the virtual slot for `v`; returns its index.
    fn ensure_virtual(&mut self, v: NodeId, label: Label, owner: SiteId) -> u32 {
        if let Some(&idx) = self.index_of.get(&v) {
            debug_assert!(self.is_virtual(idx), "crossing target must be foreign");
            return idx;
        }
        let idx = self.global_ids.len() as u32;
        self.global_ids.push(v);
        self.labels.push(label);
        self.virtual_owners.push(owner);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.index_of.insert(v, idx);
        idx
    }

    /// Registers `subscriber` for in-node `idx` (creating the in-node
    /// entry if needed). Returns `true` if the subscription was new.
    fn add_subscriber(&mut self, idx: u32, subscriber: SiteId) -> bool {
        match self.in_nodes.binary_search(&idx) {
            Ok(pos) => {
                let subs = &mut self.in_node_subscribers[pos];
                match subs.binary_search(&subscriber) {
                    Ok(_) => false,
                    Err(at) => {
                        subs.insert(at, subscriber);
                        true
                    }
                }
            }
            Err(pos) => {
                self.in_nodes.insert(pos, idx);
                self.in_node_subscribers.insert(pos, vec![subscriber]);
                true
            }
        }
    }

    /// Drops `subscriber` from in-node `idx`, removing the in-node
    /// entry when its last subscriber goes. Returns `true` if the
    /// subscription existed.
    fn remove_subscriber(&mut self, idx: u32, subscriber: SiteId) -> bool {
        let Ok(pos) = self.in_nodes.binary_search(&idx) else {
            return false;
        };
        let subs = &mut self.in_node_subscribers[pos];
        let Ok(at) = subs.binary_search(&subscriber) else {
            return false;
        };
        subs.remove(at);
        if subs.is_empty() {
            self.in_nodes.remove(pos);
            self.in_node_subscribers.remove(pos);
        }
        true
    }
}

/// A fragmentation `F = (F1, ..., Fn)` of a graph, plus the global
/// quantities the paper's bounds are stated in (`|Vf|`, `|Ef|`,
/// `|Fm|`).
#[derive(Clone, Debug)]
pub struct Fragmentation {
    num_sites: usize,
    assignment: Vec<SiteId>,
    fragments: Vec<Fragment>,
    /// Incoming-crossing-edge count per global node (`> 0` ⇔ the node
    /// is a virtual node of some fragment).
    crossing_in: Vec<u32>,
    vf: usize,
    ef: usize,
}

impl Fragmentation {
    /// Builds the fragmentation of `graph` induced by `assignment`
    /// (site per node). Sites are `0..num_sites`; `num_sites` must be
    /// at least `max(assignment) + 1` and empty sites are allowed.
    ///
    /// # Panics
    /// Panics if `assignment.len() != graph.node_count()` or a site id
    /// is out of range.
    pub fn build(graph: &Graph, assignment: &[SiteId], num_sites: usize) -> Self {
        assert_eq!(
            assignment.len(),
            graph.node_count(),
            "assignment must cover every node"
        );
        assert!(
            assignment.iter().all(|&s| s < num_sites),
            "site id out of range"
        );
        let n = graph.node_count();

        // Local nodes per site (ascending global order) and each node's
        // local index.
        let mut locals: Vec<Vec<NodeId>> = vec![Vec::new(); num_sites];
        let mut local_idx = vec![0u32; n];
        for v in graph.nodes() {
            let s = assignment[v.index()];
            local_idx[v.index()] = locals[s].len() as u32;
            locals[s].push(v);
        }

        // Virtual node sets, crossing-edge count and in-node
        // subscriber sets.
        let mut virtuals: Vec<Vec<NodeId>> = vec![Vec::new(); num_sites];
        // (target node, source site) pairs for in-node subscriber
        // computation.
        let mut in_subs: Vec<Vec<(NodeId, SiteId)>> = vec![Vec::new(); num_sites];
        let mut crossing_in = vec![0u32; n];
        let mut ef = 0usize;
        for (u, v) in graph.edges() {
            let su = assignment[u.index()];
            let sv = assignment[v.index()];
            if su != sv {
                ef += 1;
                crossing_in[v.index()] += 1;
                virtuals[su].push(v);
                in_subs[sv].push((v, su));
            }
        }
        for vs in &mut virtuals {
            vs.sort_unstable();
            vs.dedup();
        }

        // |Vf| = distinct nodes that are a virtual node of some
        // fragment (equivalently: have an incoming crossing edge).
        let vf = crossing_in.iter().filter(|&&c| c > 0).count();

        let mut fragments = Vec::with_capacity(num_sites);
        for site in 0..num_sites {
            let n_local = locals[site].len();
            let mut global_ids: Vec<NodeId> = Vec::with_capacity(n_local + virtuals[site].len());
            global_ids.extend_from_slice(&locals[site]);
            global_ids.extend_from_slice(&virtuals[site]);
            let labels: Vec<Label> = global_ids.iter().map(|&v| graph.label(v)).collect();
            let mut index_of = HashMap::with_capacity(global_ids.len());
            for (i, &v) in global_ids.iter().enumerate() {
                index_of.insert(v, i as u32);
            }
            let virtual_owners: Vec<SiteId> = virtuals[site]
                .iter()
                .map(|&v| assignment[v.index()])
                .collect();

            // Ei as sorted adjacency over local indices.
            let n_total = global_ids.len();
            let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n_total];
            let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n_total];
            let mut n_edges = 0usize;
            for (i, &v) in locals[site].iter().enumerate() {
                for &w in graph.successors(v) {
                    let widx = index_of[&w];
                    out_adj[i].push(widx);
                    in_adj[widx as usize].push(i as u32);
                    n_edges += 1;
                }
            }
            for l in out_adj.iter_mut().chain(in_adj.iter_mut()) {
                l.sort_unstable();
            }

            // In-nodes and their subscribers.
            let mut subs_map: HashMap<NodeId, Vec<SiteId>> = HashMap::new();
            for &(v, src_site) in &in_subs[site] {
                let e = subs_map.entry(v).or_default();
                if !e.contains(&src_site) {
                    e.push(src_site);
                }
            }
            let mut in_nodes: Vec<u32> = subs_map.keys().map(|&v| local_idx[v.index()]).collect();
            in_nodes.sort_unstable();
            let in_node_subscribers: Vec<Vec<SiteId>> = in_nodes
                .iter()
                .map(|&idx| {
                    let gid = locals[site][idx as usize];
                    let mut subs = subs_map[&gid].clone();
                    subs.sort_unstable();
                    subs
                })
                .collect();

            fragments.push(Fragment {
                site,
                n_local,
                global_ids,
                labels,
                out_adj,
                in_adj,
                n_edges,
                in_nodes,
                in_node_subscribers,
                virtual_owners,
                index_of,
            });
        }

        Fragmentation {
            num_sites,
            assignment: assignment.to_vec(),
            fragments,
            crossing_in,
            vf,
            ef,
        }
    }

    /// Absorbs a batch of edge ops **without re-partitioning**: each op
    /// routes to the fragment owning its source node; crossing-edge
    /// changes create/revive or retire virtual nodes at the source site
    /// and add/drop in-node subscriptions at the target site, and the
    /// global `|Vf|`/`|Ef|` counters are maintained incrementally.
    ///
    /// The node set (and therefore the site assignment and every local
    /// index) is unchanged; retired virtual slots keep their index and
    /// are revived in place if a crossing edge reappears.
    ///
    /// # Panics
    /// Panics if an op references a node outside the assignment,
    /// inserts an edge that already exists, or deletes one that does
    /// not — callers (e.g. `SimEngine::apply_delta`) filter no-ops
    /// first.
    pub fn apply_delta(&mut self, ops: &[EdgeOp]) -> FragDeltaStats {
        let mut stats = FragDeltaStats::default();
        for &op in ops {
            match op {
                EdgeOp::Insert(u, v) => self.insert_edge(u, v, &mut stats),
                EdgeOp::Delete(u, v) => self.delete_edge(u, v, &mut stats),
            }
        }
        stats
    }

    fn endpoints(&self, u: NodeId, v: NodeId) -> (SiteId, SiteId) {
        assert!(
            u.index() < self.assignment.len() && v.index() < self.assignment.len(),
            "edge ({u:?}, {v:?}) outside the fragmented node set"
        );
        (self.assignment[u.index()], self.assignment[v.index()])
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId, stats: &mut FragDeltaStats) {
        let (su, sv) = self.endpoints(u, v);
        if su == sv {
            let f = &mut self.fragments[su];
            let ui = f.index_of[&u];
            let vi = f.index_of[&v];
            f.insert_pair(ui, vi);
            stats.local_inserts += 1;
            return;
        }
        let label = {
            let fv = &self.fragments[sv];
            fv.labels[fv.index_of[&v] as usize]
        };
        let f = &mut self.fragments[su];
        let vi = f.ensure_virtual(v, label, sv);
        let revived = f.in_adj[vi as usize].is_empty();
        let ui = f.index_of[&u];
        f.insert_pair(ui, vi);
        if revived {
            stats.virtuals_created += 1;
            // First crossing edge from su into v: su subscribes to v's
            // falsifications at the owner site.
            let fv = &mut self.fragments[sv];
            let v_local = fv.index_of[&v];
            if fv.add_subscriber(v_local, su) {
                stats.subscriptions_added += 1;
            }
        }
        self.ef += 1;
        self.crossing_in[v.index()] += 1;
        if self.crossing_in[v.index()] == 1 {
            self.vf += 1;
        }
        stats.crossing_inserts += 1;
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId, stats: &mut FragDeltaStats) {
        let (su, sv) = self.endpoints(u, v);
        if su == sv {
            let f = &mut self.fragments[su];
            let ui = f.index_of[&u];
            let vi = f.index_of[&v];
            f.remove_pair(ui, vi);
            stats.local_deletes += 1;
            return;
        }
        let f = &mut self.fragments[su];
        let ui = f.index_of[&u];
        let vi = f.index_of[&v];
        f.remove_pair(ui, vi);
        let retired = f.in_adj[vi as usize].is_empty();
        if retired {
            stats.virtuals_retired += 1;
            let fv = &mut self.fragments[sv];
            let v_local = fv.index_of[&v];
            if fv.remove_subscriber(v_local, su) {
                stats.subscriptions_removed += 1;
            }
        }
        self.ef -= 1;
        self.crossing_in[v.index()] -= 1;
        if self.crossing_in[v.index()] == 0 {
            self.vf -= 1;
        }
        stats.crossing_deletes += 1;
    }

    /// Number of sites `|F|`.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The fragment at `site`.
    #[inline]
    pub fn fragment(&self, site: SiteId) -> &Fragment {
        &self.fragments[site]
    }

    /// All fragments, indexed by site.
    #[inline]
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Owner site of a global node.
    #[inline]
    pub fn owner(&self, v: NodeId) -> SiteId {
        self.assignment[v.index()]
    }

    /// True iff edge `(u, v)` exists in the fragmented graph (it lives
    /// in the fragment owning `u`). `O(log deg)` — what lets a dynamic
    /// session validate delta ops without materializing the graph.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let f = &self.fragments[self.owner(u)];
        let (Some(ui), Some(vi)) = (f.index_of(u), f.index_of(v)) else {
            return false;
        };
        f.successors(ui).binary_search(&vi).is_ok()
    }

    /// The site assignment (one site per global node).
    #[inline]
    pub fn assignment(&self) -> &[SiteId] {
        &self.assignment
    }

    /// `|Vf|`: number of distinct virtual nodes across all fragments.
    #[inline]
    pub fn vf(&self) -> usize {
        self.vf
    }

    /// `|Ef|`: number of crossing edges.
    #[inline]
    pub fn ef(&self) -> usize {
        self.ef
    }

    /// The largest fragment size `|Fm|` (nodes + edges).
    pub fn fm_size(&self) -> usize {
        self.fragments.iter().map(Fragment::size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::GraphBuilder;

    fn two_site_line() -> (Graph, Fragmentation) {
        // 0 -> 1 -> 2 -> 3 with sites [0, 0, 1, 1].
        let mut b = GraphBuilder::new();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let f = Fragmentation::build(&g, &[0, 0, 1, 1], 2);
        (g, f)
    }

    #[test]
    fn local_and_virtual_partitions() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        assert_eq!(f0.n_local(), 2);
        assert_eq!(f0.n_virtual(), 1); // node 2 is virtual at site 0
        assert_eq!(f0.global_id(2), NodeId(2));
        assert!(f0.is_virtual(2));
        assert!(f0.is_live_virtual(2));
        assert_eq!(f0.virtual_owner(2), 1);

        let f1 = f.fragment(1);
        assert_eq!(f1.n_local(), 2);
        assert_eq!(f1.n_virtual(), 0);
        assert_eq!(f1.in_nodes().len(), 1);
        assert_eq!(f1.global_id(f1.in_nodes()[0]), NodeId(2));
        assert_eq!(f1.in_node_subscribers(0), &[0]);
    }

    #[test]
    fn vf_ef_counts() {
        let (_, f) = two_site_line();
        assert_eq!(f.ef(), 1);
        assert_eq!(f.vf(), 1);
        assert_eq!(f.owner(NodeId(2)), 1);
    }

    #[test]
    fn fragment_edges_cover_local_and_crossing() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        // Edges at site 0: (0,1) local and (1,2) crossing.
        assert_eq!(f0.n_edges(), 2);
        assert_eq!(f0.successors(0), &[1]);
        assert_eq!(f0.successors(1), &[2]); // virtual index
        assert_eq!(f0.successors(2), &[] as &[u32]); // virtual: no out-edges
        assert_eq!(f0.predecessors(2), &[1]);
    }

    #[test]
    fn fig1_fragmentation_matches_paper() {
        let w = fig1();
        let f = Fragmentation::build(&w.graph, &w.assignment, 3);
        // Example 4: F1.O = {f4, f2, yf2}, F1.I = {sp1, yf1}.
        let f1 = f.fragment(0);
        let virt_names: Vec<&str> = f1
            .virtual_indices()
            .map(|i| w.node_names[f1.global_id(i).index()])
            .collect();
        let mut virt_sorted = virt_names.clone();
        virt_sorted.sort_unstable();
        assert_eq!(virt_sorted, vec!["f2", "f4", "yf2"]);
        let in_names: Vec<&str> = f1
            .in_nodes()
            .iter()
            .map(|&i| w.node_names[f1.global_id(i).index()])
            .collect();
        let mut in_sorted = in_names;
        in_sorted.sort_unstable();
        assert_eq!(in_sorted, vec!["sp1", "yf1"]);

        // Example 5: G3d has (S1,S3) annotated {f4} and (S2,S3)
        // annotated {sp3, yf3}: i.e. at site 2, in-node f4 has
        // subscriber S1=0, and sp3/yf3 have subscriber S2=1.
        let f3 = f.fragment(2);
        for (pos, &idx) in f3.in_nodes().iter().enumerate() {
            let name = w.node_names[f3.global_id(idx).index()];
            let subs = f3.in_node_subscribers(pos);
            match name {
                "f4" => assert_eq!(subs, &[0]),
                "sp3" | "yf3" => assert_eq!(subs, &[1]),
                other => panic!("unexpected in-node {other}"),
            }
        }
    }

    #[test]
    fn empty_site_allowed() {
        let mut b = GraphBuilder::new();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let f = Fragmentation::build(&g, &[0, 0], 3);
        assert_eq!(f.num_sites(), 3);
        assert_eq!(f.fragment(1).n_total(), 0);
        assert_eq!(f.fragment(2).n_total(), 0);
        assert_eq!(f.ef(), 0);
    }

    #[test]
    fn index_of_roundtrip() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        for idx in 0..f0.n_total() as u32 {
            assert_eq!(f0.index_of(f0.global_id(idx)), Some(idx));
        }
        assert_eq!(f0.index_of(NodeId(3)), None);
    }

    #[test]
    fn fm_size_is_largest() {
        let (_, f) = two_site_line();
        // site 0: 3 nodes (2 local + 1 virtual) + 2 edges = 5
        // site 1: 2 nodes + 1 edge = 3
        assert_eq!(f.fm_size(), 5);
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn wrong_assignment_length_panics() {
        let (g, _) = two_site_line();
        let _ = Fragmentation::build(&g, &[0, 0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "site id out of range")]
    fn out_of_range_site_panics() {
        let (g, _) = two_site_line();
        let _ = Fragmentation::build(&g, &[0, 0, 1, 5], 2);
    }

    #[test]
    fn crossing_edges_per_fragment_in_example4() {
        let w = fig1();
        let f = Fragmentation::build(&w.graph, &w.assignment, 3);
        // F1's crossing edges: (f1,f4), (yf1,f2), (sp1,yf2), (sp1,f2).
        let f1 = f.fragment(0);
        let mut crossing: Vec<(String, String)> = Vec::new();
        for u in f1.local_indices() {
            for &t in f1.successors(u) {
                if f1.is_virtual(t) {
                    crossing.push((
                        w.node_names[f1.global_id(u).index()].to_owned(),
                        w.node_names[f1.global_id(t).index()].to_owned(),
                    ));
                }
            }
        }
        crossing.sort();
        assert_eq!(
            crossing,
            vec![
                ("f1".to_owned(), "f4".to_owned()),
                ("sp1".to_owned(), "f2".to_owned()),
                ("sp1".to_owned(), "yf2".to_owned()),
                ("yf1".to_owned(), "f2".to_owned()),
            ]
        );
    }

    #[test]
    fn delta_deletes_crossing_edge_and_retires_virtual() {
        let (_, mut f) = two_site_line();
        let stats = f.apply_delta(&[EdgeOp::Delete(NodeId(1), NodeId(2))]);
        assert_eq!(stats.crossing_deletes, 1);
        assert_eq!(stats.virtuals_retired, 1);
        assert_eq!(stats.subscriptions_removed, 1);
        assert_eq!(f.ef(), 0);
        assert_eq!(f.vf(), 0);
        let f0 = f.fragment(0);
        // The slot survives, inert.
        assert_eq!(f0.n_virtual(), 1);
        assert_eq!(f0.live_virtuals(), 0);
        assert!(!f0.is_live_virtual(2));
        assert_eq!(f0.predecessors(2), &[] as &[u32]);
        // The subscription at site 1 is gone.
        assert!(f.fragment(1).in_nodes().is_empty());
    }

    #[test]
    fn delta_reinsert_revives_virtual_in_place() {
        let (_, mut f) = two_site_line();
        f.apply_delta(&[EdgeOp::Delete(NodeId(1), NodeId(2))]);
        let stats = f.apply_delta(&[EdgeOp::Insert(NodeId(0), NodeId(2))]);
        assert_eq!(stats.crossing_inserts, 1);
        assert_eq!(stats.virtuals_created, 1);
        assert_eq!(stats.subscriptions_added, 1);
        let f0 = f.fragment(0);
        // Same slot, revived — no index shift.
        assert_eq!(f0.n_virtual(), 1);
        assert_eq!(f0.index_of(NodeId(2)), Some(2));
        assert!(f0.is_live_virtual(2));
        assert_eq!(f0.predecessors(2), &[0]);
        assert_eq!(f.ef(), 1);
        assert_eq!(f.vf(), 1);
        let f1 = f.fragment(1);
        assert_eq!(f1.in_nodes().len(), 1);
        assert_eq!(f1.in_node_subscribers(0), &[0]);
    }

    #[test]
    fn delta_creates_new_virtual_node() {
        let (_, mut f) = two_site_line();
        // A crossing edge to a node site 0 has never seen: 0 -> 3.
        let stats = f.apply_delta(&[EdgeOp::Insert(NodeId(0), NodeId(3))]);
        assert_eq!(stats.virtuals_created, 1);
        let f0 = f.fragment(0);
        assert_eq!(f0.n_virtual(), 2);
        let idx = f0.index_of(NodeId(3)).unwrap();
        assert!(f0.is_live_virtual(idx));
        assert_eq!(f0.virtual_owner(idx), 1);
        assert_eq!(f0.label(idx), Label(0));
        assert_eq!(f.ef(), 2);
        assert_eq!(f.vf(), 2);
        // Site 1 now has two in-nodes (2 and 3), both subscribed by 0.
        let f1 = f.fragment(1);
        assert_eq!(f1.in_nodes().len(), 2);
        for pos in 0..2 {
            assert_eq!(f1.in_node_subscribers(pos), &[0]);
        }
    }

    #[test]
    fn delta_local_ops_do_not_touch_crossing_state() {
        let (_, mut f) = two_site_line();
        let stats = f.apply_delta(&[
            EdgeOp::Delete(NodeId(0), NodeId(1)),
            EdgeOp::Insert(NodeId(1), NodeId(0)),
        ]);
        assert_eq!(stats.local_deletes, 1);
        assert_eq!(stats.local_inserts, 1);
        assert_eq!(stats.crossing_inserts + stats.crossing_deletes, 0);
        assert_eq!(f.ef(), 1);
        let f0 = f.fragment(0);
        assert_eq!(f0.successors(0), &[] as &[u32]);
        assert_eq!(f0.successors(1), &[0, 2]);
    }

    #[test]
    fn subscription_persists_while_other_crossing_edge_remains() {
        let (_, mut f) = two_site_line();
        // Second crossing edge into node 2 from site 0.
        f.apply_delta(&[EdgeOp::Insert(NodeId(0), NodeId(2))]);
        // Deleting one of the two keeps the subscription and the
        // virtual node alive.
        let stats = f.apply_delta(&[EdgeOp::Delete(NodeId(1), NodeId(2))]);
        assert_eq!(stats.virtuals_retired, 0);
        assert_eq!(stats.subscriptions_removed, 0);
        assert!(f.fragment(0).is_live_virtual(2));
        assert_eq!(f.fragment(1).in_nodes().len(), 1);
        assert_eq!(f.ef(), 1);
        assert_eq!(f.vf(), 1);
    }

    #[test]
    fn has_edge_tracks_deltas() {
        let (_, mut f) = two_site_line();
        assert!(f.has_edge(NodeId(1), NodeId(2))); // crossing
        assert!(f.has_edge(NodeId(0), NodeId(1))); // local
        assert!(!f.has_edge(NodeId(2), NodeId(1)));
        assert!(!f.has_edge(NodeId(0), NodeId(3)));
        f.apply_delta(&[
            EdgeOp::Delete(NodeId(1), NodeId(2)),
            EdgeOp::Insert(NodeId(0), NodeId(3)),
        ]);
        assert!(!f.has_edge(NodeId(1), NodeId(2)));
        assert!(f.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "edge to delete missing")]
    fn deleting_absent_edge_panics() {
        let (_, mut f) = two_site_line();
        f.apply_delta(&[EdgeOp::Delete(NodeId(0), NodeId(1))]);
        f.apply_delta(&[EdgeOp::Delete(NodeId(0), NodeId(1))]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn inserting_duplicate_edge_panics() {
        let (_, mut f) = two_site_line();
        f.apply_delta(&[EdgeOp::Insert(NodeId(0), NodeId(1))]);
    }
}

/// The retired-slot revival audit: random interleavings of crossing
/// and local edge deletes, re-inserts of previously deleted edges
/// (the revival path) and fresh inserts, with the delta-maintained
/// fragmentation compared against a from-scratch rebuild of the
/// final graph after every burst. Indices are append-only, so the
/// comparison is by **global-id sets** (a rebuild lays out virtuals
/// densely; the maintained side keeps retired slots in place), plus
/// the invariant that no existing slot ever moves.
#[cfg(test)]
mod delta_proptests {
    use super::*;
    use dgs_graph::{GraphBuilder, Label, NodeId};
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet, HashSet};

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    fn build_graph(n: usize, edges: &BTreeSet<(u32, u32)>, labels: &[Label]) -> dgs_graph::Graph {
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for &l in labels {
            b.add_node(l);
        }
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Per-site observable state, in global ids: locals, live
    /// virtuals, edges (from local sources), and in-node subscriber
    /// sets (only non-empty ones — the maintained side keeps empty
    /// subscription slots around, a rebuild never creates them).
    #[allow(clippy::type_complexity)]
    fn observe(
        f: &Fragmentation,
    ) -> Vec<(
        BTreeSet<u32>,
        BTreeSet<u32>,
        BTreeSet<(u32, u32)>,
        BTreeMap<u32, BTreeSet<usize>>,
    )> {
        f.fragments()
            .iter()
            .map(|frag| {
                let locals: BTreeSet<u32> =
                    frag.local_indices().map(|i| frag.global_id(i).0).collect();
                let live: BTreeSet<u32> = frag
                    .virtual_indices()
                    .filter(|&i| frag.is_live_virtual(i))
                    .map(|i| frag.global_id(i).0)
                    .collect();
                let edges: BTreeSet<(u32, u32)> = frag
                    .local_indices()
                    .flat_map(|u| {
                        frag.successors(u)
                            .iter()
                            .map(move |&t| (frag.global_id(u).0, frag.global_id(t).0))
                    })
                    .collect();
                let subs: BTreeMap<u32, BTreeSet<usize>> = frag
                    .in_nodes()
                    .iter()
                    .enumerate()
                    .filter_map(|(pos, &idx)| {
                        let subscribers: BTreeSet<usize> =
                            frag.in_node_subscribers(pos).iter().copied().collect();
                        (!subscribers.is_empty()).then(|| (frag.global_id(idx).0, subscribers))
                    })
                    .collect();
                (locals, live, edges, subs)
            })
            .collect()
    }

    fn check(seed: u64, n: usize, sites: usize, steps: usize) {
        let mut s = seed | 1;
        let labels: Vec<Label> = (0..n)
            .map(|_| Label((xorshift(&mut s) % 3) as u16))
            .collect();
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        for _ in 0..2 * n {
            let u = (xorshift(&mut s) % n as u64) as u32;
            let v = (xorshift(&mut s) % n as u64) as u32;
            if u != v {
                edges.insert((u, v));
            }
        }
        let assignment = crate::hash_partition(n, sites, seed);
        let g = build_graph(n, &edges, &labels);
        let mut maintained = Fragmentation::build(&g, &assignment, sites);

        // Every slot that exists now must keep its index forever.
        let pinned: Vec<Vec<(NodeId, u32)>> = maintained
            .fragments()
            .iter()
            .map(|frag| {
                (0..frag.n_total() as u32)
                    .map(|i| (frag.global_id(i), i))
                    .collect()
            })
            .collect();

        let mut deleted: Vec<(u32, u32)> = Vec::new();
        for _ in 0..steps {
            let op = match xorshift(&mut s) % 3 {
                // Revival path: put back an edge we deleted earlier.
                0 if !deleted.is_empty() => {
                    let e = deleted.swap_remove((xorshift(&mut s) % deleted.len() as u64) as usize);
                    if edges.contains(&e) {
                        continue; // re-inserted already by the fresh-insert arm
                    }
                    edges.insert(e);
                    EdgeOp::Insert(NodeId(e.0), NodeId(e.1))
                }
                1 if !edges.is_empty() => {
                    let k = (xorshift(&mut s) % edges.len() as u64) as usize;
                    let e = *edges.iter().nth(k).unwrap();
                    edges.remove(&e);
                    deleted.push(e);
                    EdgeOp::Delete(NodeId(e.0), NodeId(e.1))
                }
                _ => {
                    let u = (xorshift(&mut s) % n as u64) as u32;
                    let v = (xorshift(&mut s) % n as u64) as u32;
                    if u == v || edges.contains(&(u, v)) {
                        continue;
                    }
                    edges.insert((u, v));
                    EdgeOp::Insert(NodeId(u), NodeId(v))
                }
            };
            maintained.apply_delta(&[op]);
        }

        let rebuilt = Fragmentation::build(&build_graph(n, &edges, &labels), &assignment, sites);
        assert_eq!(maintained.vf(), rebuilt.vf(), "|Vf| diverged");
        assert_eq!(maintained.ef(), rebuilt.ef(), "|Ef| diverged");
        assert_eq!(observe(&maintained), observe(&rebuilt));

        // Index stability: locals and old virtual slots never moved,
        // revived slots were revived in place.
        for (site, pins) in pinned.iter().enumerate() {
            let frag = maintained.fragment(site);
            for &(v, idx) in pins {
                assert_eq!(frag.index_of(v), Some(idx), "slot moved at site {site}");
            }
        }

        // The maintained edge view agrees with the mutated edge set.
        let sample: Vec<(u32, u32)> = edges.iter().copied().take(20).collect();
        for (u, v) in sample {
            assert!(maintained.has_edge(NodeId(u), NodeId(v)));
        }
        let mut absent_probe = HashSet::new();
        while absent_probe.len() < 10 {
            let u = (xorshift(&mut s) % n as u64) as u32;
            let v = (xorshift(&mut s) % n as u64) as u32;
            if u != v && !edges.contains(&(u, v)) && absent_probe.insert((u, v)) {
                assert!(!maintained.has_edge(NodeId(u), NodeId(v)));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn delta_maintained_fragmentation_matches_rebuild(
            seed in any::<u64>(),
            n in 8usize..40,
            sites in 2usize..5,
            steps in 1usize..80,
        ) {
            check(seed, n, sites, steps);
        }
    }
}
