//! Fragments and fragmentations (§2.2 of the paper).
//!
//! [`Fragmentation::build`] turns a site assignment (`Vec<SiteId>`,
//! one site per node) into per-site [`Fragment`]s. Each fragment stores
//! a *compact local index space*: indices `0..n_local` are the local
//! nodes `Vi` (in ascending global-id order) and indices
//! `n_local..n_local + n_virtual` are the virtual nodes `Fi.O`. The
//! edge set `Ei` (local→local and crossing local→virtual edges) is
//! stored in CSR form together with its reverse, which is what the
//! incremental falsification propagation of `lEval` walks.

use dgs_graph::{Graph, Label, NodeId};
use std::collections::HashMap;

/// A site identifier, `0..fragmentation.num_sites()`.
pub type SiteId = usize;

/// One fragment `Fi = (Vi ∪ Fi.O, Ei, Li)` materialized at a site.
#[derive(Clone, Debug)]
pub struct Fragment {
    site: SiteId,
    n_local: usize,
    /// Global ids per local index (locals first, then virtuals); both
    /// sections are sorted by global id.
    global_ids: Vec<NodeId>,
    /// Labels per local index.
    labels: Vec<Label>,
    /// CSR of `Ei` over local indices; only local nodes have out-edges.
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    /// Reverse CSR of `Ei`, defined for all local indices.
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    /// Local indices of the in-nodes `Fi.I`, sorted.
    in_nodes: Vec<u32>,
    /// For each in-node (aligned with `in_nodes`): the sites holding it
    /// as a virtual node, i.e. the sites to notify when one of its
    /// Boolean variables is falsified (the annotation `A_d(·)` of the
    /// local dependency graph, §4.1).
    in_node_subscribers: Vec<Vec<SiteId>>,
    /// Owner site of each virtual node (aligned with the virtual
    /// section of `global_ids`).
    virtual_owners: Vec<SiteId>,
    /// Global id → local index.
    index_of: HashMap<NodeId, u32>,
}

impl Fragment {
    /// The site this fragment resides at.
    #[inline]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// `|Vi|`: number of local nodes.
    #[inline]
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// `|Fi.O|`: number of virtual nodes.
    #[inline]
    pub fn n_virtual(&self) -> usize {
        self.global_ids.len() - self.n_local
    }

    /// Total local index space size (`|Vi| + |Fi.O|`).
    #[inline]
    pub fn n_total(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of edges in `Ei`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// The paper's fragment size `|Fi| = |Vi ∪ Fi.O| + |Ei|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n_total() + self.n_edges()
    }

    /// True iff local index `idx` refers to a virtual node.
    #[inline]
    pub fn is_virtual(&self, idx: u32) -> bool {
        (idx as usize) >= self.n_local
    }

    /// Global node id of local index `idx`.
    #[inline]
    pub fn global_id(&self, idx: u32) -> NodeId {
        self.global_ids[idx as usize]
    }

    /// Label of local index `idx`.
    #[inline]
    pub fn label(&self, idx: u32) -> Label {
        self.labels[idx as usize]
    }

    /// Local index of a global node, if present in this fragment
    /// (as local or virtual).
    #[inline]
    pub fn index_of(&self, v: NodeId) -> Option<u32> {
        self.index_of.get(&v).copied()
    }

    /// Successors of `idx` within `Ei` (empty for virtual nodes).
    #[inline]
    pub fn successors(&self, idx: u32) -> &[u32] {
        let lo = self.out_offsets[idx as usize] as usize;
        let hi = self.out_offsets[idx as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Predecessors of `idx` within `Ei` (always local nodes).
    #[inline]
    pub fn predecessors(&self, idx: u32) -> &[u32] {
        let lo = self.in_offsets[idx as usize] as usize;
        let hi = self.in_offsets[idx as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Local indices of the in-nodes `Fi.I`.
    #[inline]
    pub fn in_nodes(&self) -> &[u32] {
        &self.in_nodes
    }

    /// Sites that hold in-node `in_nodes()[pos]` as a virtual node.
    #[inline]
    pub fn in_node_subscribers(&self, pos: usize) -> &[SiteId] {
        &self.in_node_subscribers[pos]
    }

    /// Position of `idx` within `in_nodes()`, if it is an in-node.
    #[inline]
    pub fn in_node_pos(&self, idx: u32) -> Option<usize> {
        self.in_nodes.binary_search(&idx).ok()
    }

    /// Owner site of the virtual node at local index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is not a virtual index.
    #[inline]
    pub fn virtual_owner(&self, idx: u32) -> SiteId {
        assert!(self.is_virtual(idx), "{idx} is not a virtual index");
        self.virtual_owners[idx as usize - self.n_local]
    }

    /// Iterates the local indices of all virtual nodes.
    pub fn virtual_indices(&self) -> impl Iterator<Item = u32> + '_ {
        (self.n_local as u32)..(self.n_total() as u32)
    }

    /// Iterates the local indices of all local nodes.
    pub fn local_indices(&self) -> impl Iterator<Item = u32> + '_ {
        0..(self.n_local as u32)
    }
}

/// A fragmentation `F = (F1, ..., Fn)` of a graph, plus the global
/// quantities the paper's bounds are stated in (`|Vf|`, `|Ef|`,
/// `|Fm|`).
#[derive(Clone, Debug)]
pub struct Fragmentation {
    num_sites: usize,
    assignment: Vec<SiteId>,
    fragments: Vec<Fragment>,
    vf: usize,
    ef: usize,
}

impl Fragmentation {
    /// Builds the fragmentation of `graph` induced by `assignment`
    /// (site per node). Sites are `0..num_sites`; `num_sites` must be
    /// at least `max(assignment) + 1` and empty sites are allowed.
    ///
    /// # Panics
    /// Panics if `assignment.len() != graph.node_count()` or a site id
    /// is out of range.
    pub fn build(graph: &Graph, assignment: &[SiteId], num_sites: usize) -> Self {
        assert_eq!(
            assignment.len(),
            graph.node_count(),
            "assignment must cover every node"
        );
        assert!(
            assignment.iter().all(|&s| s < num_sites),
            "site id out of range"
        );
        let n = graph.node_count();

        // Local nodes per site (ascending global order) and each node's
        // local index.
        let mut locals: Vec<Vec<NodeId>> = vec![Vec::new(); num_sites];
        let mut local_idx = vec![0u32; n];
        for v in graph.nodes() {
            let s = assignment[v.index()];
            local_idx[v.index()] = locals[s].len() as u32;
            locals[s].push(v);
        }

        // Virtual node sets, crossing-edge count and in-node
        // subscriber sets.
        let mut virtuals: Vec<Vec<NodeId>> = vec![Vec::new(); num_sites];
        // (target site, target node, source site) triples for in-node
        // subscriber computation.
        let mut in_subs: Vec<Vec<(NodeId, SiteId)>> = vec![Vec::new(); num_sites];
        let mut ef = 0usize;
        for (u, v) in graph.edges() {
            let su = assignment[u.index()];
            let sv = assignment[v.index()];
            if su != sv {
                ef += 1;
                virtuals[su].push(v);
                in_subs[sv].push((v, su));
            }
        }
        for vs in &mut virtuals {
            vs.sort_unstable();
            vs.dedup();
        }

        // |Vf| = distinct nodes that are a virtual node of some
        // fragment (equivalently: have an incoming crossing edge).
        let mut is_vf = vec![false; n];
        for vs in &virtuals {
            for &v in vs {
                is_vf[v.index()] = true;
            }
        }
        let vf = is_vf.iter().filter(|&&b| b).count();

        let mut fragments = Vec::with_capacity(num_sites);
        for site in 0..num_sites {
            let n_local = locals[site].len();
            let mut global_ids: Vec<NodeId> = Vec::with_capacity(n_local + virtuals[site].len());
            global_ids.extend_from_slice(&locals[site]);
            global_ids.extend_from_slice(&virtuals[site]);
            let labels: Vec<Label> = global_ids.iter().map(|&v| graph.label(v)).collect();
            let mut index_of = HashMap::with_capacity(global_ids.len());
            for (i, &v) in global_ids.iter().enumerate() {
                index_of.insert(v, i as u32);
            }
            let virtual_owners: Vec<SiteId> = virtuals[site]
                .iter()
                .map(|&v| assignment[v.index()])
                .collect();

            // Ei in CSR over local indices.
            let n_total = global_ids.len();
            let mut out_offsets = vec![0u32; n_total + 1];
            let mut edges_local: Vec<(u32, u32)> = Vec::new();
            for (i, &v) in locals[site].iter().enumerate() {
                for &w in graph.successors(v) {
                    let widx = index_of[&w];
                    edges_local.push((i as u32, widx));
                }
            }
            for &(u, _) in &edges_local {
                out_offsets[u as usize + 1] += 1;
            }
            for i in 0..n_total {
                out_offsets[i + 1] += out_offsets[i];
            }
            let out_targets: Vec<u32> = edges_local.iter().map(|&(_, w)| w).collect();

            let mut in_offsets = vec![0u32; n_total + 1];
            for &(_, w) in &edges_local {
                in_offsets[w as usize + 1] += 1;
            }
            for i in 0..n_total {
                in_offsets[i + 1] += in_offsets[i];
            }
            let mut cursor = in_offsets.clone();
            let mut in_sources = vec![0u32; edges_local.len()];
            for &(u, w) in &edges_local {
                in_sources[cursor[w as usize] as usize] = u;
                cursor[w as usize] += 1;
            }

            // In-nodes and their subscribers.
            let mut subs_map: HashMap<NodeId, Vec<SiteId>> = HashMap::new();
            for &(v, src_site) in &in_subs[site] {
                let e = subs_map.entry(v).or_default();
                if !e.contains(&src_site) {
                    e.push(src_site);
                }
            }
            let mut in_nodes: Vec<u32> = subs_map.keys().map(|&v| local_idx[v.index()]).collect();
            in_nodes.sort_unstable();
            let in_node_subscribers: Vec<Vec<SiteId>> = in_nodes
                .iter()
                .map(|&idx| {
                    let gid = locals[site][idx as usize];
                    let mut subs = subs_map[&gid].clone();
                    subs.sort_unstable();
                    subs
                })
                .collect();

            fragments.push(Fragment {
                site,
                n_local,
                global_ids,
                labels,
                out_offsets,
                out_targets,
                in_offsets,
                in_sources,
                in_nodes,
                in_node_subscribers,
                virtual_owners,
                index_of,
            });
        }

        Fragmentation {
            num_sites,
            assignment: assignment.to_vec(),
            fragments,
            vf,
            ef,
        }
    }

    /// Number of sites `|F|`.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The fragment at `site`.
    #[inline]
    pub fn fragment(&self, site: SiteId) -> &Fragment {
        &self.fragments[site]
    }

    /// All fragments, indexed by site.
    #[inline]
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Owner site of a global node.
    #[inline]
    pub fn owner(&self, v: NodeId) -> SiteId {
        self.assignment[v.index()]
    }

    /// The site assignment (one site per global node).
    #[inline]
    pub fn assignment(&self) -> &[SiteId] {
        &self.assignment
    }

    /// `|Vf|`: number of distinct virtual nodes across all fragments.
    #[inline]
    pub fn vf(&self) -> usize {
        self.vf
    }

    /// `|Ef|`: number of crossing edges.
    #[inline]
    pub fn ef(&self) -> usize {
        self.ef
    }

    /// The largest fragment size `|Fm|` (nodes + edges).
    pub fn fm_size(&self) -> usize {
        self.fragments.iter().map(Fragment::size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::GraphBuilder;

    fn two_site_line() -> (Graph, Fragmentation) {
        // 0 -> 1 -> 2 -> 3 with sites [0, 0, 1, 1].
        let mut b = GraphBuilder::new();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let f = Fragmentation::build(&g, &[0, 0, 1, 1], 2);
        (g, f)
    }

    #[test]
    fn local_and_virtual_partitions() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        assert_eq!(f0.n_local(), 2);
        assert_eq!(f0.n_virtual(), 1); // node 2 is virtual at site 0
        assert_eq!(f0.global_id(2), NodeId(2));
        assert!(f0.is_virtual(2));
        assert_eq!(f0.virtual_owner(2), 1);

        let f1 = f.fragment(1);
        assert_eq!(f1.n_local(), 2);
        assert_eq!(f1.n_virtual(), 0);
        assert_eq!(f1.in_nodes().len(), 1);
        assert_eq!(f1.global_id(f1.in_nodes()[0]), NodeId(2));
        assert_eq!(f1.in_node_subscribers(0), &[0]);
    }

    #[test]
    fn vf_ef_counts() {
        let (_, f) = two_site_line();
        assert_eq!(f.ef(), 1);
        assert_eq!(f.vf(), 1);
        assert_eq!(f.owner(NodeId(2)), 1);
    }

    #[test]
    fn fragment_edges_cover_local_and_crossing() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        // Edges at site 0: (0,1) local and (1,2) crossing.
        assert_eq!(f0.n_edges(), 2);
        assert_eq!(f0.successors(0), &[1]);
        assert_eq!(f0.successors(1), &[2]); // virtual index
        assert_eq!(f0.successors(2), &[] as &[u32]); // virtual: no out-edges
        assert_eq!(f0.predecessors(2), &[1]);
    }

    #[test]
    fn fig1_fragmentation_matches_paper() {
        let w = fig1();
        let f = Fragmentation::build(&w.graph, &w.assignment, 3);
        // Example 4: F1.O = {f4, f2, yf2}, F1.I = {sp1, yf1}.
        let f1 = f.fragment(0);
        let virt_names: Vec<&str> = f1
            .virtual_indices()
            .map(|i| w.node_names[f1.global_id(i).index()])
            .collect();
        let mut virt_sorted = virt_names.clone();
        virt_sorted.sort_unstable();
        assert_eq!(virt_sorted, vec!["f2", "f4", "yf2"]);
        let in_names: Vec<&str> = f1
            .in_nodes()
            .iter()
            .map(|&i| w.node_names[f1.global_id(i).index()])
            .collect();
        let mut in_sorted = in_names;
        in_sorted.sort_unstable();
        assert_eq!(in_sorted, vec!["sp1", "yf1"]);

        // Example 5: G3d has (S1,S3) annotated {f4} and (S2,S3)
        // annotated {sp3, yf3}: i.e. at site 2, in-node f4 has
        // subscriber S1=0, and sp3/yf3 have subscriber S2=1.
        let f3 = f.fragment(2);
        for (pos, &idx) in f3.in_nodes().iter().enumerate() {
            let name = w.node_names[f3.global_id(idx).index()];
            let subs = f3.in_node_subscribers(pos);
            match name {
                "f4" => assert_eq!(subs, &[0]),
                "sp3" | "yf3" => assert_eq!(subs, &[1]),
                other => panic!("unexpected in-node {other}"),
            }
        }
    }

    #[test]
    fn empty_site_allowed() {
        let mut b = GraphBuilder::new();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let f = Fragmentation::build(&g, &[0, 0], 3);
        assert_eq!(f.num_sites(), 3);
        assert_eq!(f.fragment(1).n_total(), 0);
        assert_eq!(f.fragment(2).n_total(), 0);
        assert_eq!(f.ef(), 0);
    }

    #[test]
    fn index_of_roundtrip() {
        let (_, f) = two_site_line();
        let f0 = f.fragment(0);
        for idx in 0..f0.n_total() as u32 {
            assert_eq!(f0.index_of(f0.global_id(idx)), Some(idx));
        }
        assert_eq!(f0.index_of(NodeId(3)), None);
    }

    #[test]
    fn fm_size_is_largest() {
        let (_, f) = two_site_line();
        // site 0: 3 nodes (2 local + 1 virtual) + 2 edges = 5
        // site 1: 2 nodes + 1 edge = 3
        assert_eq!(f.fm_size(), 5);
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn wrong_assignment_length_panics() {
        let (g, _) = two_site_line();
        let _ = Fragmentation::build(&g, &[0, 0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "site id out of range")]
    fn out_of_range_site_panics() {
        let (g, _) = two_site_line();
        let _ = Fragmentation::build(&g, &[0, 0, 1, 5], 2);
    }

    #[test]
    fn crossing_edges_per_fragment_in_example4() {
        let w = fig1();
        let f = Fragmentation::build(&w.graph, &w.assignment, 3);
        // F1's crossing edges: (f1,f4), (yf1,f2), (sp1,yf2), (sp1,f2).
        let f1 = f.fragment(0);
        let mut crossing: Vec<(String, String)> = Vec::new();
        for u in f1.local_indices() {
            for &t in f1.successors(u) {
                if f1.is_virtual(t) {
                    crossing.push((
                        w.node_names[f1.global_id(u).index()].to_owned(),
                        w.node_names[f1.global_id(t).index()].to_owned(),
                    ));
                }
            }
        }
        crossing.sort();
        assert_eq!(
            crossing,
            vec![
                ("f1".to_owned(), "f4".to_owned()),
                ("sp1".to_owned(), "f2".to_owned()),
                ("sp1".to_owned(), "yf2".to_owned()),
                ("yf1".to_owned(), "f2".to_owned()),
            ]
        );
    }
}
