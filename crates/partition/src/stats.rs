//! Summary statistics of a fragmentation — the quantities the paper's
//! bounds are stated in.

use crate::fragment::Fragmentation;
use dgs_graph::Graph;
use std::fmt;

/// The partition-dependent quantities of Table 1 and §3.2.
#[derive(Clone, Debug, PartialEq)]
pub struct FragmentationStats {
    /// `|F|`: number of sites.
    pub num_sites: usize,
    /// `|Vf|`: distinct virtual nodes.
    pub vf: usize,
    /// `|Ef|`: crossing edges.
    pub ef: usize,
    /// `|Vf| / |V|` (the paper reports the `Vf` sweep as this ratio).
    pub vf_ratio: f64,
    /// `|Ef| / |E|`.
    pub ef_ratio: f64,
    /// `|Fm|`: size (nodes + edges) of the largest fragment.
    pub fm_size: usize,
    /// `|Vm|`: node count (local + virtual) of the largest fragment.
    pub fm_nodes: usize,
    /// `|Em|`: edge count of the largest fragment.
    pub fm_edges: usize,
}

impl FragmentationStats {
    /// Computes the statistics of `frag` over `graph`.
    pub fn compute(graph: &Graph, frag: &Fragmentation) -> Self {
        let (fm_nodes, fm_edges) = frag
            .fragments()
            .iter()
            .map(|f| (f.n_total(), f.n_edges()))
            .max_by_key(|&(n, e)| n + e)
            .unwrap_or((0, 0));
        FragmentationStats {
            num_sites: frag.num_sites(),
            vf: frag.vf(),
            ef: frag.ef(),
            vf_ratio: frag.vf() as f64 / graph.node_count().max(1) as f64,
            ef_ratio: frag.ef() as f64 / graph.edge_count().max(1) as f64,
            fm_size: fm_nodes + fm_edges,
            fm_nodes,
            fm_edges,
        }
    }
}

impl fmt::Display for FragmentationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|F|={} |Vf|={} ({:.1}%) |Ef|={} ({:.1}%) |Fm|={} (|Vm|={}, |Em|={})",
            self.num_sites,
            self.vf,
            self.vf_ratio * 100.0,
            self.ef,
            self.ef_ratio * 100.0,
            self.fm_size,
            self.fm_nodes,
            self.fm_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::hash_partition;
    use dgs_graph::generate::random::uniform;

    #[test]
    fn stats_consistent_with_fragmentation() {
        let g = uniform(300, 1_200, 10, 5);
        let a = hash_partition(300, 6, 5);
        let f = Fragmentation::build(&g, &a, 6);
        let s = FragmentationStats::compute(&g, &f);
        assert_eq!(s.num_sites, 6);
        assert_eq!(s.vf, f.vf());
        assert_eq!(s.ef, f.ef());
        assert_eq!(s.fm_size, f.fm_size());
        assert!(s.vf_ratio > 0.0 && s.vf_ratio <= 1.0);
        assert!(s.ef_ratio > 0.0 && s.ef_ratio <= 1.0);
        assert_eq!(s.fm_size, s.fm_nodes + s.fm_edges);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let g = uniform(50, 200, 5, 1);
        let a = hash_partition(50, 2, 1);
        let f = Fragmentation::build(&g, &a, 2);
        let s = FragmentationStats::compute(&g, &f);
        let text = s.to_string();
        assert!(text.contains("|F|=2"));
        assert!(text.contains("|Vf|="));
        assert!(text.contains("|Fm|="));
    }

    #[test]
    fn single_site_has_no_crossings() {
        let g = uniform(40, 160, 5, 2);
        let f = Fragmentation::build(&g, &vec![0; 40], 1);
        let s = FragmentationStats::compute(&g, &f);
        assert_eq!(s.vf, 0);
        assert_eq!(s.ef, 0);
        assert_eq!(s.fm_size, g.size());
    }
}
