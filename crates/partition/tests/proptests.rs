//! Property-based tests of the fragmentation machinery.

use dgs_graph::generate::{random, tree};
use dgs_graph::NodeId;
use dgs_partition::{
    bfs_partition, hash_partition, refine_toward_ratio, tree_partition, Fragmentation,
    RefineObjective,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fi.O / Fi.I duality (§2.2): the union of all virtual-node sets
    /// equals the union of all in-node sets, and both equal the set of
    /// crossing-edge targets.
    #[test]
    fn virtual_in_node_duality(
        n in 10usize..120,
        em in 1usize..5,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);

        let mut virtuals: Vec<u32> = frag
            .fragments()
            .iter()
            .flat_map(|f| f.virtual_indices().map(|i| f.global_id(i).0).collect::<Vec<_>>())
            .collect();
        virtuals.sort_unstable();
        virtuals.dedup();

        let mut in_nodes: Vec<u32> = frag
            .fragments()
            .iter()
            .flat_map(|f| f.in_nodes().iter().map(|&i| f.global_id(i).0).collect::<Vec<_>>())
            .collect();
        in_nodes.sort_unstable();
        in_nodes.dedup();

        prop_assert_eq!(&virtuals, &in_nodes);
        prop_assert_eq!(virtuals.len(), frag.vf());
    }

    /// Every fragment edge set Ei covers exactly the edges whose
    /// source is local, and subscribers point at real referencing
    /// sites.
    #[test]
    fn fragment_edges_and_subscribers(
        n in 10usize..100,
        em in 1usize..5,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);
        let total_frag_edges: usize = frag.fragments().iter().map(|f| f.n_edges()).sum();
        prop_assert_eq!(total_frag_edges, g.edge_count());

        for f in frag.fragments() {
            for (pos, &idx) in f.in_nodes().iter().enumerate() {
                let gid = f.global_id(idx);
                for &s in f.in_node_subscribers(pos) {
                    prop_assert_ne!(s, f.site());
                    // Subscriber really references gid as a virtual node.
                    let fs = frag.fragment(s);
                    let vidx = fs.index_of(gid).expect("subscriber holds the node");
                    prop_assert!(fs.is_virtual(vidx));
                }
            }
        }
    }

    /// hash/bfs partitions are balanced within a node of the even
    /// share (hash) or cover all sites (bfs).
    #[test]
    fn partitions_are_balanced(
        n in 20usize..200,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = hash_partition(n, k, seed);
        let mut sizes = vec![0usize; k];
        for &s in &a {
            sizes[s] += 1;
        }
        let lo = n / k;
        let hi = n.div_ceil(k);
        prop_assert!(sizes.iter().all(|&c| (lo..=hi).contains(&c)), "{:?}", sizes);

        let g = random::uniform(n, 3 * n, 4, seed);
        let b = bfs_partition(&g, k, seed);
        for s in 0..k {
            prop_assert!(b.contains(&s));
        }
    }

    /// Tree partitions always yield connected fragments (≤1 in-node).
    #[test]
    fn tree_partition_connected(
        n in 5usize..300,
        k in 1usize..10,
        bias in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree_with_chain_bias(n, 4, bias, seed);
        let assign = tree_partition(&g, k);
        let frag = Fragmentation::build(&g, &assign, k);
        for f in frag.fragments() {
            prop_assert!(f.in_nodes().len() <= 1);
        }
        // Every node assigned to a valid site.
        prop_assert!(assign.iter().all(|&s| s < k));
    }

    /// Refinement never corrupts the assignment (still a partition,
    /// achieved ratio is consistent with a rebuild).
    #[test]
    fn refinement_consistency(
        n in 30usize..150,
        k in 2usize..5,
        target in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, 4 * n, 5, seed);
        let start = hash_partition(n, k, seed);
        let (refined, achieved) = refine_toward_ratio(
            &g, &start, k, RefineObjective::VfRatio, target, 0.02, 0.5, 20_000, seed,
        );
        prop_assert_eq!(refined.len(), n);
        prop_assert!(refined.iter().all(|&s| s < k));
        let frag = Fragmentation::build(&g, &refined, k);
        let got = frag.vf() as f64 / n as f64;
        prop_assert!((got - achieved).abs() < 1e-9);
    }

    /// Owner lookup agrees with fragment membership.
    #[test]
    fn owner_agrees_with_membership(
        n in 10usize..80,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, 2 * n, 3, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);
        for v in 0..n as u32 {
            let owner = frag.owner(NodeId(v));
            let f = frag.fragment(owner);
            let idx = f.index_of(NodeId(v)).expect("owner holds the node");
            prop_assert!(!f.is_virtual(idx));
        }
    }
}
