//! Property-based tests of the fragmentation machinery.

use dgs_graph::generate::{random, tree};
use dgs_graph::NodeId;
use dgs_partition::{
    bfs_partition, hash_partition, refine_toward_ratio, tree_partition, Fragmentation,
    RefineObjective,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fi.O / Fi.I duality (§2.2): the union of all virtual-node sets
    /// equals the union of all in-node sets, and both equal the set of
    /// crossing-edge targets.
    #[test]
    fn virtual_in_node_duality(
        n in 10usize..120,
        em in 1usize..5,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);

        let mut virtuals: Vec<u32> = frag
            .fragments()
            .iter()
            .flat_map(|f| f.virtual_indices().map(|i| f.global_id(i).0).collect::<Vec<_>>())
            .collect();
        virtuals.sort_unstable();
        virtuals.dedup();

        let mut in_nodes: Vec<u32> = frag
            .fragments()
            .iter()
            .flat_map(|f| f.in_nodes().iter().map(|&i| f.global_id(i).0).collect::<Vec<_>>())
            .collect();
        in_nodes.sort_unstable();
        in_nodes.dedup();

        prop_assert_eq!(&virtuals, &in_nodes);
        prop_assert_eq!(virtuals.len(), frag.vf());
    }

    /// Every fragment edge set Ei covers exactly the edges whose
    /// source is local, and subscribers point at real referencing
    /// sites.
    #[test]
    fn fragment_edges_and_subscribers(
        n in 10usize..100,
        em in 1usize..5,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, n * em, 4, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);
        let total_frag_edges: usize = frag.fragments().iter().map(|f| f.n_edges()).sum();
        prop_assert_eq!(total_frag_edges, g.edge_count());

        for f in frag.fragments() {
            for (pos, &idx) in f.in_nodes().iter().enumerate() {
                let gid = f.global_id(idx);
                for &s in f.in_node_subscribers(pos) {
                    prop_assert_ne!(s, f.site());
                    // Subscriber really references gid as a virtual node.
                    let fs = frag.fragment(s);
                    let vidx = fs.index_of(gid).expect("subscriber holds the node");
                    prop_assert!(fs.is_virtual(vidx));
                }
            }
        }
    }

    /// hash/bfs partitions are balanced within a node of the even
    /// share (hash) or cover all sites (bfs).
    #[test]
    fn partitions_are_balanced(
        n in 20usize..200,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = hash_partition(n, k, seed);
        let mut sizes = vec![0usize; k];
        for &s in &a {
            sizes[s] += 1;
        }
        let lo = n / k;
        let hi = n.div_ceil(k);
        prop_assert!(sizes.iter().all(|&c| (lo..=hi).contains(&c)), "{:?}", sizes);

        let g = random::uniform(n, 3 * n, 4, seed);
        let b = bfs_partition(&g, k, seed);
        for s in 0..k {
            prop_assert!(b.contains(&s));
        }
    }

    /// Tree partitions always yield connected fragments (≤1 in-node).
    #[test]
    fn tree_partition_connected(
        n in 5usize..300,
        k in 1usize..10,
        bias in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = tree::random_tree_with_chain_bias(n, 4, bias, seed);
        let assign = tree_partition(&g, k);
        let frag = Fragmentation::build(&g, &assign, k);
        for f in frag.fragments() {
            prop_assert!(f.in_nodes().len() <= 1);
        }
        // Every node assigned to a valid site.
        prop_assert!(assign.iter().all(|&s| s < k));
    }

    /// Refinement never corrupts the assignment (still a partition,
    /// achieved ratio is consistent with a rebuild).
    #[test]
    fn refinement_consistency(
        n in 30usize..150,
        k in 2usize..5,
        target in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, 4 * n, 5, seed);
        let start = hash_partition(n, k, seed);
        let (refined, achieved) = refine_toward_ratio(
            &g, &start, k, RefineObjective::VfRatio, target, 0.02, 0.5, 20_000, seed,
        );
        prop_assert_eq!(refined.len(), n);
        prop_assert!(refined.iter().all(|&s| s < k));
        let frag = Fragmentation::build(&g, &refined, k);
        let got = frag.vf() as f64 / n as f64;
        prop_assert!((got - achieved).abs() < 1e-9);
    }

    /// Owner lookup agrees with fragment membership.
    #[test]
    fn owner_agrees_with_membership(
        n in 10usize..80,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random::uniform(n, 2 * n, 3, seed);
        let assign = hash_partition(n, k, seed);
        let frag = Fragmentation::build(&g, &assign, k);
        for v in 0..n as u32 {
            let owner = frag.owner(NodeId(v));
            let f = frag.fragment(owner);
            let idx = f.index_of(NodeId(v)).expect("owner holds the node");
            prop_assert!(!f.is_virtual(idx));
        }
    }

    /// Incremental maintenance equals a rebuild: applying a random op
    /// stream through `apply_delta` yields the same fragmentation
    /// (edges, in-nodes, subscribers, live virtual nodes, |Vf|/|Ef|)
    /// as `Fragmentation::build` on the mutated graph — modulo retired
    /// virtual slots, which are inert by construction.
    #[test]
    fn apply_delta_equals_rebuild(
        n in 8usize..60,
        em in 1usize..5,
        k in 2usize..5,
        nops in 1usize..25,
        seed in any::<u64>(),
    ) {
        use dgs_graph::GraphBuilder;
        use dgs_partition::EdgeOp;

        let g = random::uniform(n, n * em, 4, seed);
        let assign = hash_partition(n, k, seed);
        let mut frag = Fragmentation::build(&g, &assign, k);

        // Deterministic op stream: alternate deletions of existing
        // edges and insertions of absent ones.
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let mut present: std::collections::HashSet<(NodeId, NodeId)> =
            edges.iter().copied().collect();
        let mut ops = Vec::new();
        let mut s = seed;
        for i in 0..nops {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if i % 2 == 0 && !edges.is_empty() {
                let at = (s >> 33) as usize % edges.len();
                let (u, v) = edges.swap_remove(at);
                present.remove(&(u, v));
                ops.push(EdgeOp::Delete(u, v));
            } else {
                let u = NodeId(((s >> 20) % n as u64) as u32);
                let v = NodeId(((s >> 40) % n as u64) as u32);
                if present.insert((u, v)) {
                    edges.push((u, v));
                    ops.push(EdgeOp::Insert(u, v));
                }
            }
        }
        frag.apply_delta(&ops);

        // Rebuild the mutated graph from the surviving edge set.
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        let mut sorted: Vec<_> = present.iter().copied().collect();
        sorted.sort_unstable();
        for (u, v) in sorted {
            b.add_edge(u, v);
        }
        let g2 = b.build();
        let rebuilt = Fragmentation::build(&g2, &assign, k);

        prop_assert_eq!(frag.ef(), rebuilt.ef());
        prop_assert_eq!(frag.vf(), rebuilt.vf());
        for site in 0..k {
            let fd = frag.fragment(site);
            let fr = rebuilt.fragment(site);
            prop_assert_eq!(fd.n_local(), fr.n_local());
            prop_assert_eq!(fd.n_edges(), fr.n_edges());
            prop_assert_eq!(fd.live_virtuals(), fr.n_virtual());

            // Edge sets over global ids.
            let edge_set = |f: &dgs_partition::Fragment| {
                let mut es: Vec<(u32, u32)> = Vec::new();
                for u in f.local_indices() {
                    for &t in f.successors(u) {
                        es.push((f.global_id(u).0, f.global_id(t).0));
                    }
                }
                es.sort_unstable();
                es
            };
            prop_assert_eq!(edge_set(fd), edge_set(fr));

            // Live virtual nodes with their owners.
            let virtuals = |f: &dgs_partition::Fragment| {
                let mut vs: Vec<(u32, usize)> = f
                    .virtual_indices()
                    .filter(|&i| f.is_live_virtual(i))
                    .map(|i| (f.global_id(i).0, f.virtual_owner(i)))
                    .collect();
                vs.sort_unstable();
                vs
            };
            prop_assert_eq!(virtuals(fd), virtuals(fr));

            // In-nodes with subscriber sets.
            let in_nodes = |f: &dgs_partition::Fragment| {
                let mut ins: Vec<(u32, Vec<usize>)> = f
                    .in_nodes()
                    .iter()
                    .enumerate()
                    .map(|(pos, &i)| (f.global_id(i).0, f.in_node_subscribers(pos).to_vec()))
                    .collect();
                ins.sort_unstable();
                ins
            };
            prop_assert_eq!(in_nodes(fd), in_nodes(fr));
        }
    }
}
