//! Framing and primitive codecs shared by every socket protocol in
//! the workspace: the serving layer (`dgs-serve`) and the
//! cross-process [`crate::SocketExecutor`] site frames.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! [u32 LE payload length] [u8 frame type] [payload bytes]
//! ```
//!
//! The length covers the payload only (not itself, not the type
//! byte) and is bounded by [`MAX_FRAME`] — a corrupt length is
//! refused *before* any allocation. Payloads are built from a handful
//! of primitives: fixed-width little-endian integers, LEB128 varints,
//! length-prefixed byte strings and UTF-8 strings. [`Reader`] is a
//! bounds-checked cursor over a received payload whose every accessor
//! returns a typed error on truncation — decoding never panics.
//!
//! This module used to live in `dgs-serve`; it moved down to `dgs-net`
//! so the executor layer can reuse the exact codecs (the serving crate
//! re-exports it with its own error type).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard upper bound on a frame payload (64 MiB). Large graphs ship in
/// one bootstrap/`LOAD_GRAPH` frame, so this is sized for tens of
/// millions of varint-packed edges while still refusing nonsense
/// lengths cheaply.
pub const MAX_FRAME: u32 = 64 << 20;

/// Why a frame could not be read or a payload could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket failure (includes the peer hanging up
    /// mid-frame).
    Io(io::Error),
    /// The peer's bytes violate the framing: truncation, a payload
    /// that does not decode, or trailing garbage.
    Corrupt {
        /// What was wrong.
        message: String,
    },
    /// A frame length over [`MAX_FRAME`], refused before allocation.
    TooLarge {
        /// The claimed payload length.
        len: u64,
        /// The limit it exceeded.
        max: u64,
    },
}

impl FrameError {
    /// A corruption error with the given description.
    pub fn corrupt(message: impl Into<String>) -> Self {
        FrameError::Corrupt {
            message: message.into(),
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Corrupt { message } => write!(f, "corrupt frame: {message}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame. A payload over [`MAX_FRAME`] is refused before
/// any byte hits the socket — silently sending it would make the
/// receiver kill the connection (and a > 4 GiB payload would wrap
/// the `u32` length and desync the stream).
pub fn write_frame<W: Write>(w: &mut W, ty: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(&[ty])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF **before** the first
/// length byte (the peer closed between frames). EOF anywhere else is
/// a truncation error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::corrupt("truncated frame length")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len: u64::from(len),
            max: u64::from(MAX_FRAME),
        });
    }
    let mut ty = [0u8; 1];
    r.read_exact(&mut ty)
        .map_err(|_| FrameError::corrupt("truncated frame type"))?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| FrameError::corrupt("truncated frame payload"))?;
    Ok(Some((ty[0], payload)))
}

/// An incremental frame decoder: bytes go in as they arrive off a
/// nonblocking socket (or between blocking-read timeouts), complete
/// frames come out. Partial frames — a length prefix without its
/// payload, half a payload — stay buffered across calls, so a read
/// that stops mid-frame can resume exactly where it left off instead
/// of desyncing the stream. This is the framing primitive behind both
/// the readiness-loop server (partial reads are routine there) and
/// the resumable blocking reader in `dgs-serve`.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames (a nonzero value
    /// after EOF means the peer died mid-frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drops the consumed prefix once it dominates the buffer, so the
    /// allocation stays proportional to the unparsed tail.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes
    /// are needed. A length over [`MAX_FRAME`] is refused before any
    /// allocation, exactly like [`read_frame`].
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge {
                len: u64::from(len),
                max: u64::from(MAX_FRAME),
            });
        }
        let total = 4 + 1 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let ty = avail[4];
        let payload = avail[5..total].to_vec();
        self.pos += total;
        self.compact();
        Ok(Some((ty, payload)))
    }
}

// ---- payload building -------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a fixed u16, little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends an `f64` as its IEEE-754 bits, little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a varint length followed by the raw bytes.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Appends a varint length followed by UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

// ---- payload reading --------------------------------------------------

/// A bounds-checked cursor over one received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::corrupt(format!(
                "truncated payload: wanted {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    /// Fixed u16, little-endian.
    pub fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// IEEE-754 `f64`, little-endian bits.
    pub fn f64(&mut self, what: &str) -> Result<f64, FrameError> {
        let b = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    /// LEB128 varint.
    pub fn varint(&mut self, what: &str) -> Result<u64, FrameError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(FrameError::corrupt(format!("varint overflow in {what}")));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(FrameError::corrupt(format!("varint too long in {what}")));
            }
        }
    }

    /// A varint that must fit a `usize` count bounded by what the
    /// payload could possibly hold (one byte per element minimum) —
    /// the guard that keeps corrupt counts from driving allocations.
    pub fn count(&mut self, what: &str) -> Result<usize, FrameError> {
        let v = self.varint(what)?;
        if v > self.remaining() as u64 {
            return Err(FrameError::corrupt(format!(
                "{what} of {v} exceeds the {} bytes left in the frame",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], FrameError> {
        let len = self.count(what)?;
        self.take(len, what)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str_(&mut self, what: &str) -> Result<String, FrameError> {
        let b = self.bytes(what)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| FrameError::corrupt(format!("{what} is not UTF-8")))
    }

    /// Asserts the payload was fully consumed (trailing bytes are a
    /// protocol violation, they would hide framing bugs).
    pub fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::corrupt(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"hello").unwrap();
        let mut r = &buf[..];
        let (ty, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(ty, 0x42);
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_refused_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0x01);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }));
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, 0x07, b"abcdef").unwrap();
        for len in 1..full.len() {
            let err = read_frame(&mut &full[..len]).unwrap_err();
            assert!(
                matches!(err, FrameError::Corrupt { .. }),
                "prefix {len}: {err:?}"
            );
        }
    }

    #[test]
    fn frame_buffer_resumes_across_arbitrary_splits() {
        let mut full = Vec::new();
        write_frame(&mut full, 0x11, b"first").unwrap();
        write_frame(&mut full, 0x22, b"second payload").unwrap();
        // Feed the byte stream one byte at a time: every partial state
        // must hold the frame until it completes.
        for chunk in [1usize, 2, 3, 7] {
            let mut fb = FrameBuffer::new();
            let mut frames = Vec::new();
            for piece in full.chunks(chunk) {
                fb.extend(piece);
                while let Some(f) = fb.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(
                frames,
                vec![
                    (0x11, b"first".to_vec()),
                    (0x22, b"second payload".to_vec())
                ],
                "chunk size {chunk}"
            );
            assert_eq!(fb.buffered(), 0);
        }
    }

    #[test]
    fn frame_buffer_refuses_oversized_lengths() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn frame_buffer_reports_mid_frame_bytes() {
        let mut full = Vec::new();
        write_frame(&mut full, 0x07, b"abcdef").unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&full[..6]); // length + type + one payload byte
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.buffered(), 6);
    }

    #[test]
    fn varint_roundtrip_and_overflow() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v);
            r.finish("v").unwrap();
        }
        // 10 continuation bytes with a large final byte overflow u64.
        let bad = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(Reader::new(&bad).varint("v").is_err());
    }

    #[test]
    fn reader_guards_counts_and_trailing_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1_000_000); // count far beyond the payload
        assert!(Reader::new(&buf).count("items").is_err());

        let mut buf = Vec::new();
        put_str(&mut buf, "ok");
        buf.push(0xaa);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str_("s").unwrap(), "ok");
        assert!(r.finish("s").is_err());
    }
}
