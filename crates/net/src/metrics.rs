//! Run metrics: the PT and DS quantities of the paper's figures, plus
//! the [`LatencyHistogram`] shared by the serving layer's traffic
//! generator and benches.

use std::time::Duration;

/// Aggregated metrics of a protocol run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Bytes of **data** messages — the paper's DS metric.
    pub data_bytes: u64,
    /// Number of data messages.
    pub data_messages: u64,
    /// Bytes of **control** messages (barriers, query broadcast).
    pub control_bytes: u64,
    /// Number of control messages.
    pub control_messages: u64,
    /// Bytes of **result** messages (final match collection).
    pub result_bytes: u64,
    /// Number of result messages.
    pub result_messages: u64,
    /// Total charged operations across all endpoints.
    pub total_ops: u64,
    /// Charged operations per worker site.
    pub site_ops: Vec<u64>,
    /// Messages **sent** by each worker site, all classes (the
    /// coordinator's sends are the difference to the class totals).
    /// The conformance suite uses these to bound per-site traffic
    /// across executors.
    pub site_msgs: Vec<u64>,
    /// Charged operations at the coordinator.
    pub coordinator_ops: u64,
    /// Virtual response time in ns (0 under the threaded executor).
    pub virtual_time_ns: u64,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Number of quiescence rounds (phase barriers) the run used.
    pub quiescence_rounds: u64,
    /// Data messages delivered twice by fault injection
    /// ([`crate::fault::FaultPlan`]); the duplicates are *also*
    /// counted in `data_messages`/`data_bytes`, since retransmission
    /// is real traffic.
    pub duplicated_messages: u64,
    /// Bytes of duplicated data messages.
    pub duplicated_bytes: u64,
    /// Queries answered from a session-level result cache instead of a
    /// protocol run. A cache hit ships **nothing**: all message and
    /// byte counters stay zero for the hit, and only this counter
    /// records that the query was served.
    pub cache_hits: u64,
}

/// Per-site accounting of one graph-update (delta) application: how
/// much of the batch each site absorbed and what it had to ship to
/// keep the maintained relation consistent. Aggregated by
/// `SimEngine::apply_delta` across the maintained entries of a
/// session; complements the run-level [`RunMetrics`] the same way
/// `site_ops` complements `total_ops`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteDeltaMetrics {
    /// The site.
    pub site: usize,
    /// Edge ops this site applied (it owns the source node).
    pub ops_applied: u64,
    /// Falsified in-node variables shipped to subscriber sites.
    pub falsifications_shipped: u64,
    /// Local match pairs revoked by incremental maintenance.
    pub pairs_revoked: u64,
    /// Local match pairs resurrected by insertion-side maintenance.
    pub pairs_resurrected: u64,
}

impl SiteDeltaMetrics {
    /// Field-wise accumulation (same-site entries from several
    /// maintenance runs).
    pub fn merge(&mut self, other: &SiteDeltaMetrics) {
        debug_assert_eq!(self.site, other.site, "merging different sites");
        self.ops_applied += other.ops_applied;
        self.falsifications_shipped += other.falsifications_shipped;
        self.pairs_revoked += other.pairs_revoked;
        self.pairs_resurrected += other.pairs_resurrected;
    }
}

impl RunMetrics {
    pub(crate) fn new(num_sites: usize) -> Self {
        RunMetrics {
            site_ops: vec![0; num_sites],
            site_msgs: vec![0; num_sites],
            ..Default::default()
        }
    }

    /// Records one sent message, attributing it to the sending
    /// endpoint's per-site counter.
    pub(crate) fn record_send_from(
        &mut self,
        from: crate::message::Endpoint,
        class: crate::message::MsgClass,
        bytes: usize,
    ) {
        if let crate::message::Endpoint::Site(i) = from {
            if let Some(slot) = self.site_msgs.get_mut(i as usize) {
                *slot += 1;
            }
        }
        self.record_send(class, bytes);
    }

    pub(crate) fn record_send(&mut self, class: crate::message::MsgClass, bytes: usize) {
        match class {
            crate::message::MsgClass::Data => {
                self.data_bytes += bytes as u64;
                self.data_messages += 1;
            }
            crate::message::MsgClass::Control => {
                self.control_bytes += bytes as u64;
                self.control_messages += 1;
            }
            crate::message::MsgClass::Result => {
                self.result_bytes += bytes as u64;
                self.result_messages += 1;
            }
        }
    }

    pub(crate) fn record_ops(&mut self, ep: crate::message::Endpoint, ops: u64) {
        self.total_ops += ops;
        match ep {
            crate::message::Endpoint::Coordinator => self.coordinator_ops += ops,
            crate::message::Endpoint::Site(i) => self.site_ops[i as usize] += ops,
        }
    }

    /// Virtual response time in milliseconds — the unit of the paper's
    /// PT plots (they report seconds; our scaled-down workloads land in
    /// ms).
    pub fn virtual_time_ms(&self) -> f64 {
        self.virtual_time_ns as f64 / 1.0e6
    }

    /// Data shipment in KB, the unit of the paper's DS plots.
    pub fn data_kb(&self) -> f64 {
        self.data_bytes as f64 / 1024.0
    }

    /// The largest per-site op count (a proxy for the parallel
    /// computation bottleneck).
    pub fn max_site_ops(&self) -> u64 {
        self.site_ops.iter().copied().max().unwrap_or(0)
    }

    /// Field-wise accumulation of another run's metrics (used to
    /// aggregate multi-query batches). Lives here so a new field
    /// cannot be forgotten by an out-of-crate copy of this list.
    pub fn merge(&mut self, other: &RunMetrics) {
        let RunMetrics {
            data_bytes,
            data_messages,
            control_bytes,
            control_messages,
            result_bytes,
            result_messages,
            total_ops,
            site_ops,
            site_msgs,
            coordinator_ops,
            virtual_time_ns,
            wall_time,
            quiescence_rounds,
            duplicated_messages,
            duplicated_bytes,
            cache_hits,
        } = other;
        self.data_bytes += data_bytes;
        self.data_messages += data_messages;
        self.control_bytes += control_bytes;
        self.control_messages += control_messages;
        self.result_bytes += result_bytes;
        self.result_messages += result_messages;
        self.total_ops += total_ops;
        self.coordinator_ops += coordinator_ops;
        self.virtual_time_ns += virtual_time_ns;
        self.wall_time += *wall_time;
        self.quiescence_rounds += quiescence_rounds;
        self.duplicated_messages += duplicated_messages;
        self.duplicated_bytes += duplicated_bytes;
        self.cache_hits += cache_hits;
        if self.site_ops.len() < site_ops.len() {
            self.site_ops.resize(site_ops.len(), 0);
        }
        for (t, s) in self.site_ops.iter_mut().zip(site_ops) {
            *t += s;
        }
        if self.site_msgs.len() < site_msgs.len() {
            self.site_msgs.resize(site_msgs.len(), 0);
        }
        for (t, s) in self.site_msgs.iter_mut().zip(site_msgs) {
            *t += s;
        }
    }
}

/// Linear sub-buckets per power of two. 32 sub-buckets bound the
/// relative quantile error by `1/32 ≈ 3%`.
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// One group of sub-buckets per possible bit length of a `u64` value
/// (bit length 0 is the dedicated zero bucket).
const BUCKETS: usize = (65 << SUB_BUCKET_BITS) as usize;

/// A log-bucketed latency histogram: `O(1)` recording, constant
/// memory, mergeable across threads, with quantile accessors whose
/// relative error is bounded by the sub-bucket resolution (≈ 3%).
///
/// Values are dimensionless `u64`s; the serving layer records
/// nanoseconds ([`LatencyHistogram::record_duration`]). Per-client
/// histograms are merged with [`LatencyHistogram::merge`] — merging is
/// exact (bucket counts add), so a fleet of closed-loop clients can
/// each record locally and the driver reports fleet-wide p50/p95/p99
/// without a shared lock on the hot path.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `v`: the bit length selects the octave, the
    /// next [`SUB_BUCKET_BITS`] bits select the linear sub-bucket.
    fn bucket_of(v: u64) -> usize {
        let bits = 64 - v.leading_zeros(); // 0 for v == 0
        if bits <= SUB_BUCKET_BITS {
            // Small values are exact: one bucket per value.
            return v as usize;
        }
        let shift = bits - 1 - SUB_BUCKET_BITS;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        ((bits as usize) << SUB_BUCKET_BITS) | sub
    }

    /// A representative value for bucket `i` (the largest value the
    /// bucket holds), inverse of [`Self::bucket_of`].
    fn bucket_high(i: usize) -> u64 {
        let bits = (i >> SUB_BUCKET_BITS) as u32;
        if bits == 0 {
            return (i & (SUB_BUCKETS - 1)) as u64;
        }
        let sub = (i & (SUB_BUCKETS - 1)) as u64;
        let shift = bits - 1 - SUB_BUCKET_BITS;
        // Top bit set, sub-bucket bits filled in, low bits saturated.
        (1u64 << (bits - 1)) | (sub << shift) | ((1u64 << shift) - 1)
    }

    /// Records one observation. Counts and the running sum saturate
    /// instead of overflowing: a histogram that has absorbed `u64::MAX`
    /// observations keeps reporting (slightly pessimistic) quantiles
    /// rather than panicking or wrapping.
    pub fn record(&mut self, v: u64) {
        let b = &mut self.counts[Self::bucket_of(v)];
        *b = b.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v as u128);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a wall-clock duration in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds every observation of `other` into `self` (exact; bucket
    /// counts add). Merging an empty histogram — in either direction —
    /// is the identity, and counts saturate instead of overflowing.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (t, s) in self.counts.iter_mut().zip(other.counts.iter()) {
            *t = t.saturating_add(*s);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: an upper bound of the
    /// bucket holding the `⌈q·count⌉`-th smallest observation, clamped
    /// to the observed maximum. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// Format version of [`ServingSnapshot::to_json`]. Bump when the
/// schema changes; parsers refuse other versions so a stale committed
/// baseline is treated as "no baseline" instead of misread.
pub const SERVING_SNAPSHOT_VERSION: u32 = 1;

/// A serving-benchmark snapshot: the committed-artifact form of one
/// load run (throughput + latency quantiles), written as a small flat
/// JSON file (`BENCH_serving.json`) and compared across runs to catch
/// serving-path regressions in CI.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingSnapshot {
    /// Schema version ([`SERVING_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Completed requests per second.
    pub throughput: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed.
    pub errors: u64,
}

impl ServingSnapshot {
    /// A snapshot of one run: quantiles from `histogram` (recorded in
    /// nanoseconds), throughput from `completed / elapsed`.
    pub fn of_run(
        histogram: &LatencyHistogram,
        completed: u64,
        errors: u64,
        elapsed_secs: f64,
    ) -> ServingSnapshot {
        let us = |ns: u64| ns as f64 / 1_000.0;
        ServingSnapshot {
            version: SERVING_SNAPSHOT_VERSION,
            throughput: if elapsed_secs > 0.0 {
                completed as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_us: us(histogram.p50()),
            p95_us: us(histogram.p95()),
            p99_us: us(histogram.p99()),
            completed,
            errors,
        }
    }

    /// The committed-artifact form (flat JSON, stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"throughput_rps\": {:.2},\n  \"p50_us\": {:.1},\n  \
             \"p95_us\": {:.1},\n  \"p99_us\": {:.1},\n  \"completed\": {},\n  \"errors\": {}\n}}\n",
            self.version,
            self.throughput,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.completed,
            self.errors
        )
    }

    /// Parses [`ServingSnapshot::to_json`] output (any flat JSON with
    /// the same keys, whitespace-insensitive). `None` on a missing
    /// key or a version this build does not speak.
    pub fn parse_json(s: &str) -> Option<ServingSnapshot> {
        let num = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = s.find(&pat)? + pat.len();
            let rest = s[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let version = num("version")? as u32;
        if version != SERVING_SNAPSHOT_VERSION {
            return None;
        }
        Some(ServingSnapshot {
            version,
            throughput: num("throughput_rps")?,
            p50_us: num("p50_us")?,
            p95_us: num("p95_us")?,
            p99_us: num("p99_us")?,
            completed: num("completed")? as u64,
            errors: num("errors")? as u64,
        })
    }

    /// Human-readable regression verdicts of `self` (the new run)
    /// against `baseline`, empty when the run is acceptable.
    ///
    /// `tolerance` is the relative slack (CI gates on `0.20` = 20%);
    /// latency additionally gets `latency_floor_us` of absolute slack
    /// so sub-millisecond micro-noise on shared runners cannot trip
    /// the gate — the regressions this guards against (a reintroduced
    /// write barrier on the serve path) cost milliseconds, not tens of
    /// microseconds.
    pub fn regressions(
        &self,
        baseline: &ServingSnapshot,
        tolerance: f64,
        latency_floor_us: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if self.errors > 0 {
            out.push(format!(
                "{} requests errored (baseline gate: 0)",
                self.errors
            ));
        }
        let floor = baseline.throughput / (1.0 + tolerance);
        if self.throughput < floor {
            out.push(format!(
                "throughput {:.1} req/s fell below {:.1} (baseline {:.1} / {:.0}% tolerance)",
                self.throughput,
                floor,
                baseline.throughput,
                tolerance * 100.0
            ));
        }
        for (name, new, base) in [
            ("p50", self.p50_us, baseline.p50_us),
            ("p95", self.p95_us, baseline.p95_us),
            ("p99", self.p99_us, baseline.p99_us),
        ] {
            let ceiling = (base * (1.0 + tolerance)).max(base + latency_floor_us);
            if new > ceiling {
                out.push(format!(
                    "{name} {new:.1}us exceeds {ceiling:.1}us (baseline {base:.1}us + {:.0}% \
                     tolerance, {latency_floor_us:.0}us floor)",
                    tolerance * 100.0
                ));
            }
        }
        out
    }
}

/// Format version of [`ConnSweepSnapshot::to_json`]; same bump/refuse
/// discipline as [`SERVING_SNAPSHOT_VERSION`].
pub const CONN_SWEEP_SNAPSHOT_VERSION: u32 = 1;

/// One step of a connection-count sweep: the server held
/// `connections` concurrent connections while a bounded subset drove
/// open-loop traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnSweepStep {
    /// Concurrent connections held open during this step.
    pub connections: u64,
    /// Completed requests per second over the step.
    pub throughput: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests (or connects) that failed.
    pub errors: u64,
}

/// A connection-count sweep snapshot (`BENCH_connsweep.json`): the
/// committed-artifact form of one `dgsload --sweep` run, one
/// [`ConnSweepStep`] per connection count. The CI gate compares steps
/// by connection count against a committed conservative envelope —
/// the property it guards is that p99 stays *flat* as idle
/// connections pile up (connections must cost buffers, not threads).
#[derive(Clone, Debug, PartialEq)]
pub struct ConnSweepSnapshot {
    /// Schema version ([`CONN_SWEEP_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Steps in ascending connection-count order.
    pub steps: Vec<ConnSweepStep>,
}

impl ConnSweepSnapshot {
    /// The committed-artifact form (one step object per line, stable
    /// key order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"version\": {},\n  \"steps\": [\n", self.version);
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"connections\": {}, \"throughput_rps\": {:.2}, \"p99_us\": {:.1}, \
                 \"completed\": {}, \"errors\": {}}}{}\n",
                s.connections,
                s.throughput,
                s.p99_us,
                s.completed,
                s.errors,
                if i + 1 < self.steps.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses [`ConnSweepSnapshot::to_json`] output. `None` on a
    /// missing key, an empty sweep, or a version this build does not
    /// speak.
    pub fn parse_json(s: &str) -> Option<ConnSweepSnapshot> {
        let field = |obj: &str, key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = obj.find(&pat)? + pat.len();
            let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let head = &s[..s.find('[')?];
        let version = field(head, "version")? as u32;
        if version != CONN_SWEEP_SNAPSHOT_VERSION {
            return None;
        }
        let body = &s[s.find('[')? + 1..s.rfind(']')?];
        let mut steps = Vec::new();
        for obj in body.split('{').skip(1) {
            let obj = &obj[..obj.find('}')?];
            steps.push(ConnSweepStep {
                connections: field(obj, "connections")? as u64,
                throughput: field(obj, "throughput_rps")?,
                p99_us: field(obj, "p99_us")?,
                completed: field(obj, "completed")? as u64,
                errors: field(obj, "errors")? as u64,
            });
        }
        if steps.is_empty() {
            return None;
        }
        Some(ConnSweepSnapshot { version, steps })
    }

    /// Regression verdicts of `self` (the new sweep) against
    /// `baseline`, matched by connection count; empty when acceptable.
    /// Any errored step fails outright; per-step throughput and p99
    /// get the same `tolerance` + `latency_floor_us` slack as
    /// [`ServingSnapshot::regressions`]. Steps without a baseline
    /// counterpart (a widened sweep) are gated on errors only.
    pub fn regressions(
        &self,
        baseline: &ConnSweepSnapshot,
        tolerance: f64,
        latency_floor_us: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for step in &self.steps {
            if step.errors > 0 {
                out.push(format!(
                    "{} errors at {} connections (sweep gate: 0)",
                    step.errors, step.connections
                ));
            }
            let Some(base) = baseline
                .steps
                .iter()
                .find(|b| b.connections == step.connections)
            else {
                continue;
            };
            let floor = base.throughput / (1.0 + tolerance);
            if step.throughput < floor {
                out.push(format!(
                    "throughput {:.1} req/s at {} connections fell below {:.1} (baseline {:.1})",
                    step.throughput, step.connections, floor, base.throughput
                ));
            }
            let ceiling = (base.p99_us * (1.0 + tolerance)).max(base.p99_us + latency_floor_us);
            if step.p99_us > ceiling {
                out.push(format!(
                    "p99 {:.1}us at {} connections exceeds {:.1}us (baseline {:.1}us)",
                    step.p99_us, step.connections, ceiling, base.p99_us
                ));
            }
        }
        out
    }
}

/// Format version of [`SubscribeSnapshot::to_json`]; same bump/refuse
/// discipline as [`SERVING_SNAPSHOT_VERSION`].
pub const SUBSCRIBE_SNAPSHOT_VERSION: u32 = 1;

/// A live-subscription benchmark snapshot (`BENCH_subscribe.json`):
/// the committed-artifact form of one `dgsload --subscribe` run. A
/// writer storms one session with delta batches while subscribers on
/// every session hold open `MATCH_DIFF` streams; each diff's latency
/// is the span from the writer handing the batch to the wire to the
/// subscriber decoding the push that carries that batch's generation.
#[derive(Clone, Debug, PartialEq)]
pub struct SubscribeSnapshot {
    /// Schema version ([`SUBSCRIBE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Diff pushes delivered across every subscriber.
    pub diffs: u64,
    /// Delta batches the writer applied.
    pub batches: u64,
    /// Median diff delivery latency, microseconds.
    pub diff_p50_us: f64,
    /// 95th-percentile diff delivery latency, microseconds.
    pub diff_p95_us: f64,
    /// 99th-percentile diff delivery latency, microseconds.
    pub diff_p99_us: f64,
    /// Anything that went wrong: failed connects or subscribes,
    /// unexpected terminal events, cross-session leakage, or a
    /// reconstructed match set diverging from the final re-query.
    pub errors: u64,
}

impl SubscribeSnapshot {
    /// A snapshot of one run: diff-latency quantiles from `histogram`
    /// (recorded in nanoseconds).
    pub fn of_run(
        histogram: &LatencyHistogram,
        diffs: u64,
        batches: u64,
        errors: u64,
    ) -> SubscribeSnapshot {
        let us = |ns: u64| ns as f64 / 1_000.0;
        SubscribeSnapshot {
            version: SUBSCRIBE_SNAPSHOT_VERSION,
            diffs,
            batches,
            diff_p50_us: us(histogram.p50()),
            diff_p95_us: us(histogram.p95()),
            diff_p99_us: us(histogram.p99()),
            errors,
        }
    }

    /// The committed-artifact form (flat JSON, stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"diffs\": {},\n  \"batches\": {},\n  \
             \"diff_p50_us\": {:.1},\n  \"diff_p95_us\": {:.1},\n  \"diff_p99_us\": {:.1},\n  \
             \"errors\": {}\n}}\n",
            self.version,
            self.diffs,
            self.batches,
            self.diff_p50_us,
            self.diff_p95_us,
            self.diff_p99_us,
            self.errors
        )
    }

    /// Parses [`SubscribeSnapshot::to_json`] output (any flat JSON
    /// with the same keys, whitespace-insensitive). `None` on a
    /// missing key or a version this build does not speak.
    pub fn parse_json(s: &str) -> Option<SubscribeSnapshot> {
        let num = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = s.find(&pat)? + pat.len();
            let rest = s[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let version = num("version")? as u32;
        if version != SUBSCRIBE_SNAPSHOT_VERSION {
            return None;
        }
        Some(SubscribeSnapshot {
            version,
            diffs: num("diffs")? as u64,
            batches: num("batches")? as u64,
            diff_p50_us: num("diff_p50_us")?,
            diff_p95_us: num("diff_p95_us")?,
            diff_p99_us: num("diff_p99_us")?,
            errors: num("errors")?.round() as u64,
        })
    }

    /// Regression verdicts of `self` (the new run) against `baseline`,
    /// empty when acceptable. Errors fail outright; a delivered-diff
    /// count below the baseline floor means pushes were lost or
    /// coalesced away; diff-latency quantiles get the usual
    /// `tolerance` + `latency_floor_us` slack.
    pub fn regressions(
        &self,
        baseline: &SubscribeSnapshot,
        tolerance: f64,
        latency_floor_us: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if self.errors > 0 {
            out.push(format!(
                "{} subscription errors (baseline gate: 0)",
                self.errors
            ));
        }
        let floor = (baseline.diffs as f64 / (1.0 + tolerance)).floor() as u64;
        if self.diffs < floor {
            out.push(format!(
                "delivered {} diffs, below {} (baseline {} / {:.0}% tolerance)",
                self.diffs,
                floor,
                baseline.diffs,
                tolerance * 100.0
            ));
        }
        for (name, new, base) in [
            ("diff p50", self.diff_p50_us, baseline.diff_p50_us),
            ("diff p95", self.diff_p95_us, baseline.diff_p95_us),
            ("diff p99", self.diff_p99_us, baseline.diff_p99_us),
        ] {
            let ceiling = (base * (1.0 + tolerance)).max(base + latency_floor_us);
            if new > ceiling {
                out.push(format!(
                    "{name} {new:.1}us exceeds {ceiling:.1}us (baseline {base:.1}us + {:.0}% \
                     tolerance, {latency_floor_us:.0}us floor)",
                    tolerance * 100.0
                ));
            }
        }
        out
    }
}

/// Format version of [`ExecutorsSnapshot::to_json`]; same bump/refuse
/// discipline as [`SERVING_SNAPSHOT_VERSION`].
pub const EXECUTORS_SNAPSHOT_VERSION: u32 = 1;

/// An executors-area trajectory snapshot (`dgs-bench --area
/// executors`): the committed-artifact form of the single-query hot
/// path — bitset kernels vs the old HashSet-of-pairs representation,
/// and intra-query fragment parallelism vs the sequential site loop.
/// Written as `BENCH_executors.json` and compared in CI, so the
/// bitset win is recorded and *stays* won.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutorsSnapshot {
    /// Schema version ([`EXECUTORS_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Centralized single-query time of the HashSet-of-pairs
    /// reference kernel, milliseconds.
    pub hashset_kernel_ms: f64,
    /// Centralized single-query time of the bitset kernel over the
    /// same workload, milliseconds.
    pub bitset_kernel_ms: f64,
    /// `hashset_kernel_ms / bitset_kernel_ms` — the representation
    /// win; gated to stay ≥ 2× (the PR's acceptance target).
    pub kernel_speedup: f64,
    /// Distributed single-query engine time, sequential site loop
    /// (1 intra-query worker), milliseconds.
    pub seq_query_ms: f64,
    /// Distributed single-query engine time with the intra-query pool,
    /// milliseconds.
    pub par_query_ms: f64,
    /// `seq_query_ms / par_query_ms` — the intra-query parallelism
    /// win (≈ 1.0 on single-core runners, higher with cores).
    pub intra_speedup: f64,
    /// Median per-query latency over the measured stream
    /// (parallel path), microseconds.
    pub query_p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub query_p99_us: f64,
    /// Queries timed into the latency histogram.
    pub queries: u64,
}

impl ExecutorsSnapshot {
    /// A snapshot of one trajectory run; per-query latencies come from
    /// `histogram` (recorded in nanoseconds).
    pub fn of_run(
        hashset_kernel_ms: f64,
        bitset_kernel_ms: f64,
        seq_query_ms: f64,
        par_query_ms: f64,
        histogram: &LatencyHistogram,
    ) -> ExecutorsSnapshot {
        let us = |ns: u64| ns as f64 / 1_000.0;
        let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
        ExecutorsSnapshot {
            version: EXECUTORS_SNAPSHOT_VERSION,
            hashset_kernel_ms,
            bitset_kernel_ms,
            kernel_speedup: ratio(hashset_kernel_ms, bitset_kernel_ms),
            seq_query_ms,
            par_query_ms,
            intra_speedup: ratio(seq_query_ms, par_query_ms),
            query_p50_us: us(histogram.p50()),
            query_p99_us: us(histogram.p99()),
            queries: histogram.count(),
        }
    }

    /// The committed-artifact form (flat JSON, stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"hashset_kernel_ms\": {:.3},\n  \
             \"bitset_kernel_ms\": {:.3},\n  \"kernel_speedup\": {:.2},\n  \
             \"seq_query_ms\": {:.3},\n  \"par_query_ms\": {:.3},\n  \
             \"intra_speedup\": {:.2},\n  \"query_p50_us\": {:.1},\n  \
             \"query_p99_us\": {:.1},\n  \"queries\": {}\n}}\n",
            self.version,
            self.hashset_kernel_ms,
            self.bitset_kernel_ms,
            self.kernel_speedup,
            self.seq_query_ms,
            self.par_query_ms,
            self.intra_speedup,
            self.query_p50_us,
            self.query_p99_us,
            self.queries
        )
    }

    /// Parses [`ExecutorsSnapshot::to_json`] output (any flat JSON
    /// with the same keys, whitespace-insensitive). `None` on a
    /// missing key or a version this build does not speak.
    pub fn parse_json(s: &str) -> Option<ExecutorsSnapshot> {
        let num = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = s.find(&pat)? + pat.len();
            let rest = s[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let version = num("version")? as u32;
        if version != EXECUTORS_SNAPSHOT_VERSION {
            return None;
        }
        Some(ExecutorsSnapshot {
            version,
            hashset_kernel_ms: num("hashset_kernel_ms")?,
            bitset_kernel_ms: num("bitset_kernel_ms")?,
            kernel_speedup: num("kernel_speedup")?,
            seq_query_ms: num("seq_query_ms")?,
            par_query_ms: num("par_query_ms")?,
            intra_speedup: num("intra_speedup")?,
            query_p50_us: num("query_p50_us")?,
            query_p99_us: num("query_p99_us")?,
            queries: num("queries")? as u64,
        })
    }

    /// Regression verdicts of `self` (the new run) against `baseline`,
    /// empty when acceptable.
    ///
    /// Speedups are *ratios measured within one run*, so they are
    /// robust to runner speed: the kernel speedup is gated against
    /// both the committed baseline (with `tolerance` slack) and the
    /// hard 2× representation-win target; the intra-query speedup
    /// only against the baseline (it is legitimately ≈ 1.0 on
    /// single-core runners, and the committed envelope says so).
    /// Absolute per-query latency gets `tolerance` + `latency_floor_us`
    /// slack like every other snapshot.
    pub fn regressions(
        &self,
        baseline: &ExecutorsSnapshot,
        tolerance: f64,
        latency_floor_us: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if self.kernel_speedup < 2.0 {
            out.push(format!(
                "bitset kernel speedup {:.2}x fell below the 2x representation-win target",
                self.kernel_speedup
            ));
        }
        for (name, new, base) in [
            (
                "kernel speedup",
                self.kernel_speedup,
                baseline.kernel_speedup,
            ),
            (
                "intra-query speedup",
                self.intra_speedup,
                baseline.intra_speedup,
            ),
        ] {
            let floor = base / (1.0 + tolerance);
            if new < floor {
                out.push(format!(
                    "{name} {new:.2}x fell below {floor:.2}x (baseline {base:.2}x / {:.0}% \
                     tolerance)",
                    tolerance * 100.0
                ));
            }
        }
        for (name, new, base) in [
            ("query p50", self.query_p50_us, baseline.query_p50_us),
            ("query p99", self.query_p99_us, baseline.query_p99_us),
        ] {
            let ceiling = (base * (1.0 + tolerance)).max(base + latency_floor_us);
            if new > ceiling {
                out.push(format!(
                    "{name} {new:.1}us exceeds {ceiling:.1}us (baseline {base:.1}us + {:.0}% \
                     tolerance, {latency_floor_us:.0}us floor)",
                    tolerance * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Endpoint, MsgClass};

    #[test]
    fn record_send_classifies() {
        let mut m = RunMetrics::new(2);
        m.record_send(MsgClass::Data, 100);
        m.record_send(MsgClass::Data, 50);
        m.record_send(MsgClass::Control, 8);
        m.record_send(MsgClass::Result, 300);
        assert_eq!(m.data_bytes, 150);
        assert_eq!(m.data_messages, 2);
        assert_eq!(m.control_bytes, 8);
        assert_eq!(m.result_bytes, 300);
        assert!((m.data_kb() - 150.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn record_ops_attributes_per_endpoint() {
        let mut m = RunMetrics::new(3);
        m.record_ops(Endpoint::Site(1), 10);
        m.record_ops(Endpoint::Site(1), 5);
        m.record_ops(Endpoint::Coordinator, 7);
        assert_eq!(m.site_ops, vec![0, 15, 0]);
        assert_eq!(m.coordinator_ops, 7);
        assert_eq!(m.total_ops, 22);
        assert_eq!(m.max_site_ops(), 15);
    }

    #[test]
    fn virtual_time_ms_conversion() {
        let m = RunMetrics {
            virtual_time_ns: 2_500_000,
            ..RunMetrics::new(0)
        };
        assert!((m.virtual_time_ms() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..=31u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 15); // ceil(0.5*32) = 16th smallest = 15
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        // Uniform 1..=100_000: every quantile estimate must be within
        // the sub-bucket resolution (1/32) of the true value.
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, truth) in &[(0.50, 50_000u64), (0.95, 95_000), (0.99, 99_000)] {
            let est = h.quantile(q);
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(
                err <= 1.0 / 32.0 + 1e-9,
                "q={q}: estimate {est} vs true {truth} (relative error {err:.4})"
            );
            // A quantile estimate is the bucket's upper bound, so it
            // never understates below one resolution step.
            assert!(est as f64 >= truth as f64 * (1.0 - 1.0 / 32.0));
        }
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() / 50_000.5 < 1e-9);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = (i * 2_654_435_761) % 1_000_000 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn histogram_quantiles_clamp_to_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p99(), 1_000_003);
        h.record_duration(Duration::from_nanos(17));
        assert_eq!(h.min(), 17);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn serving_snapshot_json_roundtrips() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(i * 10_000); // 10µs .. 1ms
        }
        let snap = ServingSnapshot::of_run(&h, 100, 0, 2.0);
        assert!((snap.throughput - 50.0).abs() < 1e-9);
        let parsed = ServingSnapshot::parse_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed.version, SERVING_SNAPSHOT_VERSION);
        assert_eq!(parsed.completed, 100);
        assert_eq!(parsed.errors, 0);
        // The JSON rounds to 1 decimal of a microsecond.
        assert!((parsed.p99_us - snap.p99_us).abs() < 0.1);
        assert!((parsed.throughput - snap.throughput).abs() < 0.01);
    }

    #[test]
    fn serving_snapshot_rejects_other_versions_and_garbage() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        let json = ServingSnapshot::of_run(&h, 1, 0, 1.0)
            .to_json()
            .replace("\"version\": 1", "\"version\": 999");
        assert_eq!(ServingSnapshot::parse_json(&json), None);
        assert_eq!(ServingSnapshot::parse_json("not json at all"), None);
        assert_eq!(ServingSnapshot::parse_json("{\"version\": 1}"), None);
    }

    #[test]
    fn serving_snapshot_regression_gate() {
        let base = ServingSnapshot {
            version: SERVING_SNAPSHOT_VERSION,
            throughput: 1000.0,
            p50_us: 200.0,
            p95_us: 400.0,
            p99_us: 800.0,
            completed: 500,
            errors: 0,
        };
        // Within tolerance: quantiles float inside the absolute floor.
        let ok = ServingSnapshot {
            throughput: 900.0,
            p99_us: 1100.0,
            ..base.clone()
        };
        assert!(ok.regressions(&base, 0.20, 500.0).is_empty());
        // A real regression (milliseconds, as a reintroduced write
        // barrier would cost) trips both gates.
        let bad = ServingSnapshot {
            throughput: 400.0,
            p99_us: 9000.0,
            errors: 3,
            ..base.clone()
        };
        let verdicts = bad.regressions(&base, 0.20, 500.0);
        assert_eq!(verdicts.len(), 3, "{verdicts:?}");
        assert!(verdicts[0].contains("errored"));
        assert!(verdicts[1].contains("throughput"));
        assert!(verdicts[2].contains("p99"));
    }

    fn sweep(steps: &[(u64, f64, f64, u64)]) -> ConnSweepSnapshot {
        ConnSweepSnapshot {
            version: CONN_SWEEP_SNAPSHOT_VERSION,
            steps: steps
                .iter()
                .map(|&(connections, throughput, p99_us, errors)| ConnSweepStep {
                    connections,
                    throughput,
                    p99_us,
                    completed: 100,
                    errors,
                })
                .collect(),
        }
    }

    #[test]
    fn conn_sweep_snapshot_json_roundtrip() {
        let snap = sweep(&[(1, 5000.0, 300.0, 0), (100, 4800.5, 450.25, 0)]);
        let parsed = ConnSweepSnapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.steps.len(), 2);
        assert_eq!(parsed.steps[1].connections, 100);
        assert!((parsed.steps[1].throughput - 4800.5).abs() < 0.01);
        assert!((parsed.steps[1].p99_us - 450.2).abs() < 0.1);
    }

    #[test]
    fn conn_sweep_snapshot_rejects_other_versions_and_garbage() {
        let json = sweep(&[(1, 1.0, 1.0, 0)])
            .to_json()
            .replace("\"version\": 1", "\"version\": 7");
        assert_eq!(ConnSweepSnapshot::parse_json(&json), None);
        assert_eq!(ConnSweepSnapshot::parse_json("nope"), None);
        assert_eq!(
            ConnSweepSnapshot::parse_json("{\"version\": 1, \"steps\": []}"),
            None
        );
    }

    #[test]
    fn subscribe_snapshot_json_roundtrips_and_rejects_other_versions() {
        let mut h = LatencyHistogram::new();
        for i in 1..=50u64 {
            h.record(i * 20_000); // 20µs .. 1ms
        }
        let snap = SubscribeSnapshot::of_run(&h, 200, 64, 0);
        let parsed = SubscribeSnapshot::parse_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed.version, SUBSCRIBE_SNAPSHOT_VERSION);
        assert_eq!(parsed.diffs, 200);
        assert_eq!(parsed.batches, 64);
        assert_eq!(parsed.errors, 0);
        assert!((parsed.diff_p99_us - snap.diff_p99_us).abs() < 0.1);
        let stale = snap.to_json().replace("\"version\": 1", "\"version\": 12");
        assert_eq!(SubscribeSnapshot::parse_json(&stale), None);
        assert_eq!(SubscribeSnapshot::parse_json("junk"), None);
    }

    #[test]
    fn subscribe_regression_gate() {
        let base = SubscribeSnapshot {
            version: SUBSCRIBE_SNAPSHOT_VERSION,
            diffs: 100,
            batches: 50,
            diff_p50_us: 300.0,
            diff_p95_us: 900.0,
            diff_p99_us: 1500.0,
            errors: 0,
        };
        // Micro-noise inside the floor and a slightly lower diff count
        // pass.
        let ok = SubscribeSnapshot {
            diffs: 90,
            diff_p99_us: 1900.0,
            ..base.clone()
        };
        assert!(ok.regressions(&base, 0.25, 500.0).is_empty());
        // Errors, lost pushes, and millisecond-scale latency blowups
        // each trip their own verdict.
        let bad = SubscribeSnapshot {
            diffs: 40,
            diff_p99_us: 50_000.0,
            errors: 2,
            ..base.clone()
        };
        let verdicts = bad.regressions(&base, 0.25, 500.0);
        assert_eq!(verdicts.len(), 3, "{verdicts:?}");
        assert!(verdicts[0].contains("errors"));
        assert!(verdicts[1].contains("diffs"));
        assert!(verdicts[2].contains("p99"));
    }

    #[test]
    fn conn_sweep_regression_gate_matches_steps_by_connection_count() {
        let base = sweep(&[(1, 1000.0, 500.0, 0), (1000, 900.0, 600.0, 0)]);
        // Flat-and-fast run passes; a step the baseline lacks is only
        // gated on errors.
        let ok = sweep(&[
            (1, 1000.0, 500.0, 0),
            (1000, 950.0, 650.0, 0),
            (5000, 100.0, 9e6, 0),
        ]);
        assert!(ok.regressions(&base, 0.20, 500.0).is_empty());
        // Errors anywhere, or a blown-up p99 at a matched step, fail.
        let bad = sweep(&[(1, 1000.0, 500.0, 0), (1000, 200.0, 50_000.0, 3)]);
        let verdicts = bad.regressions(&base, 0.20, 500.0);
        assert_eq!(verdicts.len(), 3, "{verdicts:?}");
        assert!(verdicts[0].contains("errors at 1000 connections"));
        assert!(verdicts[1].contains("throughput"));
        assert!(verdicts[2].contains("p99"));
    }

    /// Satellite hardening: the edge cases the bench driver leans on.
    #[test]
    fn histogram_empty_merge_is_identity() {
        let mut a = LatencyHistogram::new();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
        assert_eq!(a.p99(), 0);
        assert_eq!(a.mean(), 0.0);

        // Empty into non-empty and non-empty into empty agree.
        let mut src = LatencyHistogram::new();
        src.record(1_234);
        let mut ne = src.clone();
        ne.merge(&LatencyHistogram::new());
        let mut e = LatencyHistogram::new();
        e.merge(&src);
        for h in [&ne, &e] {
            assert_eq!(h.count(), 1);
            assert_eq!(h.min(), 1_234);
            assert_eq!(h.max(), 1_234);
        }
    }

    #[test]
    fn histogram_single_sample_quantiles_are_the_sample() {
        let mut h = LatencyHistogram::new();
        h.record(777);
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p95(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.quantile(0.0), 777);
        assert_eq!(h.quantile(1.0), 777);
        assert!(!h.mean().is_nan());
        assert_eq!(h.mean(), 777.0);
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        // Extreme values record without panicking...
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        // ...and a count already at the u64 ceiling saturates on both
        // the record and merge paths instead of wrapping.
        let mut big = LatencyHistogram::new();
        big.record(5);
        big.count = u64::MAX;
        big.counts[LatencyHistogram::bucket_of(5)] = u64::MAX;
        big.sum = u128::MAX;
        big.record(5);
        assert_eq!(big.count(), u64::MAX);
        let mut other = LatencyHistogram::new();
        other.record(5);
        big.merge(&other);
        assert_eq!(big.count(), u64::MAX);
        // Quantiles stay finite, non-NaN numbers.
        assert!(big.p99() >= 5);
        assert!(!big.mean().is_nan());
    }

    fn exec_snapshot() -> ExecutorsSnapshot {
        let mut h = LatencyHistogram::new();
        for i in 0..100u64 {
            h.record(1_000_000 + i * 10_000);
        }
        ExecutorsSnapshot::of_run(80.0, 8.0, 40.0, 16.0, &h)
    }

    #[test]
    fn executors_snapshot_roundtrip() {
        let snap = exec_snapshot();
        assert!((snap.kernel_speedup - 10.0).abs() < 1e-9);
        assert!((snap.intra_speedup - 2.5).abs() < 1e-9);
        assert_eq!(snap.queries, 100);
        let parsed = ExecutorsSnapshot::parse_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed.version, EXECUTORS_SNAPSHOT_VERSION);
        assert!((parsed.kernel_speedup - 10.0).abs() < 0.01);
        assert_eq!(parsed.queries, 100);
    }

    #[test]
    fn executors_snapshot_rejects_other_versions() {
        let other = exec_snapshot()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(ExecutorsSnapshot::parse_json(&other).is_none());
    }

    #[test]
    fn executors_regression_gate() {
        let base = exec_snapshot();
        // Identical run passes.
        assert!(exec_snapshot().regressions(&base, 0.20, 200.0).is_empty());
        // The hard 2x kernel target fires independently of the baseline.
        let slow_kernel = ExecutorsSnapshot {
            kernel_speedup: 1.5,
            ..exec_snapshot()
        };
        let verdicts = slow_kernel.regressions(&base, 0.20, 200.0);
        assert_eq!(verdicts.len(), 2, "{verdicts:?}");
        assert!(verdicts[0].contains("2x representation-win target"));
        assert!(verdicts[1].contains("kernel speedup"));
        // A collapsed intra-query speedup and a blown-up latency fail.
        let bad = ExecutorsSnapshot {
            intra_speedup: 1.0,
            query_p99_us: 1e6,
            ..exec_snapshot()
        };
        let verdicts = bad.regressions(&base, 0.20, 200.0);
        assert_eq!(verdicts.len(), 2, "{verdicts:?}");
        assert!(verdicts[0].contains("intra-query speedup"));
        assert!(verdicts[1].contains("query p99"));
    }
}
