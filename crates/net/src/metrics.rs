//! Run metrics: the PT and DS quantities of the paper's figures.

use std::time::Duration;

/// Aggregated metrics of a protocol run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Bytes of **data** messages — the paper's DS metric.
    pub data_bytes: u64,
    /// Number of data messages.
    pub data_messages: u64,
    /// Bytes of **control** messages (barriers, query broadcast).
    pub control_bytes: u64,
    /// Number of control messages.
    pub control_messages: u64,
    /// Bytes of **result** messages (final match collection).
    pub result_bytes: u64,
    /// Number of result messages.
    pub result_messages: u64,
    /// Total charged operations across all endpoints.
    pub total_ops: u64,
    /// Charged operations per worker site.
    pub site_ops: Vec<u64>,
    /// Charged operations at the coordinator.
    pub coordinator_ops: u64,
    /// Virtual response time in ns (0 under the threaded executor).
    pub virtual_time_ns: u64,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Number of quiescence rounds (phase barriers) the run used.
    pub quiescence_rounds: u64,
    /// Data messages delivered twice by fault injection
    /// ([`crate::fault::FaultPlan`]); the duplicates are *also*
    /// counted in `data_messages`/`data_bytes`, since retransmission
    /// is real traffic.
    pub duplicated_messages: u64,
    /// Bytes of duplicated data messages.
    pub duplicated_bytes: u64,
    /// Queries answered from a session-level result cache instead of a
    /// protocol run. A cache hit ships **nothing**: all message and
    /// byte counters stay zero for the hit, and only this counter
    /// records that the query was served.
    pub cache_hits: u64,
}

/// Per-site accounting of one graph-update (delta) application: how
/// much of the batch each site absorbed and what it had to ship to
/// keep the maintained relation consistent. Aggregated by
/// `SimEngine::apply_delta` across the maintained entries of a
/// session; complements the run-level [`RunMetrics`] the same way
/// `site_ops` complements `total_ops`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteDeltaMetrics {
    /// The site.
    pub site: usize,
    /// Edge ops this site applied (it owns the source node).
    pub ops_applied: u64,
    /// Falsified in-node variables shipped to subscriber sites.
    pub falsifications_shipped: u64,
    /// Local match pairs revoked by incremental maintenance.
    pub pairs_revoked: u64,
}

impl SiteDeltaMetrics {
    /// Field-wise accumulation (same-site entries from several
    /// maintenance runs).
    pub fn merge(&mut self, other: &SiteDeltaMetrics) {
        debug_assert_eq!(self.site, other.site, "merging different sites");
        self.ops_applied += other.ops_applied;
        self.falsifications_shipped += other.falsifications_shipped;
        self.pairs_revoked += other.pairs_revoked;
    }
}

impl RunMetrics {
    pub(crate) fn new(num_sites: usize) -> Self {
        RunMetrics {
            site_ops: vec![0; num_sites],
            ..Default::default()
        }
    }

    pub(crate) fn record_send(&mut self, class: crate::message::MsgClass, bytes: usize) {
        match class {
            crate::message::MsgClass::Data => {
                self.data_bytes += bytes as u64;
                self.data_messages += 1;
            }
            crate::message::MsgClass::Control => {
                self.control_bytes += bytes as u64;
                self.control_messages += 1;
            }
            crate::message::MsgClass::Result => {
                self.result_bytes += bytes as u64;
                self.result_messages += 1;
            }
        }
    }

    pub(crate) fn record_ops(&mut self, ep: crate::message::Endpoint, ops: u64) {
        self.total_ops += ops;
        match ep {
            crate::message::Endpoint::Coordinator => self.coordinator_ops += ops,
            crate::message::Endpoint::Site(i) => self.site_ops[i as usize] += ops,
        }
    }

    /// Virtual response time in milliseconds — the unit of the paper's
    /// PT plots (they report seconds; our scaled-down workloads land in
    /// ms).
    pub fn virtual_time_ms(&self) -> f64 {
        self.virtual_time_ns as f64 / 1.0e6
    }

    /// Data shipment in KB, the unit of the paper's DS plots.
    pub fn data_kb(&self) -> f64 {
        self.data_bytes as f64 / 1024.0
    }

    /// The largest per-site op count (a proxy for the parallel
    /// computation bottleneck).
    pub fn max_site_ops(&self) -> u64 {
        self.site_ops.iter().copied().max().unwrap_or(0)
    }

    /// Field-wise accumulation of another run's metrics (used to
    /// aggregate multi-query batches). Lives here so a new field
    /// cannot be forgotten by an out-of-crate copy of this list.
    pub fn merge(&mut self, other: &RunMetrics) {
        let RunMetrics {
            data_bytes,
            data_messages,
            control_bytes,
            control_messages,
            result_bytes,
            result_messages,
            total_ops,
            site_ops,
            coordinator_ops,
            virtual_time_ns,
            wall_time,
            quiescence_rounds,
            duplicated_messages,
            duplicated_bytes,
            cache_hits,
        } = other;
        self.data_bytes += data_bytes;
        self.data_messages += data_messages;
        self.control_bytes += control_bytes;
        self.control_messages += control_messages;
        self.result_bytes += result_bytes;
        self.result_messages += result_messages;
        self.total_ops += total_ops;
        self.coordinator_ops += coordinator_ops;
        self.virtual_time_ns += virtual_time_ns;
        self.wall_time += *wall_time;
        self.quiescence_rounds += quiescence_rounds;
        self.duplicated_messages += duplicated_messages;
        self.duplicated_bytes += duplicated_bytes;
        self.cache_hits += cache_hits;
        if self.site_ops.len() < site_ops.len() {
            self.site_ops.resize(site_ops.len(), 0);
        }
        for (t, s) in self.site_ops.iter_mut().zip(site_ops) {
            *t += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Endpoint, MsgClass};

    #[test]
    fn record_send_classifies() {
        let mut m = RunMetrics::new(2);
        m.record_send(MsgClass::Data, 100);
        m.record_send(MsgClass::Data, 50);
        m.record_send(MsgClass::Control, 8);
        m.record_send(MsgClass::Result, 300);
        assert_eq!(m.data_bytes, 150);
        assert_eq!(m.data_messages, 2);
        assert_eq!(m.control_bytes, 8);
        assert_eq!(m.result_bytes, 300);
        assert!((m.data_kb() - 150.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn record_ops_attributes_per_endpoint() {
        let mut m = RunMetrics::new(3);
        m.record_ops(Endpoint::Site(1), 10);
        m.record_ops(Endpoint::Site(1), 5);
        m.record_ops(Endpoint::Coordinator, 7);
        assert_eq!(m.site_ops, vec![0, 15, 0]);
        assert_eq!(m.coordinator_ops, 7);
        assert_eq!(m.total_ops, 22);
        assert_eq!(m.max_site_ops(), 15);
    }

    #[test]
    fn virtual_time_ms_conversion() {
        let m = RunMetrics {
            virtual_time_ns: 2_500_000,
            ..RunMetrics::new(0)
        };
        assert!((m.virtual_time_ms() - 2.5).abs() < 1e-12);
    }
}
