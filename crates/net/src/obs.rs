//! Server observability: a registry of named counters, gauges and
//! latency histograms with Prometheus-style text exposition, a
//! leveled rate-limited structured logger, and the
//! instrumentation-overhead snapshot (`BENCH_obs.json`).
//!
//! The registry is the one source of truth for everything `dgsd`
//! reports about itself: the `METRICS` wire frame and the
//! `--metrics-addr` text endpoint both render a
//! [`MetricsSnapshot`] taken from the same [`MetricsRegistry`], so
//! the two expositions can never disagree about a counter.
//!
//! Handles are cheap to clone and cheap to hit: a [`Counter`] or
//! [`Gauge`] is one relaxed atomic op, a [`Histo`] is one short
//! mutex-protected O(1) bucket increment (reusing the log-bucketed
//! [`LatencyHistogram`]). A registry built with
//! [`MetricsRegistry::disabled`] hands out no-op handles — every
//! `inc`/`record` is a branch on a `None` — which is what makes the
//! measured on-vs-off overhead comparison honest.
//!
//! Metric names carry their labels inline in Prometheus form
//! (`dgsd_request_ns{frame="QUERY"}`): the registry does not parse
//! them, it only keys on the full spelling, so label handling stays
//! in the instrumentation site that knows the label values.

use crate::metrics::LatencyHistogram;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing counter handle. No-op when the
/// registry is disabled.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(v) = &self.0 {
            v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |v| v.load(Ordering::Relaxed))
    }
}

/// A settable gauge handle (current queue depth, live subscriptions).
/// `inc`/`dec` must be paired by the caller. No-op when disabled.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, n: u64) {
        if let Some(v) = &self.0 {
            v.store(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        if let Some(v) = &self.0 {
            v.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtracts 1 (saturating: an unmatched `dec` parks at 0 instead
    /// of wrapping to `u64::MAX` and poisoning the exposition).
    pub fn dec(&self) {
        if let Some(v) = &self.0 {
            let _ = v.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |v| v.load(Ordering::Relaxed))
    }
}

/// A latency-histogram handle: records dimensionless `u64`s (the
/// serving layer records nanoseconds). No-op when disabled.
#[derive(Clone, Default)]
pub struct Histo(Option<Arc<Mutex<LatencyHistogram>>>);

impl Histo {
    /// Records one value.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().record(v);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.lock().record_duration(d);
        }
    }
}

/// The metric tables, keyed by full labeled name. `BTreeMap` so every
/// snapshot and exposition comes out in one stable, sorted order.
#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LatencyHistogram>>>>,
}

/// A registry of named metrics. Clones share the tables; handles
/// outlive lookups (registration is get-or-create, so two sites
/// naming the same metric share one cell).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and
    /// [`MetricsRegistry::snapshot`] is empty. This is the "metrics
    /// off" half of the instrumentation-overhead measurement.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// Whether handles record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get-or-create the counter `name` (full labeled spelling, e.g.
    /// `dgsd_requests_total{frame="QUERY"}`).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histo {
        Histo(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.histograms
                    .lock()
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new()))),
            )
        }))
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(i) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = i
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = i
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = i
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| {
                let h = h.lock();
                HistogramSummary {
                    name: k.clone(),
                    count: h.count(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                }
            })
            .collect();
        MetricsSnapshot {
            version: METRICS_SNAPSHOT_VERSION,
            counters,
            gauges,
            histograms,
        }
    }
}

/// Schema version of [`MetricsSnapshot`] — carried in the `METRICS`
/// wire frame so a peer can refuse a snapshot layout it does not
/// speak.
pub const METRICS_SNAPSHOT_VERSION: u32 = 1;

/// Quantile summary of one registered histogram, values in the
/// histogram's own unit (the serving layer records nanoseconds).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Full labeled metric name.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`]: what the `METRICS`
/// wire frame carries and the text endpoint renders. All integer
/// valued — the exposition can never print a NaN.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Schema version ([`METRICS_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

/// Splits a labeled name into `(family, labels)`:
/// `a_total{x="y"}` → `("a_total", Some("x=\"y\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(at) => (&name[..at], Some(name[at + 1..].trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Joins a family, an optional suffix, and label fragments back into
/// one series spelling.
fn series(family: &str, suffix: &str, labels: &[&str]) -> String {
    let labels: Vec<&str> = labels.iter().copied().filter(|l| !l.is_empty()).collect();
    if labels.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{}}}", labels.join(","))
    }
}

impl MetricsSnapshot {
    /// Prometheus text exposition (version 0.0.4): `# TYPE` line per
    /// family, then one sample line per series. Histograms render as
    /// summaries — `<family>_count`, `<family>_min`/`_max`, and
    /// quantile-labeled `<family>{quantile="..."}` lines. All values
    /// are integers, so the output contains no NaN by construction.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, family: &str, kind: &str| {
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.to_owned();
            }
        };
        for (name, value) in &self.counters {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "gauge");
            out.push_str(&format!("{name} {value}\n"));
        }
        for h in &self.histograms {
            let (family, labels) = split_labels(&h.name);
            let labels = labels.unwrap_or("");
            type_line(&mut out, family, "summary");
            out.push_str(&format!(
                "{} {}\n",
                series(family, "_count", &[labels]),
                h.count
            ));
            out.push_str(&format!(
                "{} {}\n",
                series(family, "_min", &[labels]),
                h.min
            ));
            out.push_str(&format!(
                "{} {}\n",
                series(family, "_max", &[labels]),
                h.max
            ));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!(
                    "{} {v}\n",
                    series(family, "", &[labels, &format!("quantile=\"{q}\"")])
                ));
            }
        }
        out
    }

    /// The value of counter `name`, if present (tests and the
    /// consistency check between the two expositions).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

// ---- the structured logger --------------------------------------------

/// Log severities, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The daemon is broken or about to be.
    Error,
    /// Something went wrong but the daemon keeps serving.
    Warn,
    /// Lifecycle events (startup, shutdown, session churn).
    Info,
    /// Per-request chatter.
    Debug,
}

impl LogLevel {
    /// Parses a CLI spelling (`error`/`warn`/`info`/`debug`).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// Per-target rate-limit window state.
struct TargetWindow {
    window_start: Instant,
    emitted: u32,
    suppressed: u64,
}

/// How many lines one target may emit per window before the rest are
/// counted instead of printed.
const LOG_BURST: u32 = 5;
/// The rate-limit window.
const LOG_WINDOW: Duration = Duration::from_secs(1);

/// A leveled, per-target rate-limited structured logger writing
/// `key=value` lines to stderr. Rate limiting is per **target** (the
/// subsystem tag), so a flapping listener spamming `accept` failures
/// cannot flood stderr — after [`LOG_BURST`] lines in a window the
/// rest are counted and reported as `suppressed=N` when the window
/// rolls.
pub struct Logger {
    level: LogLevel,
    start: Instant,
    windows: Mutex<HashMap<&'static str, TargetWindow>>,
}

impl Logger {
    /// A logger emitting `level` and more severe.
    pub fn new(level: LogLevel) -> Logger {
        Logger {
            level,
            start: Instant::now(),
            windows: Mutex::new(HashMap::new()),
        }
    }

    /// The configured threshold.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Logs one line if `level` passes the threshold and the target's
    /// rate limit. Returns whether the line was printed (tests).
    pub fn log(&self, level: LogLevel, target: &'static str, msg: &str) -> bool {
        if level > self.level {
            return false;
        }
        let mut windows = self.windows.lock();
        let now = Instant::now();
        let w = windows.entry(target).or_insert(TargetWindow {
            window_start: now,
            emitted: 0,
            suppressed: 0,
        });
        if now.duration_since(w.window_start) >= LOG_WINDOW {
            if w.suppressed > 0 {
                eprintln!(
                    "t={:.3} level=warn target={target} msg=\"rate limited\" suppressed={}",
                    self.start.elapsed().as_secs_f64(),
                    w.suppressed
                );
            }
            w.window_start = now;
            w.emitted = 0;
            w.suppressed = 0;
        }
        if w.emitted >= LOG_BURST {
            w.suppressed += 1;
            return false;
        }
        w.emitted += 1;
        eprintln!(
            "t={:.3} level={} target={target} msg={msg:?}",
            self.start.elapsed().as_secs_f64(),
            level.name()
        );
        true
    }

    /// [`LogLevel::Error`] shorthand.
    pub fn error(&self, target: &'static str, msg: &str) -> bool {
        self.log(LogLevel::Error, target, msg)
    }

    /// [`LogLevel::Warn`] shorthand.
    pub fn warn(&self, target: &'static str, msg: &str) -> bool {
        self.log(LogLevel::Warn, target, msg)
    }

    /// [`LogLevel::Info`] shorthand.
    pub fn info(&self, target: &'static str, msg: &str) -> bool {
        self.log(LogLevel::Info, target, msg)
    }

    /// [`LogLevel::Debug`] shorthand.
    pub fn debug(&self, target: &'static str, msg: &str) -> bool {
        self.log(LogLevel::Debug, target, msg)
    }
}

// ---- the instrumentation-overhead snapshot ----------------------------

/// Format version of [`ObsSnapshot::to_json`].
pub const OBS_SNAPSHOT_VERSION: u32 = 1;

/// The instrumentation-overhead artifact (`BENCH_obs.json`): the
/// quiet-ping run with full instrumentation enabled against the same
/// run with metrics disabled, and the p50 overhead between them —
/// what the CI ≤10% gate enforces.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsSnapshot {
    /// Schema version ([`OBS_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Quiet-ping p50 with the metrics registry enabled, microseconds.
    pub p50_on_us: f64,
    /// Quiet-ping p50 with the registry disabled, microseconds.
    pub p50_off_us: f64,
    /// `(p50_on - p50_off) / p50_off`, percent (negative when the
    /// instrumented run happened to be faster).
    pub overhead_pct: f64,
    /// Throughput of the instrumented run, req/s.
    pub throughput_on: f64,
    /// Throughput of the uninstrumented run, req/s.
    pub throughput_off: f64,
}

impl ObsSnapshot {
    /// Builds the overhead snapshot from the two quiet-ping
    /// [`crate::metrics::ServingSnapshot`]s.
    pub fn of_runs(
        on: &crate::metrics::ServingSnapshot,
        off: &crate::metrics::ServingSnapshot,
    ) -> ObsSnapshot {
        let overhead_pct = if off.p50_us > 0.0 {
            (on.p50_us - off.p50_us) / off.p50_us * 100.0
        } else {
            0.0
        };
        ObsSnapshot {
            version: OBS_SNAPSHOT_VERSION,
            p50_on_us: on.p50_us,
            p50_off_us: off.p50_us,
            overhead_pct,
            throughput_on: on.throughput,
            throughput_off: off.throughput,
        }
    }

    /// The committed-artifact form (flat JSON, stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"version\": {},\n  \"p50_on_us\": {:.1},\n  \"p50_off_us\": {:.1},\n  \
             \"overhead_pct\": {:.2},\n  \"throughput_on_rps\": {:.2},\n  \
             \"throughput_off_rps\": {:.2}\n}}\n",
            self.version,
            self.p50_on_us,
            self.p50_off_us,
            self.overhead_pct,
            self.throughput_on,
            self.throughput_off
        )
    }

    /// Parses [`ObsSnapshot::to_json`] output. `None` on a missing key
    /// or a version this build does not speak.
    pub fn parse_json(s: &str) -> Option<ObsSnapshot> {
        let num = |key: &str| -> Option<f64> {
            let pat = format!("\"{key}\"");
            let at = s.find(&pat)? + pat.len();
            let rest = s[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let version = num("version")? as u32;
        if version != OBS_SNAPSHOT_VERSION {
            return None;
        }
        Some(ObsSnapshot {
            version,
            p50_on_us: num("p50_on_us")?,
            p50_off_us: num("p50_off_us")?,
            overhead_pct: num("overhead_pct")?,
            throughput_on: num("throughput_on_rps")?,
            throughput_off: num("throughput_off_rps")?,
        })
    }

    /// Gate verdicts, empty when the overhead is acceptable.
    ///
    /// Fails when the relative p50 overhead exceeds `max_pct` **and**
    /// the absolute p50 delta exceeds `floor_us` — the same
    /// absolute-floor idiom as
    /// [`crate::metrics::ServingSnapshot::regressions`], because 10%
    /// of a ~50µs quiet ping is within shared-runner jitter; the
    /// regressions this guards against (a lock or an allocation added
    /// to the per-request path) cost tens of microseconds.
    pub fn gate(&self, max_pct: f64, floor_us: f64) -> Vec<String> {
        let delta_us = self.p50_on_us - self.p50_off_us;
        if self.overhead_pct > max_pct && delta_us > floor_us {
            vec![format!(
                "instrumentation overhead {:.1}% (p50 {:.1}us on vs {:.1}us off, +{delta_us:.1}us) \
                 exceeds {max_pct:.0}% with the {floor_us:.0}us absolute floor",
                self.overhead_pct, self.p50_on_us, self.p50_off_us
            )]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ServingSnapshot;

    #[test]
    fn registry_round_trips_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dgsd_requests_total");
        c.inc();
        c.add(4);
        // A second lookup of the same name shares the cell.
        reg.counter("dgsd_requests_total").inc();
        let g = reg.gauge("dgsd_queue_depth");
        g.set(3);
        g.inc();
        g.dec();
        let h = reg.histogram("dgsd_request_ns{frame=\"PING\"}");
        for v in [100, 200, 300] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.version, METRICS_SNAPSHOT_VERSION);
        assert_eq!(snap.counter("dgsd_requests_total"), Some(6));
        assert_eq!(snap.gauge("dgsd_queue_depth"), Some(3));
        let hs = &snap.histograms[0];
        assert_eq!(hs.name, "dgsd_request_ns{frame=\"PING\"}");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.min, 100);
        assert!(hs.p50 >= 100 && hs.max >= 300);
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        let g = reg.gauge("y");
        g.set(9);
        assert_eq!(g.get(), 0);
        reg.histogram("z").record(5);
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.dec();
        assert_eq!(g.get(), 0, "an unmatched dec must not wrap");
    }

    #[test]
    fn text_exposition_renders_families_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("dgsd_requests_total{frame=\"PING\"}").add(7);
        reg.counter("dgsd_requests_total{frame=\"QUERY\"}").add(2);
        reg.gauge("dgsd_queue_depth").set(1);
        reg.histogram("dgsd_request_ns{frame=\"PING\"}")
            .record(1000);
        let text = reg.snapshot().to_text();
        assert!(text.contains("# TYPE dgsd_requests_total counter\n"));
        // One TYPE line covers both labeled series of the family.
        assert_eq!(text.matches("# TYPE dgsd_requests_total").count(), 1);
        assert!(text.contains("dgsd_requests_total{frame=\"PING\"} 7\n"));
        assert!(text.contains("dgsd_requests_total{frame=\"QUERY\"} 2\n"));
        assert!(text.contains("# TYPE dgsd_queue_depth gauge\n"));
        assert!(text.contains("dgsd_queue_depth 1\n"));
        assert!(text.contains("# TYPE dgsd_request_ns summary\n"));
        assert!(text.contains("dgsd_request_ns_count{frame=\"PING\"} 1\n"));
        assert!(text.contains("dgsd_request_ns{frame=\"PING\",quantile=\"0.5\"}"));
        assert!(!text.to_lowercase().contains("nan"));
    }

    #[test]
    fn unlabeled_histogram_renders_bare_quantile_label() {
        let reg = MetricsRegistry::new();
        reg.histogram("dgsd_worker_wait_ns").record(50);
        let text = reg.snapshot().to_text();
        assert!(text.contains("dgsd_worker_wait_ns_count 1\n"));
        assert!(text.contains("dgsd_worker_wait_ns{quantile=\"0.99\"}"));
    }

    #[test]
    fn logger_filters_by_level_and_rate_limits_per_target() {
        let log = Logger::new(LogLevel::Warn);
        assert!(!log.debug("accept", "quiet"));
        assert!(!log.info("accept", "quiet"));
        assert!(log.warn("accept", "one"));
        // The burst allows a few lines, then suppresses the flood.
        let mut printed = 1;
        for _ in 0..100 {
            if log.warn("accept", "flood") {
                printed += 1;
            }
        }
        assert_eq!(printed as u32, LOG_BURST, "flood capped at the burst");
        // A different target has its own window.
        assert!(log.error("worker", "independent"));
    }

    #[test]
    fn obs_snapshot_roundtrips_and_gates() {
        let on = ServingSnapshot {
            version: 1,
            throughput: 9000.0,
            p50_us: 110.0,
            p95_us: 200.0,
            p99_us: 300.0,
            completed: 1000,
            errors: 0,
        };
        let mut off = on.clone();
        off.p50_us = 50.0;
        off.throughput = 10000.0;
        let snap = ObsSnapshot::of_runs(&on, &off);
        assert!((snap.overhead_pct - 120.0).abs() < 1e-9);
        let parsed = ObsSnapshot::parse_json(&snap.to_json()).expect("parses");
        assert!((parsed.overhead_pct - snap.overhead_pct).abs() < 0.01);
        assert!((parsed.p50_on_us - 110.0).abs() < 1e-9);
        // 120% overhead and a 60us delta: over both bars -> fails.
        assert_eq!(snap.gate(10.0, 25.0).len(), 1);
        // The absolute floor forgives big relative jitter on a tiny
        // base...
        assert!(snap.gate(10.0, 100.0).is_empty());
        // ...and a run inside the relative bar passes regardless.
        let quiet = ObsSnapshot::of_runs(&off, &off);
        assert!(quiet.gate(10.0, 25.0).is_empty());
    }

    #[test]
    fn obs_snapshot_rejects_foreign_versions() {
        let json = ObsSnapshot {
            version: OBS_SNAPSHOT_VERSION + 1,
            p50_on_us: 1.0,
            p50_off_us: 1.0,
            overhead_pct: 0.0,
            throughput_on: 1.0,
            throughput_off: 1.0,
        }
        .to_json();
        assert!(ObsSnapshot::parse_json(&json).is_none());
    }
}
