//! The actor abstraction algorithms are written against.
//!
//! A protocol consists of one [`CoordinatorLogic`] (the paper's `Sc`)
//! and one [`SiteLogic`] per fragment. Handlers communicate only
//! through the [`Outbox`]: sends are buffered and dispatched by the
//! executor after the handler returns, and local computation is
//! reported with [`Outbox::charge_ops`] so the virtual-time executor
//! can convert it into busy time.

use crate::message::{Endpoint, MsgClass};

/// Buffered sends plus charged work for one handler invocation.
pub struct Outbox<M> {
    me: Endpoint,
    num_sites: usize,
    pub(crate) sends: Vec<(Endpoint, MsgClass, M)>,
    pub(crate) ops: u64,
}

impl<M> Outbox<M> {
    pub(crate) fn new(me: Endpoint, num_sites: usize) -> Self {
        Outbox {
            me,
            num_sites,
            sends: Vec::new(),
            ops: 0,
        }
    }

    /// This handler's own endpoint.
    pub fn me(&self) -> Endpoint {
        self.me
    }

    /// Number of worker sites in the cluster.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Sends a **data** message (counted in the paper's DS metric).
    pub fn send(&mut self, to: Endpoint, msg: M) {
        debug_assert_ne!(to, self.me, "no self-sends");
        self.sends.push((to, MsgClass::Data, msg));
    }

    /// Sends a **control** message (barriers, query broadcast,
    /// changed-flags; accounted separately from DS).
    pub fn send_control(&mut self, to: Endpoint, msg: M) {
        debug_assert_ne!(to, self.me, "no self-sends");
        self.sends.push((to, MsgClass::Control, msg));
    }

    /// Sends a **result** message (final match collection; the paper's
    /// DS figures exclude it).
    pub fn send_result(&mut self, to: Endpoint, msg: M) {
        debug_assert_ne!(to, self.me, "no self-sends");
        self.sends.push((to, MsgClass::Result, msg));
    }

    /// Charges `n` basic operations of local computation to this
    /// handler (busy time in the virtual executor).
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
    }
}

/// Per-site protocol logic.
pub trait SiteLogic<M> {
    /// Invoked once at start-up — the moment the site receives the
    /// query (Phase 1 of the paper's framework, Fig. 3).
    fn on_start(&mut self, out: &mut Outbox<M>);

    /// Invoked for each delivered message.
    fn on_message(&mut self, from: Endpoint, msg: M, out: &mut Outbox<M>);
}

/// Coordinator (`Sc`) protocol logic.
pub trait CoordinatorLogic<M> {
    /// Invoked once at start-up, before any site runs.
    fn on_start(&mut self, out: &mut Outbox<M>);

    /// Invoked for each delivered message.
    fn on_message(&mut self, from: Endpoint, msg: M, out: &mut Outbox<M>);

    /// Invoked whenever the system quiesces: no in-flight messages and
    /// every handler idle. Return `true` to terminate the run; return
    /// `false` (after sending fresh messages) to start another phase.
    ///
    /// This idealizes the paper's termination detection (each site
    /// flags `changed` to `Sc` and `Sc` detects the fixpoint); see
    /// DESIGN.md §3. Protocols use successive quiescence rounds as
    /// barriers, e.g. `dGPMd`'s rank rounds and `dMes`'s supersteps.
    fn on_quiescent(&mut self, out: &mut Outbox<M>) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_buffers_sends_by_class() {
        let mut out: Outbox<u32> = Outbox::new(Endpoint::Coordinator, 3);
        out.send(Endpoint::Site(0), 1);
        out.send_control(Endpoint::Site(1), 2);
        out.send_result(Endpoint::Site(2), 3);
        out.charge_ops(17);
        assert_eq!(out.sends.len(), 3);
        assert_eq!(out.sends[0].1, MsgClass::Data);
        assert_eq!(out.sends[1].1, MsgClass::Control);
        assert_eq!(out.sends[2].1, MsgClass::Result);
        assert_eq!(out.ops, 17);
        assert_eq!(out.me(), Endpoint::Coordinator);
        assert_eq!(out.num_sites(), 3);
    }

    #[test]
    #[should_panic(expected = "no self-sends")]
    fn self_send_rejected_in_debug() {
        let mut out: Outbox<u32> = Outbox::new(Endpoint::Site(1), 3);
        out.send(Endpoint::Site(1), 9);
    }
}
