//! Threaded executor: one OS thread per site, channel transport,
//! Dijkstra-style quiescence detection.
//!
//! An atomic in-flight counter is incremented *before* every channel
//! send and decremented only after the receiving handler completes, so
//! the counter reaching zero proves global quiescence (no queued and
//! no in-processing message anywhere). The thread that drives it to
//! zero wakes the main loop, which runs the coordinator's
//! `on_quiescent` barrier — the same protocol semantics as the virtual
//! executor, with real parallelism and wall-clock timing.
//!
//! A panicking site handler used to poison the whole run ambiguously
//! (the panic propagated out of the thread scope). It is now caught at
//! the site thread, aborts the run, and surfaces as a typed
//! [`ExecError::SiteFailed`] from [`ThreadedExecutor::try_run`] naming
//! the site — the serving layer keeps its session alive across it.

use crate::cost::CostModel;
use crate::message::{Endpoint, WireSize};
use crate::metrics::RunMetrics;
use crate::site::{CoordinatorLogic, Outbox, SiteLogic};
use crate::{ExecError, RunOutcome};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

enum Packet<M> {
    Msg { from: Endpoint, msg: M },
    Stop,
}

/// The real-thread executor.
pub struct ThreadedExecutor {
    #[allow(dead_code)] // kept for API symmetry; ops are charged, not timed
    cost: CostModel,
}

struct Shared<M> {
    site_txs: Vec<Sender<Packet<M>>>,
    coord_tx: Sender<Packet<M>>,
    quiesce_tx: Sender<()>,
    inflight: AtomicI64,
    metrics: Mutex<RunMetrics>,
    /// First site failure (panicking handler); set once, aborts the
    /// run with a typed error.
    failed: Mutex<Option<(u32, String)>>,
}

impl<M: WireSize> Shared<M> {
    /// Dispatches a completed handler's outbox, then releases one
    /// in-flight token (the message or start-up token that triggered
    /// the handler).
    fn flush_and_release(&self, from: Endpoint, out: Outbox<M>) {
        {
            let mut m = self.metrics.lock();
            m.record_ops(from, out.ops);
            for (_, class, msg) in &out.sends {
                m.record_send_from(from, *class, msg.wire_size());
            }
        }
        for (to, _, msg) in out.sends {
            self.inflight.fetch_add(1, Ordering::SeqCst);
            let pkt = Packet::Msg { from, msg };
            // A send can only fail when the destination already exited
            // (a failed run being torn down): drop the message and put
            // the token back so the counter stays truthful.
            let sent = match to {
                Endpoint::Coordinator => self.coord_tx.send(pkt).is_ok(),
                Endpoint::Site(i) => self.site_txs[i as usize].send(pkt).is_ok(),
            };
            if !sent {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _ = self.quiesce_tx.send(());
        }
    }

    /// Records a panicking site and wakes the main loop so the run
    /// aborts promptly.
    fn report_failure(&self, site: u32, panic: Box<dyn std::any::Any + Send>) {
        let reason = if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "site handler panicked".to_owned()
        };
        let mut failed = self.failed.lock();
        if failed.is_none() {
            *failed = Some((site, reason));
        }
        drop(failed);
        let _ = self.quiesce_tx.send(());
    }
}

impl ThreadedExecutor {
    /// Creates an executor (the cost model only labels the run; wall
    /// clock is the timing source here).
    pub fn new(cost: CostModel) -> Self {
        ThreadedExecutor { cost }
    }

    /// Runs the protocol to completion; see [`crate::run`].
    ///
    /// # Panics
    /// Panics when a site handler panics — the historical behaviour.
    /// Use [`Self::try_run`] for a typed [`ExecError::SiteFailed`]
    /// instead.
    pub fn run<M, C, S>(&self, coordinator: C, sites: Vec<S>) -> RunOutcome<C, S>
    where
        M: WireSize + Send + 'static,
        C: CoordinatorLogic<M> + Send,
        S: SiteLogic<M> + Send,
    {
        self.try_run(coordinator, sites)
            .unwrap_or_else(|e| panic!("site thread panicked: {e}"))
    }

    /// Runs the protocol to completion, surfacing a panicking site
    /// handler as [`ExecError::SiteFailed`] (naming the site) instead
    /// of poisoning the run ambiguously.
    pub fn try_run<M, C, S>(
        &self,
        mut coordinator: C,
        mut sites: Vec<S>,
    ) -> Result<RunOutcome<C, S>, ExecError>
    where
        M: WireSize + Send + 'static,
        C: CoordinatorLogic<M> + Send,
        S: SiteLogic<M> + Send,
    {
        let n = sites.len();
        let wall_start = Instant::now();

        let mut site_txs = Vec::with_capacity(n);
        let mut site_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            site_txs.push(tx);
            site_rxs.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();
        let (quiesce_tx, quiesce_rx) = unbounded();
        let shared = Shared {
            site_txs,
            coord_tx,
            quiesce_tx,
            // One start-up token per site plus one for the coordinator:
            // quiescence cannot fire before everyone has started.
            inflight: AtomicI64::new(n as i64 + 1),
            metrics: Mutex::new(RunMetrics::new(n)),
            failed: Mutex::new(None),
        };

        let mut rounds = 0u64;
        crossbeam::thread::scope(|scope| {
            for (i, (site, rx)) in sites.iter_mut().zip(site_rxs).enumerate() {
                let shared = &shared;
                scope.spawn(move |_| {
                    let me = Endpoint::Site(i as u32);
                    let run_handler = |site: &mut S, pkt: Option<Packet<M>>| -> Option<Outbox<M>> {
                        match pkt {
                            None => {
                                let mut out = Outbox::new(me, n);
                                site.on_start(&mut out);
                                Some(out)
                            }
                            Some(Packet::Stop) => None,
                            Some(Packet::Msg { from, msg }) => {
                                let mut out = Outbox::new(me, n);
                                site.on_message(from, msg, &mut out);
                                Some(out)
                            }
                        }
                    };
                    match catch_unwind(AssertUnwindSafe(|| run_handler(site, None))) {
                        Ok(Some(out)) => shared.flush_and_release(me, out),
                        Ok(None) => unreachable!("start-up always produces an outbox"),
                        Err(panic) => {
                            shared.report_failure(i as u32, panic);
                            return;
                        }
                    }
                    while let Ok(pkt) = rx.recv() {
                        match catch_unwind(AssertUnwindSafe(|| run_handler(site, Some(pkt)))) {
                            Ok(Some(out)) => shared.flush_and_release(me, out),
                            Ok(None) => break, // Stop
                            Err(panic) => {
                                shared.report_failure(i as u32, panic);
                                return;
                            }
                        }
                    }
                });
            }

            // Coordinator runs on this thread.
            let mut out = Outbox::new(Endpoint::Coordinator, n);
            coordinator.on_start(&mut out);
            shared.flush_and_release(Endpoint::Coordinator, out);

            loop {
                if shared.failed.lock().is_some() {
                    break;
                }
                crossbeam::channel::select! {
                    recv(coord_rx) -> pkt => {
                        if let Ok(Packet::Msg { from, msg }) = pkt {
                            let mut out = Outbox::new(Endpoint::Coordinator, n);
                            coordinator.on_message(from, msg, &mut out);
                            shared.flush_and_release(Endpoint::Coordinator, out);
                        }
                    }
                    recv(quiesce_rx) -> _ => {
                        // The wake may be a failure notice rather than
                        // true quiescence.
                        if shared.failed.lock().is_some() {
                            break;
                        }
                        // Re-check: a fresh start may have raced the
                        // token; only act on true quiescence.
                        if shared.inflight.load(Ordering::SeqCst) != 0
                            || !coord_rx.is_empty()
                        {
                            continue;
                        }
                        rounds += 1;
                        let mut out = Outbox::new(Endpoint::Coordinator, n);
                        let done = coordinator.on_quiescent(&mut out);
                        let had_sends = !out.sends.is_empty();
                        // Account the barrier handler without releasing
                        // any token (none triggered it): temporarily add
                        // one so flush's release cancels out.
                        shared.inflight.fetch_add(1, Ordering::SeqCst);
                        shared.flush_and_release(Endpoint::Coordinator, out);
                        if done {
                            break;
                        }
                        assert!(
                            had_sends,
                            "protocol stalled: on_quiescent returned false without sending"
                        );
                    }
                }
            }

            for tx in &shared.site_txs {
                let _ = tx.send(Packet::Stop);
            }
        })
        .expect("scoped threads never propagate panics here");

        if let Some((site, reason)) = shared.failed.into_inner() {
            return Err(ExecError::SiteFailed { site, reason });
        }
        let mut metrics = shared.metrics.into_inner();
        metrics.quiescence_rounds = rounds;
        metrics.wall_time = wall_start.elapsed();
        Ok(RunOutcome {
            coordinator,
            sites,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scatter-gather: coordinator scatters one number to each site;
    /// sites add their index and reply; coordinator sums.
    struct Scatter {
        sum: u64,
        replies: usize,
    }
    struct AddSite {
        idx: u64,
    }
    impl CoordinatorLogic<u64> for Scatter {
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            for i in 0..out.num_sites() {
                out.send(Endpoint::Site(i as u32), 100);
            }
        }
        fn on_message(&mut self, _from: Endpoint, msg: u64, _out: &mut Outbox<u64>) {
            self.sum += msg;
            self.replies += 1;
        }
        fn on_quiescent(&mut self, _out: &mut Outbox<u64>) -> bool {
            true
        }
    }
    impl SiteLogic<u64> for AddSite {
        fn on_start(&mut self, _out: &mut Outbox<u64>) {}
        fn on_message(&mut self, _from: Endpoint, msg: u64, out: &mut Outbox<u64>) {
            out.charge_ops(3);
            out.send(Endpoint::Coordinator, msg + self.idx);
        }
    }

    #[test]
    fn scatter_gather_sums_correctly() {
        let exec = ThreadedExecutor::new(CostModel::default());
        let sites: Vec<AddSite> = (0..8).map(|i| AddSite { idx: i }).collect();
        let outcome = exec.run(Scatter { sum: 0, replies: 0 }, sites);
        assert_eq!(outcome.coordinator.replies, 8);
        assert_eq!(outcome.coordinator.sum, 8 * 100 + (0..8).sum::<u64>());
        assert_eq!(outcome.metrics.data_messages, 16);
        assert_eq!(outcome.metrics.total_ops, 24);
        assert_eq!(outcome.metrics.quiescence_rounds, 1);
        assert!(outcome.metrics.wall_time.as_nanos() > 0);
    }

    /// Site-to-site relay ring: message passes through all sites twice.
    struct RingCoord {
        hops_seen: u64,
    }
    struct RingSite {
        next: u32,
    }
    impl CoordinatorLogic<u64> for RingCoord {
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            out.send(Endpoint::Site(0), 0);
        }
        fn on_message(&mut self, _from: Endpoint, msg: u64, _out: &mut Outbox<u64>) {
            self.hops_seen = msg;
        }
        fn on_quiescent(&mut self, _out: &mut Outbox<u64>) -> bool {
            true
        }
    }
    impl SiteLogic<u64> for RingSite {
        fn on_start(&mut self, _out: &mut Outbox<u64>) {}
        fn on_message(&mut self, _from: Endpoint, msg: u64, out: &mut Outbox<u64>) {
            let hops = msg + 1;
            if hops >= 2 * out.num_sites() as u64 {
                out.send(Endpoint::Coordinator, hops);
            } else {
                out.send(Endpoint::Site(self.next), hops);
            }
        }
    }

    #[test]
    fn ring_relay_runs_site_to_site() {
        let n = 6u32;
        let exec = ThreadedExecutor::new(CostModel::default());
        let sites: Vec<RingSite> = (0..n).map(|i| RingSite { next: (i + 1) % n }).collect();
        let outcome = exec.run(RingCoord { hops_seen: 0 }, sites);
        assert_eq!(outcome.coordinator.hops_seen, 2 * n as u64);
    }

    /// The multi-phase barrier protocol from the virtual executor's
    /// tests must behave identically here.
    struct TwoPhase {
        phase: u32,
    }
    struct EchoSite {
        received: u64,
    }
    impl CoordinatorLogic<u64> for TwoPhase {
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            for i in 0..out.num_sites() {
                out.send_control(Endpoint::Site(i as u32), 1);
            }
        }
        fn on_message(&mut self, _from: Endpoint, _msg: u64, _out: &mut Outbox<u64>) {}
        fn on_quiescent(&mut self, out: &mut Outbox<u64>) -> bool {
            self.phase += 1;
            if self.phase == 1 {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), 2);
                }
                false
            } else {
                true
            }
        }
    }
    impl SiteLogic<u64> for EchoSite {
        fn on_start(&mut self, _out: &mut Outbox<u64>) {}
        fn on_message(&mut self, _from: Endpoint, msg: u64, out: &mut Outbox<u64>) {
            self.received += msg;
            out.send_result(Endpoint::Coordinator, msg);
        }
    }

    #[test]
    fn multi_phase_quiescence_threaded() {
        let exec = ThreadedExecutor::new(CostModel::default());
        let outcome = exec.run(
            TwoPhase { phase: 0 },
            (0..4).map(|_| EchoSite { received: 0 }).collect(),
        );
        assert_eq!(outcome.metrics.quiescence_rounds, 2);
        assert_eq!(outcome.metrics.control_messages, 8);
        for s in &outcome.sites {
            assert_eq!(s.received, 3);
        }
    }

    /// Regression: a panicking site handler used to poison the run
    /// ambiguously (panic propagated through the thread scope); it is
    /// now a typed `ExecError::SiteFailed` naming the site.
    #[test]
    fn site_panic_is_a_typed_error() {
        struct PanicSite {
            idx: u32,
        }
        impl SiteLogic<u64> for PanicSite {
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _from: Endpoint, _msg: u64, out: &mut Outbox<u64>) {
                if self.idx == 2 {
                    panic!("deliberate failure at site S3");
                }
                out.send(Endpoint::Coordinator, 1);
            }
        }
        let exec = ThreadedExecutor::new(CostModel::default());
        let sites: Vec<PanicSite> = (0..4).map(|idx| PanicSite { idx }).collect();
        let err = match exec.try_run(Scatter { sum: 0, replies: 0 }, sites) {
            Err(e) => e,
            Ok(_) => panic!("expected the run to fail"),
        };
        match err {
            ExecError::SiteFailed { site, reason } => {
                assert_eq!(site, 2);
                assert!(reason.contains("deliberate failure"), "{reason}");
            }
            other => panic!("expected SiteFailed, got {other:?}"),
        }
    }

    #[test]
    fn per_site_message_counts_are_recorded() {
        let exec = ThreadedExecutor::new(CostModel::default());
        let sites: Vec<AddSite> = (0..4).map(|i| AddSite { idx: i }).collect();
        let outcome = exec.run(Scatter { sum: 0, replies: 0 }, sites);
        // Each site replies exactly once.
        assert_eq!(outcome.metrics.site_msgs, vec![1; 4]);
    }

    #[test]
    fn zero_sites_immediately_quiesces() {
        struct Idle;
        impl CoordinatorLogic<u64> for Idle {
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: Endpoint, _m: u64, _o: &mut Outbox<u64>) {}
            fn on_quiescent(&mut self, _out: &mut Outbox<u64>) -> bool {
                true
            }
        }
        let exec = ThreadedExecutor::new(CostModel::default());
        let outcome = exec.run::<u64, _, EchoSite>(Idle, vec![]);
        assert_eq!(outcome.metrics.quiescence_rounds, 1);
    }
}
