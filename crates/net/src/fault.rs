//! Deterministic fault injection for protocol robustness testing.
//!
//! The distributed simulation algorithms are monotone fixpoint
//! computations whose data messages (variable falsifications, pushed
//! equations, subscriptions) are **idempotent**: delivering one twice
//! cannot change the computed relation, only the traffic. That
//! robustness is a real design property of the paper's protocol — a
//! falsified `X(u,v)` "never changes back" (§4.1) — and this module
//! makes it testable: a [`FaultPlan`] tells the virtual-time executor
//! to re-deliver a deterministic subset of data messages after an
//! extra delay, emulating the at-least-once behaviour of a retrying
//! transport.
//!
//! Only **data** messages are duplicated. Control and result traffic
//! implements the coordinator's phase barriers, where exactly-once is
//! part of the protocol contract (e.g. a duplicated `GatherRequest`
//! would double-merge match lists under the threaded executor); a
//! transport layer would deduplicate those by sequence number, which
//! we model by not duplicating them.
//!
//! Message *loss* is deliberately not modeled: the paper's protocol
//! (like Pregel's) assumes reliable channels, and dropping a
//! falsification without retry genuinely changes answers — there is
//! nothing useful to test beyond "unreliable transport breaks
//! reliable-transport protocols".

/// Deterministic at-least-once fault injection, applied by
/// [`crate::VirtualExecutor`] when configured via
/// [`crate::VirtualExecutor::with_faults`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Fraction of data messages delivered twice, in `[0, 1]`.
    pub duplicate_rate: f64,
    /// Extra delivery delay of the duplicate copy, in ns (the "retry"
    /// arrives late, typically after the original already took
    /// effect).
    pub extra_delay_ns: u64,
    /// Seed of the per-message duplication decision.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan duplicating `rate` of data messages, with a 2 ms retry
    /// delay.
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn duplicating(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "duplicate rate in [0, 1]");
        FaultPlan {
            duplicate_rate: rate,
            extra_delay_ns: 2_000_000,
            seed,
        }
    }

    /// Whether message number `seq` gets a duplicate delivery
    /// (deterministic in `(seed, seq)`).
    pub fn duplicates(&self, seq: u64) -> bool {
        if self.duplicate_rate <= 0.0 {
            return false;
        }
        if self.duplicate_rate >= 1.0 {
            return true;
        }
        // SplitMix64 hash → uniform unit float.
        let mut z = self.seed ^ seq.wrapping_mul(0xD1B54A32D192ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.duplicate_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_extremes() {
        let none = FaultPlan::duplicating(0.0, 1);
        let all = FaultPlan::duplicating(1.0, 1);
        for seq in 0..100 {
            assert!(!none.duplicates(seq));
            assert!(all.duplicates(seq));
        }
    }

    #[test]
    fn rate_is_approximately_respected() {
        let plan = FaultPlan::duplicating(0.3, 7);
        let hits = (0..10_000).filter(|&s| plan.duplicates(s)).count();
        assert!((2_500..3_500).contains(&hits), "{hits} of 10000");
    }

    #[test]
    fn decisions_are_deterministic_and_seeded() {
        let a = FaultPlan::duplicating(0.5, 1);
        let b = FaultPlan::duplicating(0.5, 2);
        let decisions: Vec<bool> = (0..64).map(|s| a.duplicates(s)).collect();
        assert_eq!(
            decisions,
            (0..64).map(|s| a.duplicates(s)).collect::<Vec<_>>()
        );
        assert_ne!(
            decisions,
            (0..64).map(|s| b.duplicates(s)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate rate")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::duplicating(1.5, 0);
    }
}
