//! The virtual-time cost model.
//!
//! The paper ran on Amazon EC2 General Purpose instances; the defaults
//! here are in that regime: a few nanoseconds per basic graph
//! operation, sub-millisecond one-way latency inside a region, and
//! ~100 MB/s effective per-flow bandwidth. The absolute values only
//! scale the virtual clock — the *shapes* of the PT curves (what the
//! experiments verify) are governed by the ratios, which are
//! configurable per experiment.

/// Parameters of the discrete-event simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Nanoseconds of site busy time per charged basic operation.
    pub ns_per_op: f64,
    /// Fixed per-message handling overhead at the receiver, in ns.
    pub ns_per_message: u64,
    /// One-way network latency in ns.
    pub latency_ns: u64,
    /// Network bandwidth in bytes per nanosecond (0.1 = 100 MB/s).
    pub bytes_per_ns: f64,
    /// Deterministic per-message latency jitter: each delivery's
    /// latency is scaled by a pseudo-random factor in
    /// `[1 − jitter, 1 + jitter]` derived from `jitter_seed` and the
    /// message's sequence number. Jitter perturbs message *ordering*
    /// (adversarial-schedule testing: monotone fixpoints must be
    /// confluent under any schedule) while staying fully reproducible.
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub jitter_seed: u64,
    /// Per-site speed factors (heterogeneous hardware / stragglers):
    /// site `i` runs at `site_speed[i]` × the base speed, so a factor
    /// of `0.25` makes that site 4× slower. Sites beyond the vector's
    /// length (and the coordinator) run at factor 1. Only the
    /// virtual-time executor interprets this — wall clock cannot be
    /// slowed down honestly.
    pub site_speed: Vec<f64>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_op: 5.0,
            ns_per_message: 10_000, // 10 µs dispatch overhead
            latency_ns: 500_000,    // 0.5 ms one-way
            bytes_per_ns: 0.1,      // 100 MB/s
            jitter: 0.0,
            jitter_seed: 0,
            site_speed: Vec::new(),
        }
    }
}

impl CostModel {
    /// A model with zero network costs — virtual time then measures
    /// pure computation, useful in tests.
    pub fn compute_only() -> Self {
        CostModel {
            ns_per_op: 1.0,
            ns_per_message: 0,
            latency_ns: 0,
            bytes_per_ns: f64::INFINITY,
            jitter: 0.0,
            jitter_seed: 0,
            site_speed: Vec::new(),
        }
    }

    /// Returns a copy with site `site` slowed down by `slowdown`
    /// (e.g. `4.0` = a 4× straggler).
    ///
    /// # Panics
    /// Panics on a non-positive slowdown.
    pub fn with_straggler(mut self, site: usize, slowdown: f64) -> Self {
        assert!(slowdown > 0.0, "slowdown must be positive");
        if self.site_speed.len() <= site {
            self.site_speed.resize(site + 1, 1.0);
        }
        self.site_speed[site] = 1.0 / slowdown;
        self
    }

    /// The speed factor of site `i` (1.0 unless configured).
    pub fn speed_of(&self, site: usize) -> f64 {
        self.site_speed.get(site).copied().unwrap_or(1.0)
    }

    /// Busy time of `ops` charged operations at site `site`
    /// (`None` = coordinator, which always runs at base speed).
    pub fn compute_ns_at(&self, site: Option<usize>, ops: u64) -> u64 {
        let speed = site.map_or(1.0, |i| self.speed_of(i));
        (ops as f64 * self.ns_per_op / speed).round() as u64
    }

    /// Returns a copy with latency jitter enabled.
    ///
    /// # Panics
    /// Panics unless `0 ≤ jitter < 1`.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter fraction in [0,1)");
        self.jitter = jitter;
        self.jitter_seed = seed;
        self
    }

    /// Transfer time of a `bytes`-sized message, excluding latency.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        if self.bytes_per_ns.is_infinite() {
            0
        } else {
            (bytes as f64 / self.bytes_per_ns).round() as u64
        }
    }

    /// Busy time of `ops` charged operations.
    pub fn compute_ns(&self, ops: u64) -> u64 {
        (ops as f64 * self.ns_per_op).round() as u64
    }

    /// Full delivery delay of a message: latency plus transfer.
    pub fn delivery_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + self.transfer_ns(bytes)
    }

    /// Delivery delay of message number `seq`, with jitter applied to
    /// the latency term (deterministic in `(jitter_seed, seq)`).
    pub fn delivery_ns_jittered(&self, bytes: usize, seq: u64) -> u64 {
        if self.jitter == 0.0 {
            return self.delivery_ns(bytes);
        }
        // SplitMix64 over (seed ^ seq) → uniform in [-1, 1).
        let mut z = self.jitter_seed ^ seq.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        let latency = (self.latency_ns as f64 * factor).round() as u64;
        latency + self.transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ec2_like() {
        let c = CostModel::default();
        assert_eq!(c.latency_ns, 500_000);
        // 1 KB at 100 MB/s = 10 µs.
        assert_eq!(c.transfer_ns(1_000), 10_000);
        assert_eq!(c.delivery_ns(1_000), 510_000);
    }

    #[test]
    fn compute_only_has_free_network() {
        let c = CostModel::compute_only();
        assert_eq!(c.delivery_ns(1 << 20), 0);
        assert_eq!(c.compute_ns(42), 42);
    }

    #[test]
    fn compute_scales_with_ops() {
        let c = CostModel::default();
        assert_eq!(c.compute_ns(100), 500);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let c = CostModel::default().with_jitter(0.3, 42);
        let base = c.latency_ns as f64;
        for seq in 0..200u64 {
            let d = c.delivery_ns_jittered(0, seq) as f64;
            assert!(d >= base * 0.69 && d <= base * 1.31, "seq {seq}: {d}");
            assert_eq!(
                c.delivery_ns_jittered(0, seq),
                c.delivery_ns_jittered(0, seq)
            );
        }
        // Different seeds give different schedules.
        let c2 = CostModel::default().with_jitter(0.3, 43);
        assert!((0..50).any(|s| c.delivery_ns_jittered(0, s) != c2.delivery_ns_jittered(0, s)));
    }

    #[test]
    fn zero_jitter_matches_plain_delivery() {
        let c = CostModel::default();
        for seq in 0..10 {
            assert_eq!(c.delivery_ns_jittered(500, seq), c.delivery_ns(500));
        }
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn jitter_out_of_range_rejected() {
        let _ = CostModel::default().with_jitter(1.5, 0);
    }

    #[test]
    fn straggler_slows_one_site_only() {
        let c = CostModel::default().with_straggler(2, 4.0);
        assert_eq!(c.speed_of(0), 1.0);
        assert_eq!(c.speed_of(2), 0.25);
        assert_eq!(c.speed_of(99), 1.0);
        assert_eq!(c.compute_ns_at(Some(0), 100), 500);
        assert_eq!(c.compute_ns_at(Some(2), 100), 2_000);
        assert_eq!(c.compute_ns_at(None, 100), 500);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn zero_slowdown_rejected() {
        let _ = CostModel::default().with_straggler(0, 0.0);
    }
}
