//! `SocketExecutor`: the coordinator and the worker sites run in
//! **separate OS processes**, connected by TCP sockets carrying the
//! same length-prefixed frames as the serving layer (`docs/PROTOCOL.md`,
//! "Site frames").
//!
//! The in-process executors prove the algorithms; this one proves the
//! *deployment*: messages really cross a kernel socket, a worker can
//! really be killed mid-run, and the transport can really reorder and
//! re-deliver — all of which the conformance and chaos suites
//! (`tests/executors.rs`) exercise.
//!
//! ## Topology
//!
//! The coordinator process owns the protocol run. Worker processes
//! (`dgsd --worker` / `dgsq worker`) each host one or more sites. All
//! messages are routed **through the coordinator** (a star, exactly
//! like the paper's `Sc`-centric deployment): when a site handler
//! finishes, its worker ships the whole outbox back in one `SITE_OUT`
//! frame and the coordinator forwards each send to its destination
//! worker as a `SITE_MSG` frame. That lets the coordinator keep the
//! same Dijkstra-style in-flight count as the threaded executor —
//! the counter reaching zero proves global quiescence — and account
//! every message's **logical** [`WireSize`] exactly like the other
//! executors, so `RunMetrics` are comparable across all three.
//!
//! ## Generic dispatch
//!
//! The executor is generic over the protocol: messages implement
//! [`SocketMsg`] (a byte codec on top of [`crate::wire`]) and site
//! logics implement [`RemoteSpec`] (an opaque per-site bootstrap blob
//! from which the worker process reconstructs the logic — pattern,
//! engine configuration, query mode). The worker side is type-erased:
//! a [`WorkerHost`] turns spec blobs into [`ErasedSite`]s, so one
//! worker binary serves every protocol.
//!
//! ## Faults
//!
//! * A worker that **dies** (crash, `kill -9`, dropped connection)
//!   surfaces as [`ExecError::SiteFailed`] naming a hosted site.
//! * A worker that goes **silent** is bounded by
//!   [`SocketConfig::site_timeout`]: the run fails with
//!   [`ExecError::Timeout`] instead of hanging forever.
//! * A [`ChaosPlan`] makes the coordinator-side transport adversarial
//!   (deterministically, per seed): data messages are dropped-then-
//!   retried, duplicated, delayed and reordered — the at-least-once
//!   semantics of [`crate::FaultPlan`] over a real socket. Control and
//!   result frames stay exactly-once, mirroring `FaultPlan`'s contract.

use crate::message::{Endpoint, MsgClass, WireSize};
use crate::metrics::RunMetrics;
use crate::site::{CoordinatorLogic, Outbox, SiteLogic};
use crate::wire::{self, put_bytes, put_str, put_u16, put_u8, put_varint, FrameError, Reader};
use crate::{ExecError, RunOutcome};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// ---- frame types (distinct namespace from the serving protocol) -------

/// Handshake, both directions: magic `DGSP` + `u16` version.
pub const FT_WORKER_HELLO: u8 = 0x50;
/// Session bootstrap blob (coordinator → worker).
pub const FT_WORKER_LOAD: u8 = 0x51;
/// Generic acknowledgement (worker → coordinator).
pub const FT_WORKER_OK: u8 = 0x52;
/// Generic failure: a reason string (worker → coordinator).
pub const FT_WORKER_ERR: u8 = 0x53;
/// Per-run site bootstrap: run id + the hosted sites' specs.
pub const FT_SITE_HELLO: u8 = 0x54;
/// One protocol message delivered to a hosted site.
pub const FT_SITE_MSG: u8 = 0x55;
/// One finished handler's outbox: charged ops + buffered sends.
pub const FT_SITE_OUT: u8 = 0x56;
/// A hosted site failed (decode error or handler panic).
pub const FT_SITE_ERR: u8 = 0x57;
/// End of run: the worker drops the run's site state.
pub const FT_SITE_DONE: u8 = 0x58;
/// The worker process should exit cleanly.
pub const FT_WORKER_SHUTDOWN: u8 = 0x59;

/// Magic of the site-frame handshake.
pub const SOCKET_MAGIC: &[u8; 4] = b"DGSP";
/// Protocol version of the site frames.
pub const SOCKET_VERSION: u16 = 1;

/// The announce line a worker prints once its listener is bound; the
/// spawn-local bootstrap parses the address after this marker.
pub const ANNOUNCE_MARKER: &str = "listening on ";

// ---- protocol-side traits ---------------------------------------------

/// A protocol message that can cross a process boundary: a byte codec
/// on top of the shared [`crate::wire`] primitives.
///
/// `encode` may refuse (returning `Err`) for protocols that are not
/// socket-remotable; [`SocketCluster::run`] surfaces that as
/// [`ExecError::Unsupported`] before any frame is sent.
pub trait SocketMsg: WireSize + Clone + Send + 'static {
    /// Appends the encoded message to `buf`.
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String>;
    /// Decodes one message; the cursor must consume it exactly.
    fn decode(r: &mut Reader<'_>) -> Result<Self, String>;
}

/// A site logic that a worker process can reconstruct from an opaque
/// spec blob (see `dgs-core`'s `remote` module for the engine specs).
pub trait RemoteSpec {
    /// The per-site bootstrap spec, or `Err` when this protocol cannot
    /// run remotely (e.g. its state cannot be rebuilt worker-side).
    fn remote_spec(&self) -> Result<Vec<u8>, String>;
}

// ---- worker-side type erasure -----------------------------------------

/// One buffered send of a finished handler, already encoded.
pub struct RawSend {
    /// Destination endpoint.
    pub to: Endpoint,
    /// Shipment accounting class.
    pub class: MsgClass,
    /// The message's **logical** wire size ([`WireSize`]) — what the
    /// metrics record, independent of the physical frame encoding.
    pub wire_bytes: usize,
    /// The encoded message payload.
    pub payload: Vec<u8>,
}

/// A finished handler's outbox in encoded form.
pub struct RawOutbox {
    /// Charged local operations.
    pub ops: u64,
    /// Buffered sends.
    pub sends: Vec<RawSend>,
}

/// A type-erased remote site: raw bytes in, raw outbox out. One worker
/// binary hosts any protocol through this interface.
pub trait ErasedSite: Send {
    /// Runs the site's `on_start` handler.
    fn on_start(&mut self) -> Result<RawOutbox, String>;
    /// Delivers one encoded message.
    fn on_message(&mut self, from: Endpoint, payload: &[u8]) -> Result<RawOutbox, String>;
}

struct ErasedAdapter<M, S> {
    me: Endpoint,
    num_sites: usize,
    site: S,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M: SocketMsg, S: SiteLogic<M> + Send> ErasedAdapter<M, S> {
    fn raw(out: Outbox<M>) -> Result<RawOutbox, String> {
        let mut sends = Vec::with_capacity(out.sends.len());
        for (to, class, msg) in out.sends {
            let wire_bytes = msg.wire_size();
            let mut payload = Vec::new();
            msg.encode(&mut payload)?;
            sends.push(RawSend {
                to,
                class,
                wire_bytes,
                payload,
            });
        }
        Ok(RawOutbox {
            ops: out.ops,
            sends,
        })
    }
}

impl<M: SocketMsg, S: SiteLogic<M> + Send> ErasedSite for ErasedAdapter<M, S> {
    fn on_start(&mut self) -> Result<RawOutbox, String> {
        let mut out = Outbox::new(self.me, self.num_sites);
        self.site.on_start(&mut out);
        Self::raw(out)
    }

    fn on_message(&mut self, from: Endpoint, payload: &[u8]) -> Result<RawOutbox, String> {
        let mut r = Reader::new(payload);
        let msg = M::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes after message", r.remaining()));
        }
        let mut out = Outbox::new(self.me, self.num_sites);
        self.site.on_message(from, msg, &mut out);
        Self::raw(out)
    }
}

/// Wraps a typed site logic for hosting in a worker process. Worker
/// hosts call this from their spec factories.
pub fn erase_site<M, S>(site: S, site_idx: u32, num_sites: usize) -> Box<dyn ErasedSite>
where
    M: SocketMsg,
    S: SiteLogic<M> + Send + 'static,
{
    Box::new(ErasedAdapter::<M, S> {
        me: Endpoint::Site(site_idx),
        num_sites,
        site,
        _msg: std::marker::PhantomData,
    })
}

/// The worker process's pluggable brain: absorbs the session bootstrap
/// (graph + fragmentation) and builds site logics from per-run specs.
pub trait WorkerHost {
    /// Absorbs the session bootstrap blob sent at cluster start.
    fn load(&mut self, blob: &[u8]) -> Result<(), String>;
    /// Builds the logic of `site` for one run from its spec blob.
    fn build_site(
        &self,
        site: u32,
        num_sites: usize,
        spec: &[u8],
    ) -> Result<Box<dyn ErasedSite>, String>;
}

// ---- endpoint / frame helpers -----------------------------------------

fn put_endpoint(buf: &mut Vec<u8>, ep: Endpoint) {
    put_varint(
        buf,
        match ep {
            Endpoint::Coordinator => 0,
            Endpoint::Site(i) => u64::from(i) + 1,
        },
    );
}

fn read_endpoint(r: &mut Reader<'_>, what: &str) -> Result<Endpoint, FrameError> {
    let v = r.varint(what)?;
    Ok(if v == 0 {
        Endpoint::Coordinator
    } else {
        Endpoint::Site((v - 1) as u32)
    })
}

fn put_class(buf: &mut Vec<u8>, class: MsgClass) {
    put_u8(
        buf,
        match class {
            MsgClass::Data => 0,
            MsgClass::Control => 1,
            MsgClass::Result => 2,
        },
    );
}

fn read_class(r: &mut Reader<'_>) -> Result<MsgClass, FrameError> {
    Ok(match r.u8("message class")? {
        0 => MsgClass::Data,
        1 => MsgClass::Control,
        2 => MsgClass::Result,
        other => {
            return Err(FrameError::corrupt(format!(
                "unknown message class {other}"
            )));
        }
    })
}

// ---- the worker loop ---------------------------------------------------

/// Why [`run_worker`] returned.
#[derive(Debug, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator asked the process to exit (`WORKER_SHUTDOWN`).
    Shutdown,
    /// The coordinator hung up; the worker can accept a new one.
    Disconnected,
}

/// Serves one coordinator connection: handshake, session bootstrap,
/// then site frames until shutdown or disconnect. Handler panics are
/// caught and surfaced as `SITE_ERR` frames — a bad query must not
/// kill the worker process.
pub fn run_worker(conn: TcpStream, host: &mut dyn WorkerHost) -> Result<WorkerExit, FrameError> {
    conn.set_nodelay(true).map_err(FrameError::Io)?;
    let mut rd = BufReader::new(conn.try_clone().map_err(FrameError::Io)?);
    let mut wr = conn;

    // Handshake: the coordinator speaks first.
    match wire::read_frame(&mut rd)? {
        Some((FT_WORKER_HELLO, payload)) => {
            let mut r = Reader::new(&payload);
            let magic = r.bytes("handshake magic")?;
            if magic != SOCKET_MAGIC {
                return Err(FrameError::corrupt("bad handshake magic"));
            }
            let theirs = r.u16("handshake version")?;
            r.finish("handshake")?;
            let mut reply = Vec::new();
            put_bytes(&mut reply, SOCKET_MAGIC);
            put_u16(&mut reply, theirs.min(SOCKET_VERSION));
            wire::write_frame(&mut wr, FT_WORKER_HELLO, &reply).map_err(FrameError::Io)?;
        }
        Some((ty, _)) => {
            return Err(FrameError::corrupt(format!(
                "expected WORKER_HELLO, got frame type {ty:#x}"
            )));
        }
        None => return Ok(WorkerExit::Disconnected),
    }

    // Site state of the (single) active run, keyed by run id so stale
    // frames from an aborted run are ignored rather than misdelivered.
    let mut runs: HashMap<u64, HashMap<u32, Box<dyn ErasedSite>>> = HashMap::new();

    let write_out =
        |wr: &mut TcpStream, run_id: u64, site: u32, out: RawOutbox| -> Result<(), FrameError> {
            let mut buf = Vec::new();
            put_varint(&mut buf, run_id);
            put_varint(&mut buf, u64::from(site));
            put_varint(&mut buf, out.ops);
            put_varint(&mut buf, out.sends.len() as u64);
            for s in out.sends {
                put_endpoint(&mut buf, s.to);
                put_class(&mut buf, s.class);
                put_varint(&mut buf, s.wire_bytes as u64);
                put_bytes(&mut buf, &s.payload);
            }
            wire::write_frame(wr, FT_SITE_OUT, &buf).map_err(FrameError::Io)
        };
    let write_err =
        |wr: &mut TcpStream, run_id: u64, site: u32, reason: &str| -> Result<(), FrameError> {
            let mut buf = Vec::new();
            put_varint(&mut buf, run_id);
            put_varint(&mut buf, u64::from(site));
            put_str(&mut buf, reason);
            wire::write_frame(wr, FT_SITE_ERR, &buf).map_err(FrameError::Io)
        };

    loop {
        let Some((ty, payload)) = wire::read_frame(&mut rd)? else {
            return Ok(WorkerExit::Disconnected);
        };
        match ty {
            FT_WORKER_LOAD => {
                // A (re-)bootstrap invalidates any lingering run state.
                runs.clear();
                match host.load(&payload) {
                    Ok(()) => {
                        wire::write_frame(&mut wr, FT_WORKER_OK, &[]).map_err(FrameError::Io)?;
                    }
                    Err(reason) => {
                        let mut buf = Vec::new();
                        put_str(&mut buf, &reason);
                        wire::write_frame(&mut wr, FT_WORKER_ERR, &buf).map_err(FrameError::Io)?;
                    }
                }
            }
            FT_SITE_HELLO => {
                let mut r = Reader::new(&payload);
                let run_id = r.varint("run id")?;
                let num_sites = r.varint("site count")? as usize;
                let hosted = r.varint("hosted count")?;
                // One active run per worker: a new hello supersedes
                // everything older (an aborted run's state included).
                runs.clear();
                let mut sites: HashMap<u32, Box<dyn ErasedSite>> = HashMap::new();
                let mut failed: Vec<(u32, String)> = Vec::new();
                let mut order = Vec::new();
                for _ in 0..hosted {
                    let site = r.varint("site index")? as u32;
                    let spec = r.bytes("site spec")?;
                    match host.build_site(site, num_sites, spec) {
                        Ok(logic) => {
                            sites.insert(site, logic);
                            order.push(site);
                        }
                        Err(reason) => failed.push((site, reason)),
                    }
                }
                r.finish("SITE_HELLO")?;
                runs.insert(run_id, sites);
                for (site, reason) in failed {
                    write_err(&mut wr, run_id, site, &reason)?;
                }
                let run_sites = runs.get_mut(&run_id).expect("just inserted");
                for site in order {
                    let logic = run_sites.get_mut(&site).expect("just built");
                    match catch_unwind(AssertUnwindSafe(|| logic.on_start())) {
                        Ok(Ok(out)) => write_out(&mut wr, run_id, site, out)?,
                        Ok(Err(reason)) => write_err(&mut wr, run_id, site, &reason)?,
                        Err(panic) => {
                            write_err(&mut wr, run_id, site, &panic_message(&*panic))?;
                        }
                    }
                }
            }
            FT_SITE_MSG => {
                let mut r = Reader::new(&payload);
                let run_id = r.varint("run id")?;
                let site = r.varint("destination site")? as u32;
                let from = read_endpoint(&mut r, "source endpoint")?;
                let _class = read_class(&mut r)?;
                let msg = r.bytes("message payload")?;
                // r.finish checked implicitly: the message is the last
                // field and `bytes` is length-prefixed.
                let Some(sites) = runs.get_mut(&run_id) else {
                    continue; // stale frame of an aborted run
                };
                let Some(logic) = sites.get_mut(&site) else {
                    write_err(
                        &mut wr,
                        run_id,
                        site,
                        "message for a site this worker does not host",
                    )?;
                    continue;
                };
                match catch_unwind(AssertUnwindSafe(|| logic.on_message(from, msg))) {
                    Ok(Ok(out)) => write_out(&mut wr, run_id, site, out)?,
                    Ok(Err(reason)) => write_err(&mut wr, run_id, site, &reason)?,
                    Err(panic) => write_err(&mut wr, run_id, site, &panic_message(&*panic))?,
                }
            }
            FT_SITE_DONE => {
                let mut r = Reader::new(&payload);
                let run_id = r.varint("run id")?;
                r.finish("SITE_DONE")?;
                runs.remove(&run_id);
            }
            FT_WORKER_SHUTDOWN => {
                let _ = wire::write_frame(&mut wr, FT_WORKER_OK, &[]);
                return Ok(WorkerExit::Shutdown);
            }
            other => {
                return Err(FrameError::corrupt(format!(
                    "unexpected frame type {other:#x} on a worker connection"
                )));
            }
        }
    }
}

/// Accept loop of a worker process: serves coordinator connections one
/// at a time (each with a fresh host from `host_factory`) until a
/// coordinator sends `WORKER_SHUTDOWN`.
pub fn serve_worker_listener<H, F>(
    listener: &TcpListener,
    mut host_factory: F,
) -> std::io::Result<()>
where
    H: WorkerHost,
    F: FnMut() -> H,
{
    for conn in listener.incoming() {
        let conn = conn?;
        let mut host = host_factory();
        match run_worker(conn, &mut host) {
            Ok(WorkerExit::Shutdown) => return Ok(()),
            Ok(WorkerExit::Disconnected) => continue,
            Err(e) => {
                // A corrupt coordinator must not kill the worker; log
                // and accept the next connection.
                eprintln!("worker: coordinator connection failed: {e}");
                continue;
            }
        }
    }
    Ok(())
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("site handler panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("site handler panicked: {s}")
    } else {
        "site handler panicked".to_owned()
    }
}

// ---- chaos transport ---------------------------------------------------

/// Deterministic adversarial behaviour of the coordinator-side
/// transport, applied to **data**-class `SITE_MSG` frames only —
/// mirroring [`crate::FaultPlan`]: control and result traffic is part
/// of the phase-barrier contract and a real transport would
/// deduplicate and order it by sequence number.
///
/// Semantics are at-least-once: a "dropped" first copy is always
/// followed by a retry copy (a transport that loses messages without
/// retry genuinely changes answers — see `crates/net/src/fault.rs`),
/// a duplicated message is delivered twice, and delayed copies are
/// flushed in seeded-shuffled order once the coordinator goes idle —
/// which both delays and **reorders** them relative to program order.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Fraction of data messages whose first copy is dropped (the
    /// retry is delivered later), in `[0, 1]`.
    pub drop_rate: f64,
    /// Fraction delivered twice (the second copy later), in `[0, 1]`.
    pub duplicate_rate: f64,
    /// Fraction whose only copy is deferred to the reorder buffer.
    pub delay_rate: f64,
    /// Seed of all per-message decisions and of the flush shuffle.
    pub seed: u64,
}

impl ChaosPlan {
    /// A heavy plan: 20% dropped-then-retried, 20% duplicated, 30%
    /// delayed/reordered.
    pub fn heavy(seed: u64) -> Self {
        ChaosPlan {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            delay_rate: 0.3,
            seed,
        }
    }

    fn unit(&self, seq: u64, salt: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15))
            ^ seq.wrapping_mul(0xD1B54A32D192ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What [`ChaosTransport::route`] decided for one data frame.
enum ChaosVerdict {
    /// Deliver now, nothing held.
    Pass,
    /// First copy dropped; the retry copy goes to the buffer.
    DropRetry,
    /// Deliver now **and** hold a duplicate copy.
    Duplicate,
    /// Hold the only copy (delay + reorder).
    Delay,
}

/// The coordinator-side wrapper that applies a [`ChaosPlan`] to
/// outgoing data frames. Held copies are flushed — in seeded-shuffled
/// order — whenever the event loop runs out of immediate work, so
/// every message is eventually delivered (at-least-once, never lost).
pub struct ChaosTransport {
    plan: ChaosPlan,
    seq: u64,
    /// Held frames: `(worker index, frame payload)`.
    held: Vec<(usize, Vec<u8>)>,
}

impl ChaosTransport {
    fn new(plan: ChaosPlan) -> Self {
        ChaosTransport {
            plan,
            seq: 0,
            held: Vec::new(),
        }
    }

    fn verdict(&mut self) -> ChaosVerdict {
        let seq = self.seq;
        self.seq += 1;
        let u = self.plan.unit(seq, 1);
        let p = &self.plan;
        if u < p.drop_rate {
            ChaosVerdict::DropRetry
        } else if u < p.drop_rate + p.duplicate_rate {
            ChaosVerdict::Duplicate
        } else if u < p.drop_rate + p.duplicate_rate + p.delay_rate {
            ChaosVerdict::Delay
        } else {
            ChaosVerdict::Pass
        }
    }

    /// Whether any copies are still held back.
    fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Takes all held frames, in seeded-shuffled order.
    fn flush(&mut self) -> Vec<(usize, Vec<u8>)> {
        let mut out = std::mem::take(&mut self.held);
        // Fisher–Yates with the plan's deterministic unit stream.
        for i in (1..out.len()).rev() {
            let j = (self.plan.unit(self.seq, 2 + i as u64) * (i as f64 + 1.0)) as usize;
            out.swap(i, j.min(i));
        }
        self.seq += 1;
        out
    }
}

// ---- the cluster -------------------------------------------------------

/// Where the worker processes come from.
pub enum WorkerMode {
    /// Spawn `count` local worker processes (`program args...`), each
    /// of which must print "`listening on <addr>`" once bound.
    SpawnLocal {
        /// The worker executable.
        program: PathBuf,
        /// Its arguments (e.g. `["worker", "--listen", "127.0.0.1:0"]`).
        args: Vec<String>,
        /// How many processes to spawn.
        count: usize,
    },
    /// Attach to already-running workers (`dgsd --worker`) at these
    /// `host:port` addresses.
    Attach {
        /// Worker addresses.
        addrs: Vec<String>,
    },
}

/// Configuration of a [`SocketCluster`].
pub struct SocketConfig {
    /// Worker bootstrap mode.
    pub mode: WorkerMode,
    /// Coordinator-side bound on worker silence: if messages are in
    /// flight and **no** worker frame arrives within this window, the
    /// run fails with [`ExecError::Timeout`] instead of hanging on a
    /// silent peer.
    pub site_timeout: Duration,
    /// Optional adversarial transport.
    pub chaos: Option<ChaosPlan>,
}

impl SocketConfig {
    /// Spawn-local configuration with the default 30 s site timeout.
    pub fn spawn_local(program: impl Into<PathBuf>, args: Vec<String>, count: usize) -> Self {
        SocketConfig {
            mode: WorkerMode::SpawnLocal {
                program: program.into(),
                args,
                count,
            },
            site_timeout: Duration::from_secs(30),
            chaos: None,
        }
    }

    /// Attach configuration with the default 30 s site timeout.
    pub fn attach(addrs: Vec<String>) -> Self {
        SocketConfig {
            mode: WorkerMode::Attach { addrs },
            site_timeout: Duration::from_secs(30),
            chaos: None,
        }
    }

    /// Overrides the per-site silence bound.
    pub fn site_timeout(mut self, timeout: Duration) -> Self {
        self.site_timeout = timeout;
        self
    }

    /// Enables the adversarial transport.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

enum WorkerEvent {
    Frame(u8, Vec<u8>),
    Closed(String),
}

struct WorkerLink {
    stream: TcpStream,
    addr: String,
    sites: Vec<u32>,
    dead: Option<String>,
}

struct ClusterInner {
    links: Vec<WorkerLink>,
    children: Vec<Child>,
    events: crossbeam::channel::Receiver<(usize, WorkerEvent)>,
    num_sites: usize,
    next_run: u64,
    timeout: Duration,
    chaos: Option<ChaosTransport>,
    /// Spawn-local clusters own their workers' lifecycle and ask them
    /// to exit on shutdown; attached workers are externally managed
    /// and stay up for the next coordinator.
    owns_workers: bool,
    shut_down: bool,
}

/// A bootstrapped set of worker processes hosting the sites of one
/// fragmentation, plus the coordinator-side router — the socket
/// executor's persistent half. Built once per session
/// (`SimEngineBuilder::build_socket` in `dgs-core`), reused by every
/// run; runs are serialized internally, so a shared reference is
/// enough.
///
/// Dropping a **spawn-local** cluster asks every spawned worker to
/// exit and reaps the child processes (kill after a grace period) —
/// no leaked processes or sockets. Dropping an **attach** cluster
/// only closes its connections: the externally managed workers stay
/// up and accept the next coordinator.
pub struct SocketCluster {
    inner: Mutex<ClusterInner>,
}

impl std::fmt::Debug for SocketCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SocketCluster")
            .field("workers", &inner.links.len())
            .field("num_sites", &inner.num_sites)
            .finish_non_exhaustive()
    }
}

impl SocketCluster {
    /// Spawns (or attaches to) the workers, performs the handshake and
    /// ships the session bootstrap blob to each.
    ///
    /// `bootstrap` is opaque to this layer — the worker's
    /// [`WorkerHost::load`] interprets it (graph + fragmentation for
    /// the engine protocols). Sites are placed round-robin:
    /// site `i` lives on worker `i % workers`.
    pub fn start(
        cfg: SocketConfig,
        bootstrap: &[u8],
        num_sites: usize,
    ) -> Result<SocketCluster, ExecError> {
        let transport = |e: std::io::Error, what: &str| ExecError::Transport {
            detail: format!("{what}: {e}"),
        };
        let mut children = Vec::new();
        let owns_workers = matches!(cfg.mode, WorkerMode::SpawnLocal { .. });
        let addrs: Vec<String> = match cfg.mode {
            WorkerMode::Attach { addrs } => addrs,
            WorkerMode::SpawnLocal {
                program,
                args,
                count,
            } => {
                let mut addrs = Vec::with_capacity(count);
                for _ in 0..count {
                    let mut child = Command::new(&program)
                        .args(&args)
                        .stdout(Stdio::piped())
                        .stderr(Stdio::inherit())
                        .spawn()
                        .map_err(|e| ExecError::Transport {
                            detail: format!("cannot spawn worker {}: {e}", program.display()),
                        })?;
                    let stdout = child.stdout.take().expect("stdout piped");
                    let mut lines = BufReader::new(stdout);
                    let mut addr = None;
                    let mut line = String::new();
                    // The worker prints its announce line first; a few
                    // lines of slack tolerate harness noise.
                    for _ in 0..32 {
                        line.clear();
                        match lines.read_line(&mut line) {
                            Ok(0) => break,
                            Ok(_) => {
                                if let Some(pos) = line.find(ANNOUNCE_MARKER) {
                                    addr =
                                        Some(line[pos + ANNOUNCE_MARKER.len()..].trim().to_owned());
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    let Some(addr) = addr else {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(ExecError::Transport {
                            detail: format!(
                                "worker {} exited without announcing \"{ANNOUNCE_MARKER}<addr>\"",
                                program.display()
                            ),
                        });
                    };
                    // Keep draining the pipe so the worker never blocks
                    // on a full stdout.
                    std::thread::spawn(move || {
                        let mut sink = std::io::sink();
                        let _ = std::io::copy(&mut lines, &mut sink);
                    });
                    children.push(child);
                    addrs.push(addr);
                }
                addrs
            }
        };
        if addrs.is_empty() && num_sites > 0 {
            return Err(ExecError::Unsupported {
                detail: format!("{num_sites} sites need at least one worker process"),
            });
        }

        let (tx, rx) = crossbeam::channel::unbounded();
        let mut links = Vec::with_capacity(addrs.len());
        for (idx, addr) in addrs.iter().enumerate() {
            // The worker may still be binding; retry briefly.
            let deadline = Instant::now() + Duration::from_secs(5);
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) if Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        return Err(transport(e, &format!("cannot connect to worker {addr}")))
                    }
                }
            };
            stream
                .set_nodelay(true)
                .map_err(|e| transport(e, "set_nodelay"))?;
            let mut wr = stream
                .try_clone()
                .map_err(|e| transport(e, "clone stream"))?;
            let mut rd = stream
                .try_clone()
                .map_err(|e| transport(e, "clone stream"))?;

            // Handshake.
            let mut hello = Vec::new();
            put_bytes(&mut hello, SOCKET_MAGIC);
            put_u16(&mut hello, SOCKET_VERSION);
            wire::write_frame(&mut wr, FT_WORKER_HELLO, &hello)
                .map_err(|e| transport(e, &format!("handshake with worker {addr}")))?;
            match wire::read_frame(&mut rd) {
                Ok(Some((FT_WORKER_HELLO, payload))) => {
                    let mut r = Reader::new(&payload);
                    let ok = r.bytes("handshake magic").map(|m| m == SOCKET_MAGIC);
                    if !matches!(ok, Ok(true)) {
                        return Err(ExecError::Transport {
                            detail: format!("worker {addr} answered a bad handshake"),
                        });
                    }
                }
                other => {
                    return Err(ExecError::Transport {
                        detail: format!("worker {addr} did not answer the handshake: {other:?}"),
                    });
                }
            }

            // Session bootstrap.
            wire::write_frame(&mut wr, FT_WORKER_LOAD, bootstrap)
                .map_err(|e| transport(e, &format!("bootstrap of worker {addr}")))?;
            match wire::read_frame(&mut rd) {
                Ok(Some((FT_WORKER_OK, _))) => {}
                Ok(Some((FT_WORKER_ERR, payload))) => {
                    let mut r = Reader::new(&payload);
                    let reason = r
                        .str_("error reason")
                        .unwrap_or_else(|_| "unreadable reason".into());
                    return Err(ExecError::Transport {
                        detail: format!("worker {addr} rejected the session bootstrap: {reason}"),
                    });
                }
                other => {
                    return Err(ExecError::Transport {
                        detail: format!(
                            "worker {addr} did not acknowledge the bootstrap: {other:?}"
                        ),
                    });
                }
            }

            // From here on, the worker talks asynchronously.
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                match wire::read_frame(&mut rd) {
                    Ok(Some((ty, payload))) => {
                        if tx.send((idx, WorkerEvent::Frame(ty, payload))).is_err() {
                            break;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send((idx, WorkerEvent::Closed("connection closed".into())));
                        break;
                    }
                    Err(e) => {
                        let _ = tx.send((idx, WorkerEvent::Closed(e.to_string())));
                        break;
                    }
                }
            });

            links.push(WorkerLink {
                stream: wr,
                addr: addr.clone(),
                sites: Vec::new(),
                dead: None,
            });
        }
        drop(tx);

        for site in 0..num_sites {
            let w = site % links.len().max(1);
            links[w].sites.push(site as u32);
        }

        Ok(SocketCluster {
            inner: Mutex::new(ClusterInner {
                links,
                children,
                events: rx,
                num_sites,
                next_run: 1,
                timeout: cfg.site_timeout,
                chaos: cfg.chaos.map(ChaosTransport::new),
                owns_workers,
                shut_down: false,
            }),
        })
    }

    /// Number of worker processes.
    pub fn num_workers(&self) -> usize {
        self.inner.lock().links.len()
    }

    /// Number of sites the cluster was bootstrapped for.
    pub fn num_sites(&self) -> usize {
        self.inner.lock().num_sites
    }

    /// Worker addresses, in placement order.
    pub fn worker_addrs(&self) -> Vec<String> {
        self.inner
            .lock()
            .links
            .iter()
            .map(|l| l.addr.clone())
            .collect()
    }

    /// OS pids of the locally spawned workers (empty in attach mode).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.inner.lock().children.iter().map(Child::id).collect()
    }

    /// Runs one protocol to completion across the worker processes;
    /// see [`crate::try_run`]. Runs are serialized on the cluster.
    ///
    /// The returned [`RunOutcome::sites`] are the **unstarted local
    /// twins** of the remote sites (their state lives in the worker
    /// processes); the coordinator and the metrics are authoritative.
    pub fn run<M, C, S>(&self, coordinator: C, sites: Vec<S>) -> Result<RunOutcome<C, S>, ExecError>
    where
        M: SocketMsg,
        C: CoordinatorLogic<M>,
        S: SiteLogic<M> + RemoteSpec,
    {
        let mut inner = self.inner.lock();
        inner.run(coordinator, sites)
    }

    /// Re-ships the session bootstrap to every worker — the engine
    /// calls this after a graph delta so later runs execute against
    /// the mutated graph, not the one shipped at cluster start.
    pub fn rebootstrap(&self, bootstrap: &[u8]) -> Result<(), ExecError> {
        self.inner.lock().rebootstrap(bootstrap)
    }

    /// Tears the cluster down: spawn-local workers are asked to exit
    /// and reaped (kill after a grace period); attached workers just
    /// lose this coordinator's connection and keep serving others.
    /// Called automatically on drop.
    pub fn shutdown(&self) {
        self.inner.lock().shutdown();
    }
}

impl ClusterInner {
    fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        for link in &mut self.links {
            if self.owns_workers {
                let _ = wire::write_frame(&mut link.stream, FT_WORKER_SHUTDOWN, &[]);
            }
            let _ = link.stream.shutdown(std::net::Shutdown::Both);
        }
        // Reap: grace period, then kill — zero leaked processes.
        let deadline = Instant::now() + Duration::from_secs(2);
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    /// See [`SocketCluster::rebootstrap`]: sends `WORKER_LOAD` to all
    /// workers and awaits one acknowledgement each over the event
    /// channel (stale frames of aborted runs are discarded).
    fn rebootstrap(&mut self, bootstrap: &[u8]) -> Result<(), ExecError> {
        for (w, link) in self.links.iter().enumerate() {
            if let Some(reason) = &link.dead {
                let reason = reason.clone();
                return Err(self.site_failed(w, reason));
            }
        }
        for w in 0..self.links.len() {
            self.write_worker(w, FT_WORKER_LOAD, bootstrap)?;
        }
        let mut pending = vec![true; self.links.len()];
        while pending.iter().any(|&p| p) {
            match self.events.recv_timeout(self.timeout) {
                Ok((w, WorkerEvent::Frame(FT_WORKER_OK, _))) => pending[w] = false,
                Ok((w, WorkerEvent::Frame(FT_WORKER_ERR, payload))) => {
                    let mut r = Reader::new(&payload);
                    let reason = r
                        .str_("error reason")
                        .unwrap_or_else(|_| "unreadable reason".into());
                    return Err(ExecError::Transport {
                        detail: format!(
                            "worker {} rejected the session re-bootstrap: {reason}",
                            self.links[w].addr
                        ),
                    });
                }
                // Stale frames of a previously aborted run.
                Ok((_, WorkerEvent::Frame(FT_SITE_OUT | FT_SITE_ERR, _))) => continue,
                Ok((w, WorkerEvent::Closed(reason))) => {
                    self.links[w].dead = Some(reason.clone());
                    return Err(self.site_failed(w, reason));
                }
                Ok((_, WorkerEvent::Frame(ty, _))) => {
                    return Err(ExecError::Transport {
                        detail: format!("unexpected frame type {ty:#x} during re-bootstrap"),
                    });
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(ExecError::Timeout {
                        millis: self.timeout.as_millis() as u64,
                        detail: "no worker acknowledged the session re-bootstrap".into(),
                    });
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(ExecError::Transport {
                        detail: "all worker connections are gone".into(),
                    });
                }
            }
        }
        Ok(())
    }

    fn site_failed(&self, worker: usize, reason: String) -> ExecError {
        let site = self.links[worker].sites.first().copied().unwrap_or(0);
        ExecError::SiteFailed {
            site,
            reason: format!("worker {} ({reason})", self.links[worker].addr),
        }
    }

    fn run<M, C, S>(
        &mut self,
        mut coordinator: C,
        sites: Vec<S>,
    ) -> Result<RunOutcome<C, S>, ExecError>
    where
        M: SocketMsg,
        C: CoordinatorLogic<M>,
        S: SiteLogic<M> + RemoteSpec,
    {
        let n = sites.len();
        if n != self.num_sites {
            return Err(ExecError::Unsupported {
                detail: format!(
                    "run has {n} sites but the cluster was bootstrapped for {}",
                    self.num_sites
                ),
            });
        }
        for (w, link) in self.links.iter().enumerate() {
            if let Some(reason) = &link.dead {
                let reason = reason.clone();
                return Err(self.site_failed(w, reason));
            }
        }
        // Specs first: an unremotable protocol must fail before any
        // frame is sent.
        let mut specs = Vec::with_capacity(n);
        for s in &sites {
            specs.push(
                s.remote_spec()
                    .map_err(|detail| ExecError::Unsupported { detail })?,
            );
        }

        let run_id = self.next_run;
        self.next_run += 1;
        let wall_start = Instant::now();
        let mut metrics = RunMetrics::new(n);
        let mut inflight: i64 = 0;
        if let Some(chaos) = &mut self.chaos {
            chaos.held.clear(); // never leak frames across runs
        }

        // Per-run site bootstrap: every hosted site's `on_start` will
        // answer with one SITE_OUT.
        for w in 0..self.links.len() {
            if self.links[w].sites.is_empty() {
                continue;
            }
            let mut buf = Vec::new();
            put_varint(&mut buf, run_id);
            put_varint(&mut buf, n as u64);
            put_varint(&mut buf, self.links[w].sites.len() as u64);
            for &site in &self.links[w].sites.clone() {
                put_varint(&mut buf, u64::from(site));
                put_bytes(&mut buf, &specs[site as usize]);
            }
            inflight += self.links[w].sites.len() as i64;
            self.write_worker(w, FT_SITE_HELLO, &buf)?;
        }

        // The coordinator runs in this process; its sends are routed
        // like any other — through `route_send`.
        let mut rounds = 0u64;
        {
            let mut out = Outbox::new(Endpoint::Coordinator, n);
            coordinator.on_start(&mut out);
            self.flush_coordinator(run_id, out, &mut metrics, &mut inflight)?;
        }

        let done = loop {
            // Drain everything already received.
            match self.events.try_recv() {
                Ok((w, ev)) => {
                    self.handle_event(
                        run_id,
                        w,
                        ev,
                        &mut coordinator,
                        n,
                        &mut metrics,
                        &mut inflight,
                    )?;
                    continue;
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    return Err(ExecError::Transport {
                        detail: "all worker connections are gone".into(),
                    });
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {}
            }
            // Nothing immediate: release chaos-held frames before the
            // loop can block or quiesce (this is what delays *and*
            // reorders them).
            if self.chaos.as_ref().is_some_and(|c| !c.is_empty()) {
                let held = self.chaos.as_mut().expect("checked").flush();
                for (w, frame) in held {
                    self.write_worker(w, FT_SITE_MSG, &frame)?;
                }
                continue;
            }
            if inflight == 0 {
                rounds += 1;
                let mut out = Outbox::new(Endpoint::Coordinator, n);
                let done = coordinator.on_quiescent(&mut out);
                let had_sends = !out.sends.is_empty();
                self.flush_coordinator(run_id, out, &mut metrics, &mut inflight)?;
                if done {
                    break true;
                }
                if !had_sends {
                    return Err(ExecError::Transport {
                        detail: "protocol stalled: on_quiescent returned false without sending"
                            .into(),
                    });
                }
                continue;
            }
            match self.events.recv_timeout(self.timeout) {
                Ok((w, ev)) => self.handle_event(
                    run_id,
                    w,
                    ev,
                    &mut coordinator,
                    n,
                    &mut metrics,
                    &mut inflight,
                )?,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(ExecError::Timeout {
                        millis: self.timeout.as_millis() as u64,
                        detail: format!(
                            "{inflight} message(s) in flight but no worker frame arrived \
                             within the per-site timeout"
                        ),
                    });
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(ExecError::Transport {
                        detail: "all worker connections are gone".into(),
                    });
                }
            }
        };
        debug_assert!(done);

        // Tell the workers to drop the run's state.
        let mut fin = Vec::new();
        put_varint(&mut fin, run_id);
        for w in 0..self.links.len() {
            if !self.links[w].sites.is_empty() {
                self.write_worker(w, FT_SITE_DONE, &fin)?;
            }
        }

        metrics.quiescence_rounds = rounds;
        metrics.wall_time = wall_start.elapsed();
        Ok(RunOutcome {
            coordinator,
            sites,
            metrics,
        })
    }

    fn write_worker(&mut self, w: usize, ty: u8, payload: &[u8]) -> Result<(), ExecError> {
        if let Err(e) = wire::write_frame(&mut self.links[w].stream, ty, payload) {
            let reason = format!("write failed: {e}");
            self.links[w].dead = Some(reason.clone());
            return Err(self.site_failed(w, reason));
        }
        Ok(())
    }

    /// Routes one logical send. Coordinator-bound messages are decoded
    /// and queued for local delivery by the caller; site-bound
    /// messages become `SITE_MSG` frames (through the chaos transport
    /// for data class).
    #[allow(clippy::too_many_arguments)]
    fn route_send<M: SocketMsg>(
        &mut self,
        run_id: u64,
        from: Endpoint,
        to: Endpoint,
        class: MsgClass,
        wire_bytes: usize,
        payload: &[u8],
        metrics: &mut RunMetrics,
        inflight: &mut i64,
        to_coordinator: &mut VecDeque<(Endpoint, M)>,
    ) -> Result<(), ExecError> {
        metrics.record_send_from(from, class, wire_bytes);
        match to {
            Endpoint::Coordinator => {
                let mut r = Reader::new(payload);
                let msg = M::decode(&mut r).map_err(|e| ExecError::Transport {
                    detail: format!("cannot decode a coordinator-bound message: {e}"),
                })?;
                to_coordinator.push_back((from, msg));
                Ok(())
            }
            Endpoint::Site(site) => {
                let w = (site as usize) % self.links.len().max(1);
                let mut frame = Vec::new();
                put_varint(&mut frame, run_id);
                put_varint(&mut frame, u64::from(site));
                put_endpoint(&mut frame, from);
                put_class(&mut frame, class);
                put_bytes(&mut frame, payload);
                *inflight += 1;
                if class == MsgClass::Data {
                    if let Some(chaos) = &mut self.chaos {
                        match chaos.verdict() {
                            ChaosVerdict::Pass => {}
                            ChaosVerdict::DropRetry => {
                                // At-least-once: the retry copy is the
                                // only delivery; traffic unchanged.
                                chaos.held.push((w, frame));
                                return Ok(());
                            }
                            ChaosVerdict::Duplicate => {
                                // Retransmission is real traffic, like
                                // FaultPlan's accounting.
                                metrics.record_send_from(from, class, wire_bytes);
                                metrics.duplicated_messages += 1;
                                metrics.duplicated_bytes += wire_bytes as u64;
                                *inflight += 1;
                                chaos.held.push((w, frame.clone()));
                            }
                            ChaosVerdict::Delay => {
                                chaos.held.push((w, frame));
                                return Ok(());
                            }
                        }
                    }
                }
                self.write_worker(w, FT_SITE_MSG, &frame)
            }
        }
    }

    /// Flushes a coordinator outbox: accounts its ops, encodes and
    /// routes its sends, then drains any coordinator-bound messages
    /// the routing produced (none today — coordinators cannot
    /// self-send — but the queue keeps the shape uniform).
    fn flush_coordinator<M: SocketMsg>(
        &mut self,
        run_id: u64,
        out: Outbox<M>,
        metrics: &mut RunMetrics,
        inflight: &mut i64,
    ) -> Result<(), ExecError> {
        metrics.record_ops(Endpoint::Coordinator, out.ops);
        let mut local: VecDeque<(Endpoint, M)> = VecDeque::new();
        for (to, class, msg) in out.sends {
            let wire_bytes = msg.wire_size();
            let mut payload = Vec::new();
            msg.encode(&mut payload)
                .map_err(|detail| ExecError::Unsupported { detail })?;
            self.route_send(
                run_id,
                Endpoint::Coordinator,
                to,
                class,
                wire_bytes,
                &payload,
                metrics,
                inflight,
                &mut local,
            )?;
        }
        debug_assert!(local.is_empty(), "coordinator cannot message itself");
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_event<M: SocketMsg, C: CoordinatorLogic<M>>(
        &mut self,
        run_id: u64,
        worker: usize,
        ev: WorkerEvent,
        coordinator: &mut C,
        n: usize,
        metrics: &mut RunMetrics,
        inflight: &mut i64,
    ) -> Result<(), ExecError> {
        match ev {
            WorkerEvent::Closed(reason) => {
                self.links[worker].dead = Some(reason.clone());
                Err(self.site_failed(worker, format!("worker process disconnected: {reason}")))
            }
            WorkerEvent::Frame(FT_SITE_OUT, payload) => {
                let corrupt = |e: FrameError| ExecError::Transport {
                    detail: format!("bad SITE_OUT frame: {e}"),
                };
                let mut r = Reader::new(&payload);
                if r.varint("run id").map_err(corrupt)? != run_id {
                    return Ok(()); // stale frame of an aborted run
                }
                let site = r.varint("site").map_err(corrupt)? as u32;
                if site as usize >= n {
                    return Err(ExecError::Transport {
                        detail: format!("SITE_OUT names site {site} of a {n}-site run"),
                    });
                }
                let ops = r.varint("ops").map_err(corrupt)?;
                metrics.record_ops(Endpoint::Site(site), ops);
                let nsends = r.varint("send count").map_err(corrupt)?;
                let mut to_coord: VecDeque<(Endpoint, M)> = VecDeque::new();
                for _ in 0..nsends {
                    let to = read_endpoint(&mut r, "destination").map_err(corrupt)?;
                    let class = read_class(&mut r).map_err(corrupt)?;
                    let wire_bytes = r.varint("wire size").map_err(corrupt)? as usize;
                    let msg = r.bytes("message payload").map_err(corrupt)?;
                    self.route_send(
                        run_id,
                        Endpoint::Site(site),
                        to,
                        class,
                        wire_bytes,
                        msg,
                        metrics,
                        inflight,
                        &mut to_coord,
                    )?;
                }
                r.finish("SITE_OUT").map_err(corrupt)?;
                // The handler whose outbox this was is now complete.
                *inflight -= 1;
                // Deliver coordinator-bound messages synchronously; the
                // coordinator's own sends route like everyone else's.
                while let Some((from, msg)) = to_coord.pop_front() {
                    let mut out = Outbox::new(Endpoint::Coordinator, n);
                    coordinator.on_message(from, msg, &mut out);
                    self.flush_coordinator(run_id, out, metrics, inflight)?;
                }
                Ok(())
            }
            WorkerEvent::Frame(FT_SITE_ERR, payload) => {
                let corrupt = |e: FrameError| ExecError::Transport {
                    detail: format!("bad SITE_ERR frame: {e}"),
                };
                let mut r = Reader::new(&payload);
                if r.varint("run id").map_err(corrupt)? != run_id {
                    return Ok(());
                }
                let site = r.varint("site").map_err(corrupt)? as u32;
                let reason = r.str_("reason").map_err(corrupt)?;
                Err(ExecError::SiteFailed { site, reason })
            }
            WorkerEvent::Frame(ty, _) => Err(ExecError::Transport {
                detail: format!("unexpected frame type {ty:#x} from worker"),
            }),
        }
    }
}

impl Drop for SocketCluster {
    fn drop(&mut self) {
        self.inner.lock().shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scatter-gather over a real socket pair, with the worker loop
    /// hosted on a thread of this process — the executor semantics
    /// without multi-process scaffolding (the engine-level tests and
    /// `tests/executors.rs` cover real processes).
    struct Scatter {
        sum: u64,
        replies: usize,
    }
    #[derive(Clone)]
    struct AddSite {
        idx: u64,
    }

    impl SocketMsg for u64 {
        fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String> {
            put_varint(buf, *self);
            Ok(())
        }
        fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
            r.varint("u64 msg").map_err(|e| e.to_string())
        }
    }

    impl CoordinatorLogic<u64> for Scatter {
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            for i in 0..out.num_sites() {
                out.send(Endpoint::Site(i as u32), 100);
            }
        }
        fn on_message(&mut self, _from: Endpoint, msg: u64, _out: &mut Outbox<u64>) {
            self.sum += msg;
            self.replies += 1;
        }
        fn on_quiescent(&mut self, _out: &mut Outbox<u64>) -> bool {
            true
        }
    }
    impl SiteLogic<u64> for AddSite {
        fn on_start(&mut self, _out: &mut Outbox<u64>) {}
        fn on_message(&mut self, _from: Endpoint, msg: u64, out: &mut Outbox<u64>) {
            out.charge_ops(3);
            out.send(Endpoint::Coordinator, msg + self.idx);
        }
    }
    impl RemoteSpec for AddSite {
        fn remote_spec(&self) -> Result<Vec<u8>, String> {
            let mut buf = Vec::new();
            put_varint(&mut buf, self.idx);
            Ok(buf)
        }
    }

    struct AddHost;
    impl WorkerHost for AddHost {
        fn load(&mut self, _blob: &[u8]) -> Result<(), String> {
            Ok(())
        }
        fn build_site(
            &self,
            site: u32,
            num_sites: usize,
            spec: &[u8],
        ) -> Result<Box<dyn ErasedSite>, String> {
            let mut r = Reader::new(spec);
            let idx = r.varint("idx").map_err(|e| e.to_string())?;
            Ok(erase_site::<u64, _>(AddSite { idx }, site, num_sites))
        }
    }

    /// `unwrap_err` without requiring `Debug` on the outcome.
    fn expect_err<C, S>(r: Result<RunOutcome<C, S>, ExecError>) -> ExecError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected the run to fail"),
        }
    }

    fn local_worker() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_worker_listener(&listener, || AddHost);
        });
        addr
    }

    #[test]
    fn scatter_gather_over_sockets() {
        let addrs = vec![local_worker(), local_worker()];
        let cluster = SocketCluster::start(SocketConfig::attach(addrs), b"", 8).unwrap();
        let sites: Vec<AddSite> = (0..8).map(|i| AddSite { idx: i }).collect();
        let outcome = cluster.run(Scatter { sum: 0, replies: 0 }, sites).unwrap();
        assert_eq!(outcome.coordinator.replies, 8);
        assert_eq!(outcome.coordinator.sum, 8 * 100 + (0..8).sum::<u64>());
        assert_eq!(outcome.metrics.data_messages, 16);
        assert_eq!(outcome.metrics.total_ops, 24);
        assert_eq!(outcome.metrics.quiescence_rounds, 1);
        // Per-site accounting flowed back over the wire.
        assert_eq!(outcome.metrics.site_ops, vec![3; 8]);
        assert_eq!(outcome.metrics.site_msgs, vec![1; 8]);
        cluster.shutdown();
    }

    /// Under the chaos transport every data message may be dropped-
    /// then-retried, duplicated, delayed or reordered; an idempotent
    /// protocol (set union, like the simulation algorithms) must still
    /// converge to the same answer, and at-least-once delivery means
    /// every site is reached.
    struct SetUnion {
        seen: u64,
    }
    impl CoordinatorLogic<u64> for SetUnion {
        fn on_start(&mut self, out: &mut Outbox<u64>) {
            for i in 0..out.num_sites() {
                out.send(Endpoint::Site(i as u32), i as u64);
            }
        }
        fn on_message(&mut self, _from: Endpoint, msg: u64, _out: &mut Outbox<u64>) {
            self.seen |= 1 << msg; // idempotent under duplication
        }
        fn on_quiescent(&mut self, _out: &mut Outbox<u64>) -> bool {
            true
        }
    }

    #[test]
    fn runs_are_reusable_and_chaos_preserves_answers() {
        let addrs = vec![local_worker()];
        let cfg = SocketConfig::attach(addrs).chaos(ChaosPlan::heavy(7));
        let cluster = SocketCluster::start(cfg, b"", 4).unwrap();
        for round in 0..3 {
            let sites: Vec<AddSite> = (0..4).map(|i| AddSite { idx: i }).collect();
            let outcome = cluster.run(SetUnion { seen: 0 }, sites).unwrap();
            // idx i receives i and replies i + i = 2i; bits 0,2,4,6.
            assert_eq!(outcome.coordinator.seen, 0b0101_0101, "round {round}");
            // At-least-once: every site replied at least once, and a
            // heavy plan certainly duplicated something across rounds.
            assert!(outcome.metrics.data_messages >= 8, "round {round}");
        }
    }

    #[test]
    fn silent_worker_times_out_instead_of_hanging() {
        // A stub that handshakes and acknowledges the bootstrap, then
        // swallows every frame — a silent peer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut rd = BufReader::new(conn.try_clone().unwrap());
            let mut wr = conn;
            let (ty, payload) = wire::read_frame(&mut rd).unwrap().unwrap();
            assert_eq!(ty, FT_WORKER_HELLO);
            wire::write_frame(&mut wr, FT_WORKER_HELLO, &payload).unwrap();
            let (ty, _) = wire::read_frame(&mut rd).unwrap().unwrap();
            assert_eq!(ty, FT_WORKER_LOAD);
            wire::write_frame(&mut wr, FT_WORKER_OK, &[]).unwrap();
            // Swallow everything else, replying to nothing.
            while let Ok(Some(_)) = wire::read_frame(&mut rd) {}
        });
        let cfg = SocketConfig::attach(vec![addr]).site_timeout(Duration::from_millis(200));
        let cluster = SocketCluster::start(cfg, b"", 2).unwrap();
        let sites: Vec<AddSite> = (0..2).map(|i| AddSite { idx: i }).collect();
        let err = expect_err(cluster.run(Scatter { sum: 0, replies: 0 }, sites));
        assert!(matches!(err, ExecError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn dead_worker_is_a_typed_site_failure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            let mut rd = BufReader::new(conn.try_clone().unwrap());
            let mut wr = conn;
            let (_, payload) = wire::read_frame(&mut rd).unwrap().unwrap();
            wire::write_frame(&mut wr, FT_WORKER_HELLO, &payload).unwrap();
            let _ = wire::read_frame(&mut rd).unwrap();
            wire::write_frame(&mut wr, FT_WORKER_OK, &[]).unwrap();
            // Die right after the bootstrap: the connection drops.
            drop(wr);
        });
        let cfg = SocketConfig::attach(vec![addr]).site_timeout(Duration::from_secs(5));
        let cluster = SocketCluster::start(cfg, b"", 3).unwrap();
        let sites: Vec<AddSite> = (0..3).map(|i| AddSite { idx: i }).collect();
        let err = expect_err(cluster.run(Scatter { sum: 0, replies: 0 }, sites));
        assert!(matches!(err, ExecError::SiteFailed { .. }), "{err:?}");
        // The cluster stays typed-dead: the next run fails fast, too.
        let sites: Vec<AddSite> = (0..3).map(|i| AddSite { idx: i }).collect();
        let err = expect_err(cluster.run(Scatter { sum: 0, replies: 0 }, sites));
        assert!(matches!(err, ExecError::SiteFailed { .. }), "{err:?}");
    }

    #[test]
    fn worker_panic_surfaces_as_site_err_frame() {
        #[derive(Clone)]
        struct Bomb;
        impl SiteLogic<u64> for Bomb {
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: Endpoint, _m: u64, _o: &mut Outbox<u64>) {
                panic!("boom at the remote site");
            }
        }
        impl RemoteSpec for Bomb {
            fn remote_spec(&self) -> Result<Vec<u8>, String> {
                Ok(Vec::new())
            }
        }
        struct BombHost;
        impl WorkerHost for BombHost {
            fn load(&mut self, _blob: &[u8]) -> Result<(), String> {
                Ok(())
            }
            fn build_site(
                &self,
                site: u32,
                num_sites: usize,
                _spec: &[u8],
            ) -> Result<Box<dyn ErasedSite>, String> {
                Ok(erase_site::<u64, _>(Bomb, site, num_sites))
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_worker_listener(&listener, || BombHost);
        });
        let cluster = SocketCluster::start(SocketConfig::attach(vec![addr]), b"", 2).unwrap();
        let err = expect_err(cluster.run(Scatter { sum: 0, replies: 0 }, vec![Bomb, Bomb]));
        match err {
            ExecError::SiteFailed { reason, .. } => {
                assert!(reason.contains("boom"), "{reason}");
            }
            other => panic!("expected SiteFailed, got {other:?}"),
        }
    }

    #[test]
    fn unremotable_protocols_are_gated_before_any_frame() {
        #[derive(Clone)]
        struct Opaque;
        impl SiteLogic<u64> for Opaque {
            fn on_start(&mut self, _out: &mut Outbox<u64>) {}
            fn on_message(&mut self, _f: Endpoint, _m: u64, _o: &mut Outbox<u64>) {}
        }
        impl RemoteSpec for Opaque {
            fn remote_spec(&self) -> Result<Vec<u8>, String> {
                Err("this protocol is not socket-remotable".into())
            }
        }
        let addrs = vec![local_worker()];
        let cluster = SocketCluster::start(SocketConfig::attach(addrs), b"", 1).unwrap();
        let err = expect_err(cluster.run(Scatter { sum: 0, replies: 0 }, vec![Opaque]));
        assert!(matches!(err, ExecError::Unsupported { .. }), "{err:?}");
    }
}
