//! # dgs-net
//!
//! A simulated distributed runtime for the graph-simulation algorithms
//! of Fan et al. (VLDB 2014) — the substitute for the paper's Amazon
//! EC2 deployment (DESIGN.md §4).
//!
//! Algorithms are written once as message-driven actors
//! ([`SiteLogic`] per site plus one [`CoordinatorLogic`]) and can then
//! be driven by either executor:
//!
//! * [`cluster::ThreadedExecutor`] — one OS thread per site, crossbeam
//!   channels, Dijkstra-style quiescence detection; proves the
//!   algorithms really run concurrently and measures wall-clock time;
//! * [`virtual_time::VirtualExecutor`] — a deterministic discrete-event
//!   simulation: per-site busy time is `charged ops × cost-per-op` and
//!   message delivery takes `latency + bytes / bandwidth` under an
//!   explicit, EC2-like [`CostModel`]. This is what reproduces the
//!   paper's response-time *shapes* (e.g. PT falling as `|F|` grows)
//!   on a host with fewer cores than simulated sites.
//!
//! Because graph simulation is a monotone fixpoint computation,
//! chaotic/asynchronous iteration is confluent: both executors (and
//! any message interleaving) produce identical answers; only the
//! timing metrics differ.
//!
//! Data shipment is accounted exactly: every message carries a
//! hand-computed [`WireSize`] and is classified as **data** (the
//! paper's DS metric), **control** (termination/barrier traffic) or
//! **result** (final match collection, which the paper's DS figures
//! exclude); see [`metrics::RunMetrics`].

pub mod cluster;
pub mod cost;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod site;
pub mod virtual_time;

pub use cluster::ThreadedExecutor;
pub use cost::CostModel;
pub use fault::FaultPlan;
pub use message::{Endpoint, MsgClass, WireSize};
pub use metrics::{LatencyHistogram, RunMetrics, SiteDeltaMetrics};
pub use site::{CoordinatorLogic, Outbox, SiteLogic};
pub use virtual_time::VirtualExecutor;

/// Which executor drives a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Real threads, wall-clock timing.
    Threaded,
    /// Deterministic discrete-event simulation, virtual timing.
    Virtual,
}

/// Outcome of running a protocol to completion.
pub struct RunOutcome<C, S> {
    /// The coordinator, holding whatever final answer the protocol
    /// assembled.
    pub coordinator: C,
    /// The per-site logics (useful for inspecting local state in
    /// tests).
    pub sites: Vec<S>,
    /// Timing and shipment metrics.
    pub metrics: RunMetrics,
}

/// Runs `coordinator` + `sites` under the chosen executor.
pub fn run<M, C, S>(
    kind: ExecutorKind,
    cost: &CostModel,
    coordinator: C,
    sites: Vec<S>,
) -> RunOutcome<C, S>
where
    M: WireSize + Clone + Send + 'static,
    C: CoordinatorLogic<M> + Send,
    S: SiteLogic<M> + Send,
{
    match kind {
        ExecutorKind::Threaded => ThreadedExecutor::new(cost.clone()).run(coordinator, sites),
        ExecutorKind::Virtual => VirtualExecutor::new(cost.clone()).run(coordinator, sites),
    }
}
