//! # dgs-net
//!
//! A distributed runtime for the graph-simulation algorithms of Fan
//! et al. (VLDB 2014) — from a simulated substitute for the paper's
//! Amazon EC2 deployment (DESIGN.md §4) up to genuinely multi-process
//! execution.
//!
//! Algorithms are written once as message-driven actors
//! ([`SiteLogic`] per site plus one [`CoordinatorLogic`]) and can then
//! be driven by any executor:
//!
//! * [`cluster::ThreadedExecutor`] — one OS thread per site, crossbeam
//!   channels, Dijkstra-style quiescence detection; proves the
//!   algorithms really run concurrently and measures wall-clock time;
//! * [`virtual_time::VirtualExecutor`] — a deterministic discrete-event
//!   simulation: per-site busy time is `charged ops × cost-per-op` and
//!   message delivery takes `latency + bytes / bandwidth` under an
//!   explicit, EC2-like [`CostModel`]. This is what reproduces the
//!   paper's response-time *shapes* (e.g. PT falling as `|F|` grows)
//!   on a host with fewer cores than simulated sites.
//! * [`socket::SocketCluster`] — the coordinator and the sites run in
//!   **separate OS processes** connected by TCP sockets carrying the
//!   wire frames of [`wire`]; protocols additionally implement
//!   [`SocketMsg`] (message codec) and [`RemoteSpec`] (worker-side
//!   reconstruction). See `crates/net/src/socket.rs`.
//!
//! Because graph simulation is a monotone fixpoint computation,
//! chaotic/asynchronous iteration is confluent: all executors (and
//! any message interleaving) produce identical answers; only the
//! timing metrics differ.
//!
//! Data shipment is accounted exactly: every message carries a
//! hand-computed [`WireSize`] and is classified as **data** (the
//! paper's DS metric), **control** (termination/barrier traffic) or
//! **result** (final match collection, which the paper's DS figures
//! exclude); see [`metrics::RunMetrics`]. The socket executor ships
//! the same logical sizes back over the wire, so its metrics are
//! directly comparable.

pub mod cluster;
pub mod cost;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod obs;
pub mod site;
pub mod socket;
pub mod virtual_time;
pub mod wire;

pub use cluster::ThreadedExecutor;
pub use cost::CostModel;
pub use fault::FaultPlan;
pub use message::{Endpoint, MsgClass, WireSize};
pub use metrics::{
    ConnSweepSnapshot, ConnSweepStep, ExecutorsSnapshot, LatencyHistogram, RunMetrics,
    ServingSnapshot, SiteDeltaMetrics, SubscribeSnapshot, CONN_SWEEP_SNAPSHOT_VERSION,
    EXECUTORS_SNAPSHOT_VERSION, SERVING_SNAPSHOT_VERSION, SUBSCRIBE_SNAPSHOT_VERSION,
};
pub use obs::{
    Counter, Gauge, Histo, HistogramSummary, LogLevel, Logger, MetricsRegistry, MetricsSnapshot,
    ObsSnapshot, METRICS_SNAPSHOT_VERSION, OBS_SNAPSHOT_VERSION,
};
pub use site::{CoordinatorLogic, Outbox, SiteLogic};
pub use socket::{
    ChaosPlan, RemoteSpec, SocketCluster, SocketConfig, SocketMsg, WorkerHost, WorkerMode,
};
pub use virtual_time::VirtualExecutor;

use std::fmt;

/// Which executor drives a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Real threads, wall-clock timing.
    Threaded,
    /// Deterministic discrete-event simulation, virtual timing.
    Virtual,
    /// Real OS processes connected by sockets (needs a bootstrapped
    /// [`SocketCluster`]; see [`try_run`]).
    Socket,
}

/// Why an executor could not complete a run. The in-process executors
/// only fail on site panics; the socket executor adds transport-level
/// failure modes (a dead worker, a silent peer, an unremotable
/// protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A site failed: its handler panicked (threaded/socket), its
    /// worker process died, or the worker reported a per-site error.
    SiteFailed {
        /// The failed site (0-based).
        site: u32,
        /// What happened.
        reason: String,
    },
    /// Messages were in flight but no worker made progress within the
    /// configured bound — a silent peer, not a protocol error.
    Timeout {
        /// The bound that elapsed, in milliseconds.
        millis: u64,
        /// What was pending.
        detail: String,
    },
    /// The transport itself failed (connect, handshake, a corrupt
    /// frame from a worker).
    Transport {
        /// What happened.
        detail: String,
    },
    /// The requested execution is not possible: a protocol that is not
    /// socket-remotable, or a run shape the cluster was not
    /// bootstrapped for.
    Unsupported {
        /// Why.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::SiteFailed { site, reason } => {
                write!(f, "site S{} failed: {reason}", site + 1)
            }
            ExecError::Timeout { millis, detail } => {
                write!(f, "timed out after {millis} ms: {detail}")
            }
            ExecError::Transport { detail } => write!(f, "transport failed: {detail}"),
            ExecError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of running a protocol to completion.
pub struct RunOutcome<C, S> {
    /// The coordinator, holding whatever final answer the protocol
    /// assembled.
    pub coordinator: C,
    /// The per-site logics (useful for inspecting local state in
    /// tests). Under the socket executor these are the **unstarted
    /// local twins** — the live state belongs to the worker processes.
    pub sites: Vec<S>,
    /// Timing and shipment metrics.
    pub metrics: RunMetrics,
}

/// Runs `coordinator` + `sites` under the chosen in-process executor.
///
/// This is the historical infallible entry point: a site panic under
/// the threaded executor propagates as a panic, and
/// [`ExecutorKind::Socket`] is rejected (it needs a bootstrapped
/// cluster — use [`try_run`]).
pub fn run<M, C, S>(
    kind: ExecutorKind,
    cost: &CostModel,
    coordinator: C,
    sites: Vec<S>,
) -> RunOutcome<C, S>
where
    M: WireSize + Clone + Send + 'static,
    C: CoordinatorLogic<M> + Send,
    S: SiteLogic<M> + Send,
{
    match kind {
        ExecutorKind::Threaded => ThreadedExecutor::new(cost.clone()).run(coordinator, sites),
        ExecutorKind::Virtual => VirtualExecutor::new(cost.clone()).run(coordinator, sites),
        ExecutorKind::Socket => {
            panic!("the socket executor needs a bootstrapped SocketCluster; use dgs_net::try_run")
        }
    }
}

/// Runs `coordinator` + `sites` under any executor, with typed
/// errors: threaded site panics surface as
/// [`ExecError::SiteFailed`] instead of poisoning the process, and
/// [`ExecutorKind::Socket`] dispatches to `cluster` (erroring when
/// none is supplied).
pub fn try_run<M, C, S>(
    kind: ExecutorKind,
    cost: &CostModel,
    cluster: Option<&SocketCluster>,
    coordinator: C,
    sites: Vec<S>,
) -> Result<RunOutcome<C, S>, ExecError>
where
    M: SocketMsg,
    C: CoordinatorLogic<M> + Send,
    S: SiteLogic<M> + RemoteSpec + Send,
{
    try_run_pooled(kind, cost, cluster, 1, coordinator, sites)
}

/// Like [`try_run`], but fans the per-site start handlers of the
/// **virtual** executor out over up to `start_workers` threads
/// ([`VirtualExecutor::with_start_workers`]): intra-query parallelism
/// for the Phase-1 local evaluations, with bit-identical outcomes.
/// The threaded executor is already one-thread-per-site and the
/// socket executor one-process-per-site, so the knob only affects
/// [`ExecutorKind::Virtual`].
pub fn try_run_pooled<M, C, S>(
    kind: ExecutorKind,
    cost: &CostModel,
    cluster: Option<&SocketCluster>,
    start_workers: usize,
    coordinator: C,
    sites: Vec<S>,
) -> Result<RunOutcome<C, S>, ExecError>
where
    M: SocketMsg,
    C: CoordinatorLogic<M> + Send,
    S: SiteLogic<M> + RemoteSpec + Send,
{
    match kind {
        ExecutorKind::Threaded => ThreadedExecutor::new(cost.clone()).try_run(coordinator, sites),
        ExecutorKind::Virtual => Ok(VirtualExecutor::new(cost.clone())
            .with_start_workers(start_workers)
            .run(coordinator, sites)),
        ExecutorKind::Socket => match cluster {
            Some(cluster) => cluster.run(coordinator, sites),
            None => Err(ExecError::Unsupported {
                detail: "the socket executor needs a bootstrapped SocketCluster".into(),
            }),
        },
    }
}
